//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! Provides [`RngCore`], [`Rng`], [`SeedableRng`] and
//! [`rngs::SmallRng`] with the same call-site API as upstream. The
//! generator behind `SmallRng` is xoshiro256++ (the algorithm upstream
//! `SmallRng` uses on 64-bit targets), seeded through SplitMix64, so
//! streams are deterministic per seed and of high statistical quality.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level interface of a random generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value that can be sampled uniformly from an `Rng` (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as upstream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range shape usable with [`Rng::gen_range`]. Generic over the
/// element type (as upstream) so inference can flow from the
/// assignment target into the range literal.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * (f64::sample(rng) as $t)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Draws a uniform value in `[0, bound)` by rejection sampling (Lemire
/// style threshold), avoiding modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % bound;
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (as upstream does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 measured {frac}");
    }
}
