//! Offline stand-in for the subset of `proptest 1` this workspace uses.
//!
//! The real proptest shrinks failing inputs; this stand-in trades
//! shrinking away for zero external dependencies, keeping the rest of
//! the contract: each `proptest!` test runs many randomized cases from
//! deterministic per-test seeds, `prop_assume!` rejects uninteresting
//! cases, and a failing case reports the generated inputs so the
//! failure is reproducible (the case index plus the fixed seed
//! identify it exactly).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases run per property (upstream default is 256; kept smaller here
/// because several properties drive whole cache simulations).
pub const DEFAULT_CASES: u32 = 96;

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates a per-test RNG. The seed is derived from the test name
    /// so every property gets an independent but reproducible stream.
    pub fn for_test(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
signed_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
);

/// A strategy defined by a generation closure (used by
/// [`prop_compose!`] and combinators).
pub struct FnStrategy<F>(pub F);

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStrategy(..)")
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection and sampling strategies, mirroring upstream's
/// `proptest::prelude::prop` facade.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::{Range, RangeInclusive};

        /// Size specification: an exact length or a length range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }
        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }
        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                if self.lo == self.hi {
                    self.lo
                } else {
                    self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
                }
            }
        }

        /// Strategy for `Vec<T>` with lengths in `size`.
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Creates a strategy for vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `HashSet<T>` with sizes in `size` (best effort
        /// when the element domain is small).
        #[derive(Debug)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for HashSetStrategy<S>
        where
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut out = HashSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < 100 * (target + 1) {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                assert!(
                    out.len() >= self.size.lo,
                    "hash_set strategy could not reach the minimum size \
                     (domain too small for {})",
                    self.size.lo
                );
                out
            }
        }

        /// Creates a strategy for hash sets of `element` values.
        pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Creates a strategy choosing uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select(options)
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
        proptest, Arbitrary, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Runs `cases` generated cases of one property. Used by the
/// [`proptest!`] expansion; not part of the public upstream API.
pub fn run_property<F>(test_name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> TestCaseResult,
{
    let mut rng = TestRng::for_test(test_name);
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut rejects = 0u32;
    let mut ran = 0u32;
    let mut index = 0u32;
    while ran < cases {
        match case(&mut rng, index) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejects} rejects for {ran} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case #{index}: {msg}");
            }
        }
        index += 1;
    }
}

/// Defines property tests. Mirrors upstream's macro for the forms used
/// in this workspace: `name(binding in strategy, typed: Type, ...)`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                $crate::DEFAULT_CASES,
                |__proptest_rng, __proptest_case| {
                    let _ = __proptest_case;
                    $crate::__proptest_bind!(__proptest_rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
}

/// Internal: expands the parameter list of a [`proptest!`] test into
/// `let` bindings that draw from the strategies.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $var:ident in $strategy:expr) => {
        let $var = $crate::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident; $var:ident in $strategy:expr, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Defines a composed strategy function, mirroring upstream's
/// `prop_compose!` for the `fn name()(bindings...) -> T { body }` form.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($params:tt)*) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__proptest_rng: &mut $crate::TestRng| -> $ret {
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                $body
            })
        }
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_even()(half in 0u64..100) -> u64 {
            half * 2
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.25f64..0.75, z in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn typed_args_and_assume(v: u64, flag: bool) {
            prop_assume!(v != 0);
            let _ = flag;
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn collections_obey_size(
            xs in prop::collection::vec(0u8..5, 2..6),
            set in prop::collection::hash_set(0u64..8u64, 1..=8),
            pair in (0u32..4, any::<bool>()),
            pick in prop::sample::select(vec![10i32, 20, 30]),
            even in arb_even(),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(!set.is_empty() && set.len() <= 8);
            prop_assert!(pair.0 < 4);
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        crate::run_property("failing", 4, |rng, _| {
            let x: u64 = rng.below(10);
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
