//! Offline stand-in for the subset of `criterion 0.5` this workspace
//! uses: wall-clock measurement of `b.iter(..)` closures with adaptive
//! iteration counts, grouped benchmarks, and optional element
//! throughput reporting.
//!
//! Statistical machinery (outlier analysis, HTML reports) is out of
//! scope; each benchmark reports its best-of-samples mean time per
//! iteration, which is what the workspace's perf tracking consumes.
//! When invoked with `--test` (as `cargo test --benches` does), every
//! closure runs exactly once so benches double as smoke tests.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work is quantified for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement driver handed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher<'a> {
    mode: Mode,
    /// Measured mean nanoseconds per iteration, written by `iter`.
    measured_ns: &'a mut f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement.
    Measure,
    /// `--test`: run once, no timing.
    SmokeTest,
}

impl Bencher<'_> {
    /// Measures `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::SmokeTest {
            black_box(routine());
            *self.measured_ns = 0.0;
            return;
        }
        // Calibrate: find an iteration count taking >= ~5ms.
        let mut iters: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        // Measure: several samples, keep the best (least-noise) mean.
        let sample_iters = ((25_000_000.0 / per_iter_estimate.max(0.5)) as u64).clamp(1, 1 << 24);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            let mean = start.elapsed().as_nanos() as f64 / sample_iters as f64;
            best = best.min(mean);
        }
        *self.measured_ns = best;
    }
}

/// Top-level benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    mode: Option<Mode>,
}

impl Criterion {
    fn mode(&mut self) -> Mode {
        *self.mode.get_or_insert_with(|| {
            if std::env::args().any(|a| a == "--test") {
                Mode::SmokeTest
            } else {
                Mode::Measure
            }
        })
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mode = self.mode();
        let mut ns = f64::NAN;
        let mut b = Bencher {
            mode,
            measured_ns: &mut ns,
        };
        f(&mut b);
        match mode {
            Mode::SmokeTest => println!("{id:<44} ok (smoke test)"),
            Mode::Measure => {
                let rate = match throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {:>12.1} Melem/s", n as f64 / ns * 1e3)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:>12.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                    None => String::new(),
                };
                println!("{id:<44} {:>12.2} ns/iter{rate}", ns);
            }
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<'a>(&'a mut self, name: &str) -> BenchmarkGroup<'a> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and optional
/// throughput definition.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut ns = f64::NAN;
        let mut b = Bencher {
            mode: Mode::SmokeTest,
            measured_ns: &mut ns,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(ns, 0.0);
    }

    #[test]
    fn measure_mode_produces_a_time() {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            mode: Mode::Measure,
            measured_ns: &mut ns,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(ns.is_finite() && ns >= 0.0);
    }
}
