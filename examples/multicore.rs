//! Multi-core simulation through the composable API: four private
//! split-L1 front ends contending for one shared L2, driven by a
//! round-robin interleave of four MediaBench programs.
//!
//! This is the downstream-adopter view of `build_multi` and the
//! `hyvec_mediabench` interleave module: each core runs its program in
//! a private address window (as a multi-programmed machine would),
//! the cores' miss streams interleave in the shared L2, and the
//! contention shows up as a depressed L2 hit ratio and extra memory
//! traffic relative to the same program running alone.
//!
//! ```text
//! cargo run --example multicore --release
//! ```

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode};
use hyvec_cachesim::engine::System;
use hyvec_core::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::{multiprogram_sources, Benchmark};

fn main() {
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).expect("architecture");
    let programs = [
        Benchmark::Mpeg2C,
        Benchmark::Mpeg2D,
        Benchmark::GsmC,
        Benchmark::GsmD,
    ];
    let n = 100_000;

    let builder = || {
        System::builder()
            .config(arch.config.clone())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
    };

    // Reference: the first program alone on a single core.
    let mut alone = builder().build_multi(1).expect("1-core system");
    let solo = alone.run(multiprogram_sources(&programs[..1], n, 1), Mode::Hp);

    // The same L2, now shared by four cores running four programs.
    let mut machine = builder().build_multi(4).expect("4-core system");
    let report = machine.run(multiprogram_sources(&programs, n, 1), Mode::Hp);

    println!("4 cores over one shared 16KB L2, 80-cycle memory, HP mode:");
    for (core, (program, run)) in programs.iter().zip(&report.per_core).enumerate() {
        println!(
            "  core {core}: {program:<7}  IPC {:.3}, demand memory fills {:>4}",
            run.stats.instructions as f64 / run.stats.cycles as f64,
            run.stats.memory_accesses,
        );
    }
    println!(
        "  machine: EPI {:.2} pJ, makespan {} cycles",
        report.epi_pj(),
        report.makespan_cycles()
    );
    println!(
        "  shared L2 hit ratio: {:.1}% alone -> {:.1}% contended",
        100.0 * solo.l2_hit_ratio(),
        100.0 * report.l2_hit_ratio()
    );
    println!(
        "  memory accesses per 1k instructions: {:.2} alone -> {:.2} contended",
        1000.0 * solo.memory.accesses as f64 / solo.instructions() as f64,
        1000.0 * report.memory.accesses as f64 / report.instructions() as f64
    );
    assert!(
        report.l2_hit_ratio() < solo.l2_hit_ratio(),
        "contention must depress the shared-L2 hit ratio"
    );
}
