//! Multi-core simulation through the composable API: four private
//! split-L1 front ends contending for one shared L2, driven by a
//! round-robin interleave of four MediaBench programs — then the same
//! machine rebuilt with private MESI-coherent L2s per core to show
//! the topology enum and its coherence counters.
//!
//! This is the downstream-adopter view of `build_multi`, the
//! `topology` builder knob, and the `hyvec_mediabench` interleave
//! module: each core runs its program in a private address window (as
//! a multi-programmed machine would), the cores' miss streams
//! interleave in the shared L2, and the contention shows up as a
//! depressed L2 hit ratio and extra memory traffic relative to the
//! same program running alone. The second run simulates the L1 fronts
//! on two worker threads (`set_sim_threads`) — the report is
//! bit-identical to the serial loop, demonstrated here by asserting
//! it against a serial re-run.
//!
//! ```text
//! cargo run --example multicore --release
//! ```

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mesi, Mode, Topology};
use hyvec_cachesim::engine::System;
use hyvec_core::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::{multiprogram_sources, per_core_seed, Benchmark};

fn main() {
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).expect("architecture");
    let programs = [
        Benchmark::Mpeg2C,
        Benchmark::Mpeg2D,
        Benchmark::GsmC,
        Benchmark::GsmD,
    ];
    let n = 100_000;

    let builder = || {
        System::builder()
            .config(arch.config.clone())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
    };

    // Reference: the first program alone on a single core.
    let mut alone = builder().build_multi(1).expect("1-core system");
    let solo = alone.run(multiprogram_sources(&programs[..1], n, 1), Mode::Hp);

    // The same L2, now shared by four cores running four programs —
    // simulated epoch-parallel on two worker threads, and asserted
    // bit-identical to the serial reference loop.
    let mut machine = builder().build_multi(4).expect("4-core system");
    machine.set_sim_threads(2);
    let report = machine.run(multiprogram_sources(&programs, n, 1), Mode::Hp);
    machine.set_sim_threads(1);
    let serial = machine.run(multiprogram_sources(&programs, n, 1), Mode::Hp);
    assert_eq!(report, serial, "epoch merge must match the serial loop");

    println!("4 cores over one shared 16KB L2, 80-cycle memory, HP mode:");
    for (core, (program, run)) in programs.iter().zip(&report.per_core).enumerate() {
        println!(
            "  core {core}: {program:<7}  IPC {:.3}, demand memory fills {:>4}",
            run.stats.instructions as f64 / run.stats.cycles as f64,
            run.stats.memory_accesses,
        );
    }
    println!(
        "  machine: EPI {:.2} pJ, makespan {} cycles",
        report.epi_pj(),
        report.makespan_cycles()
    );
    println!(
        "  shared L2 hit ratio: {:.1}% alone -> {:.1}% contended",
        100.0 * solo.l2_hit_ratio(),
        100.0 * report.l2_hit_ratio()
    );
    println!(
        "  memory accesses per 1k instructions: {:.2} alone -> {:.2} contended",
        1000.0 * solo.memory.accesses as f64 / solo.instructions() as f64,
        1000.0 * report.memory.accesses as f64 / report.instructions() as f64
    );
    assert!(
        report.l2_hit_ratio() < solo.l2_hit_ratio(),
        "contention must depress the shared-L2 hit ratio"
    );

    // Topology swap: the same cores, but each owns a private
    // MESI-coherent 16KB L2 over the one memory. To give the protocol
    // something to do, every core now runs a decorrelated stream of
    // the SAME program over the SAME address space (no private
    // windows) — the closest a trace-driven model gets to a
    // multi-threaded program — so written lines migrate between the
    // private L2s.
    let mut mesi = builder()
        .topology(Topology::PrivateL2 {
            coherence: Some(Mesi::default()),
        })
        .build_multi(4)
        .expect("4-core private-L2 MESI system");
    let shared_heap: Vec<_> = (0..4)
        .map(|core| Benchmark::Mpeg2C.trace(n, per_core_seed(1, core)))
        .collect();
    let coherent = mesi.run(shared_heap, Mode::Hp);
    let l2 = coherent.l2.expect("aggregate private-L2 counters");
    println!("\n4 cores with private MESI-coherent 16KB L2s, same run length:");
    println!(
        "  aggregate L2: hit ratio {:.1}%, {} invalidations, {} interventions",
        100.0 * coherent.l2_hit_ratio(),
        l2.invalidations,
        l2.interventions
    );
    println!(
        "  per 1k instructions: {:.2} invalidations, {:.2} cache-to-cache supplies",
        1000.0 * l2.invalidations as f64 / coherent.instructions() as f64,
        1000.0 * l2.interventions as f64 / coherent.instructions() as f64
    );
    assert!(
        l2.invalidations > 0 && l2.interventions > 0,
        "a shared address space must generate coherence traffic"
    );
}
