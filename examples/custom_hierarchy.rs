//! Custom memory hierarchies through the composable simulation API:
//! assemble a machine with `SystemBuilder`, stack a unified L2 under
//! the paper's L1s, and feed the engine from a replayed trace file
//! instead of the synthetic generator.
//!
//! This is the downstream-adopter view of the `MemoryLevel` and
//! `TraceSource` traits: the paper's flat-memory platform is just one
//! configuration of the same engine, and any recorded workload in the
//! replay line format drives it exactly like the built-in benchmarks.
//!
//! ```text
//! cargo run --example custom_hierarchy --release
//! ```

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode};
use hyvec_cachesim::engine::System;
use hyvec_core::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::replay::{write_trace, Replay};
use hyvec_mediabench::Benchmark;

fn main() {
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).expect("architecture");

    // The paper's platform (flat 20-cycle memory)... but behind a slow
    // 80-cycle backing store, where a second level earns its keep.
    let mut flat = System::builder()
        .config(arch.config.clone())
        .memory(MemoryConfig::with_latency(80))
        .build()
        .expect("valid flat system");

    // The same L1s over a 64KB unified L2: one builder call inserts a
    // whole level into the MemoryLevel chain.
    let mut stacked = System::builder()
        .config(arch.config.clone())
        .memory(MemoryConfig::with_latency(80))
        .l2(L2Config::unified(64))
        .build()
        .expect("valid stacked system");

    println!("mpeg2 encode at HP mode, 80-cycle memory:");
    let n = 200_000;
    let f = flat.run(Benchmark::Mpeg2C.trace(n, 1), Mode::Hp);
    let s = stacked.run(Benchmark::Mpeg2C.trace(n, 1), Mode::Hp);
    println!(
        "  flat     CPI {:.3}, EPI {:>6.2} pJ, memory accesses {}",
        f.stats.cpi(),
        f.epi_pj(),
        f.stats.memory_accesses
    );
    let l2 = s.stats.l2.expect("the stacked system reports L2 stats");
    println!(
        "  with L2  CPI {:.3}, EPI {:>6.2} pJ, memory accesses {} (L2 hits {:.1}%)",
        s.stats.cpi(),
        s.epi_pj(),
        s.stats.memory_accesses,
        100.0 * l2.hit_ratio()
    );

    // TraceSource interchangeability: serialize a workload to the
    // replay line format and drive the same engine from the recording.
    let text = write_trace(Benchmark::AdpcmC.trace(50_000, 7));
    println!(
        "\nreplaying a {}-line recorded trace (first line: {:?}):",
        text.lines().count(),
        text.lines().next().unwrap()
    );
    let generated = stacked.run(Benchmark::AdpcmC.trace(50_000, 7), Mode::Ule);
    let replayed = stacked.run(Replay::from_text(&text).expect("parses"), Mode::Ule);
    assert_eq!(
        generated, replayed,
        "a replayed trace must drive the engine identically"
    );
    println!(
        "  generator and replay agree: CPI {:.3}, EPI {:.2} pJ",
        replayed.stats.cpi(),
        replayed.epi_pj()
    );
}
