//! Custom sweeps through the typed results API: register your own
//! experiment next to the paper's, filter the matrix with the
//! builder, and consume one schema for everything.
//!
//! This is the downstream-adopter view of the `Experiment` trait:
//! instead of parsing per-artifact text, you get a `Report` document
//! (sections → tables → typed cells) that renders to aligned text,
//! JSON, or CSV from the same data.
//!
//! ```text
//! cargo run --example custom_sweep --release
//! ```

use hyvec_cachesim::{Mode, System};
use hyvec_core::experiments::{Experiment, ExperimentParams};
use hyvec_core::registry::Registry;
use hyvec_core::render::{render, Format};
use hyvec_core::report::{Cell, Column, Report, Section, Table};
use hyvec_core::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::Benchmark;

/// A workload the paper never ran: mpeg2 decode at ULE mode, reported
/// as cache hit ratios. Registering it puts it in the same sweep,
/// seed-derivation and rendering pipeline as the paper's artifacts.
struct UleHitRatios;

impl Experiment for UleHitRatios {
    fn id(&self) -> &str {
        "ule-hit-ratios/A"
    }

    fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report {
        let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).expect("arch");
        let mut sys = System::new(arch.config.clone());
        let run = sys.run(
            Benchmark::Mpeg2D.trace(params.instructions, rng_seed),
            Mode::Ule,
        );
        let mut table = Table::new("hit_ratios")
            .with_header()
            .column(Column::new("cache").left(6))
            .column(Column::new("hit_ratio").header("hits").right(8).prefix(" "))
            .column(
                Column::new("accesses")
                    .header("accesses")
                    .right(10)
                    .prefix(" "),
            );
        for (name, stats) in [("il1", run.stats.il1), ("dl1", run.stats.dl1)] {
            table.push_row(vec![
                Cell::str(name),
                Cell::percent(stats.hit_ratio()),
                Cell::int(stats.accesses as i64),
            ]);
        }
        let mut section = Section::new(self.id(), rng_seed);
        section.push(table);
        Report::single(params.instructions, params.seed, section)
    }
}

fn main() {
    let params = ExperimentParams {
        instructions: 20_000,
        seed: 42,
    };

    // The paper's registry plus one custom experiment.
    let mut registry = Registry::standard();
    registry.register(Box::new(UleHitRatios));
    println!(
        "registry holds {} experiments; last id: {}",
        registry.len(),
        registry.ids().last().unwrap()
    );

    // Filter the matrix: scenario A energy artifacts + the custom one.
    let outcome = hyvec_core::SweepBuilder::new()
        .params(params)
        .scenarios([Scenario::A])
        .filter("fig*/A")
        .filter("ule-hit-ratios/*")
        .jobs(2)
        .run_with(&registry);

    println!("\n--- text ---\n{}", render(&outcome.report, Format::Text));
    println!("--- json (first lines) ---");
    for line in render(&outcome.report, Format::Json).lines().take(12) {
        println!("{line}");
    }
    println!("\n--- per-job wall time ---");
    for t in &outcome.timings {
        println!("{:<20} {:>9.3} ms", t.label, t.wall_ms());
    }
}
