//! Reliability demonstration: manufacture faulty dies, run real
//! workloads through the bit-accurate cache, and watch EDC do its job.
//!
//! Three systems run the same SmallBench workloads at ULE mode on
//! dies sampled at the 8T design failure rate:
//!
//! 1. the proposed 8T+SECDED way — corrects every hard fault it hits;
//! 2. the same faulty 8T cells with EDC disabled — silently corrupts
//!    data (what "just use smaller cells" would do, the failure the
//!    paper's methodology exists to prevent);
//! 3. an over-stressed die (10x the design failure rate) — SECDED now
//!    *detects* uncorrectable double faults instead of lying.
//!
//! ```text
//! cargo run --example reliability_demo --release
//! ```

use hyvec_cachesim::faults::sample_faults;
use hyvec_cachesim::{Mode, System};
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_edc::Protection;
use hyvec_mediabench::Benchmark;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::error::Error;

fn run_faulty(mut system: System, pf_ule_way: f64, seed: u64) -> (u64, u64, u64) {
    let mut pf = vec![0.0f64; 8];
    pf[7] = pf_ule_way;
    let mut rng = SmallRng::seed_from_u64(seed);
    let injected_d = sample_faults(system.dl1_mut(), &pf, &mut rng);
    let injected_i = sample_faults(system.il1_mut(), &pf, &mut rng);
    let mut corrected = 0;
    let mut detected = 0;
    let mut silent = 0;
    for b in Benchmark::SMALL {
        let r = system.run(b.trace(100_000, seed), Mode::Ule);
        corrected += r.stats.corrected();
        detected += r.stats.detected();
        silent += r.stats.silent_corruptions();
    }
    println!(
        "    injected {} faulty bits -> corrected {corrected}, detected {detected}, silent {silent}",
        injected_d + injected_i
    );
    (corrected, detected, silent)
}

fn main() -> Result<(), Box<dyn Error>> {
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal)?;
    let pf = arch.design.pf_8t;
    println!(
        "scenario A proposal: {} (8T sized x{:.2}, design Pf = {:.2e})\n",
        arch.composition(),
        arch.design.sizing_8t,
        pf
    );

    println!("[1] proposed design at its design failure rate:");
    let (corrected, _, silent) = run_faulty(System::new(arch.config.clone()), pf, 99);
    assert_eq!(silent, 0, "SECDED must deliver correct data");
    println!("    -> every exercised fault corrected ({corrected} corrections), zero corruption\n");

    println!("[2] same faulty cells, EDC turned off (the naive approach):");
    let mut naked = arch.config.clone();
    for way in naked.il1.ways.iter_mut().chain(naked.dl1.ways.iter_mut()) {
        way.protection_hp = Protection::None;
        way.protection_ule = Protection::None;
    }
    let (_, _, silent) = run_faulty(System::new(naked), pf, 99);
    println!("    -> {silent} silently corrupted loads: unusable for critical applications\n");

    println!("[3] proposed design on an over-stressed die (10x design Pf):");
    let (corrected, detected, silent) = run_faulty(System::new(arch.config.clone()), pf * 10.0, 99);
    println!(
        "    -> {corrected} corrected; {detected} uncorrectable but *detected* (never silent: {silent})"
    );

    println!("\nWord-level SECDED turns the 8T way's hard faults from silent data");
    println!("corruption into transparent corrections — the reliability");
    println!("equivalence the paper's design methodology guarantees.");
    Ok(())
}
