//! Quickstart: build the paper's proposed cache architecture, run a
//! workload in both operating modes, and print the energy results.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use hyvec_cachesim::{Mode, System};
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::Benchmark;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Size the cells with the paper's Fig. 2 methodology and build
    //    the scenario-A proposal: 7 ways of 6T + 1 ULE way of
    //    8T+SECDED (SECDED active only at 350mV).
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal)?;
    println!("architecture : {}", arch.composition());
    println!(
        "cell sizing  : 6T x{:.2}  10T x{:.2} (baseline)  8T x{:.2} (proposal)",
        arch.design.sizing_6t, arch.design.sizing_10t, arch.design.sizing_8t
    );
    println!(
        "yield        : baseline {:.5}  proposal {:.5} (Pf anchor {:.3e})",
        arch.design.yield_baseline, arch.design.yield_proposal, arch.design.pf_target
    );

    // 2. Run a big workload at HP mode (1V, 1GHz, all 8 ways).
    let mut system = System::new(arch.config.clone());
    let hp = system.run(Benchmark::Mpeg2C.trace(200_000, 1), Mode::Hp);
    println!(
        "\nHP  mode ({}): EPI {:.2} pJ, CPI {:.3}, IL1 hit {:.1}%, DL1 hit {:.1}%",
        Benchmark::Mpeg2C,
        hp.epi_pj(),
        hp.stats.cpi(),
        100.0 * hp.stats.il1.hit_ratio(),
        100.0 * hp.stats.dl1.hit_ratio(),
    );

    // 3. Switch to ULE mode (350mV, 5MHz): the seven 6T ways are
    //    gated off and SECDED turns on in the remaining 8T way.
    let ule = system.run(Benchmark::AdpcmC.trace(200_000, 1), Mode::Ule);
    println!(
        "ULE mode ({}): EPI {:.3} pJ, CPI {:.3}, IL1 hit {:.1}%, DL1 hit {:.1}%",
        Benchmark::AdpcmC,
        ule.epi_pj(),
        ule.stats.cpi(),
        100.0 * ule.stats.il1.hit_ratio(),
        100.0 * ule.stats.dl1.hit_ratio(),
    );
    println!(
        "energy split : L1 dynamic {:.3} pJ/instr, L1 leakage {:.3}, EDC {:.4}, rest {:.3}",
        ule.energy.l1_dynamic_pj / ule.stats.instructions as f64,
        ule.energy.l1_leakage_pj / ule.stats.instructions as f64,
        ule.energy.edc_pj / ule.stats.instructions as f64,
        ule.energy.other_pj / ule.stats.instructions as f64,
    );
    Ok(())
}
