//! Sensor-node duty cycle: the deployment the paper's introduction
//! motivates — a battery-powered environmental monitor that spends
//! ~99.9% of its time in ULE mode sampling and filtering, waking to
//! HP mode only for infrequent events (Szewczyk et al.'s sensor
//! deployments report 0.01%–1% active time).
//!
//! The example integrates energy over a duty-cycled day for the
//! baseline and proposed designs and reports the battery-life
//! implication.
//!
//! ```text
//! cargo run --example sensor_node --release
//! ```

use hyvec_cachesim::{Mode, System};
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::Benchmark;
use std::error::Error;

/// One duty-cycle description: what runs in each mode and how the
/// wall-clock day splits between them.
struct DutyCycle {
    /// Fraction of time at HP mode (the paper quotes 0.01%–1%).
    hp_fraction: f64,
    /// Workload at HP (event analysis burst).
    hp_workload: Benchmark,
    /// Workload at ULE (continuous monitoring).
    ule_workload: Benchmark,
}

/// Average power of a design under the duty cycle, in microwatts.
fn average_power_uw(point: DesignPoint, duty: &DutyCycle) -> Result<f64, Box<dyn Error>> {
    let arch = Architecture::build(Scenario::A, point)?;
    let mut system = System::new(arch.config.clone());

    // Characterize each mode with a representative run.
    let instructions = 150_000;
    let hp = system.run(duty.hp_workload.trace(instructions, 11), Mode::Hp);
    let ule = system.run(duty.ule_workload.trace(instructions, 12), Mode::Ule);

    // Power = energy / wall-clock time of the run, weighted by the
    // duty-cycle split.
    let hp_power_w = hp.energy.total_pj() * 1e-12 / hp.seconds;
    let ule_power_w = ule.energy.total_pj() * 1e-12 / ule.seconds;
    let avg = duty.hp_fraction * hp_power_w + (1.0 - duty.hp_fraction) * ule_power_w;
    Ok(avg * 1e6)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Sensor-node duty-cycle study (scenario A: 6T+10T vs 6T+8T+SECDED)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>13}",
        "HP time", "baseline (uW)", "proposal (uW)", "saving", "battery gain"
    );

    // A 3.6kJ coin-cell-class budget for illustration (e.g. ~1000mAh
    // at 1V equivalent).
    let battery_j = 3600.0;

    for hp_fraction in [0.0001, 0.001, 0.01] {
        let duty = DutyCycle {
            hp_fraction,
            hp_workload: Benchmark::Mpeg2C, // event burst: heavy processing
            ule_workload: Benchmark::AdpcmC, // monitoring: light streaming
        };
        let base = average_power_uw(DesignPoint::Baseline, &duty)?;
        let prop = average_power_uw(DesignPoint::Proposal, &duty)?;
        let saving = 1.0 - prop / base;
        let base_days = battery_j / (base * 1e-6) / 86_400.0;
        let prop_days = battery_j / (prop * 1e-6) / 86_400.0;
        println!(
            "{:>9.2}% {:>14.2} {:>14.2} {:>8.1}% {:>6.0} -> {:.0} d",
            hp_fraction * 100.0,
            base,
            prop,
            saving * 100.0,
            base_days,
            prop_days,
        );
    }

    println!("\nThe battery-lifetime gain tracks the ULE-mode saving because the");
    println!("node spends almost all wall-clock time at 350mV — exactly the");
    println!("paper's motivation for optimizing the ULE way.");
    Ok(())
}
