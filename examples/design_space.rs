//! Design-space exploration with the public API: sweep the ULE
//! voltage and the yield target and watch the methodology re-size the
//! cells — the kind of study a downstream adopter would run before
//! committing to a design point.
//!
//! ```text
//! cargo run --example design_space --release
//! ```

use hyvec_core::methodology::{design_ule_way, MethodologyInputs};
use hyvec_core::Scenario;
use hyvec_sram::cell::{CellKind, SizedCell};
use hyvec_sram::FailureModel;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let model = FailureModel::default();

    println!("== ULE-voltage sweep (scenario A, 99% yield) ==");
    println!(
        "{:>8} {:>9} {:>9} {:>11} {:>11} {:>10}",
        "Vcc(mV)", "10T size", "8T size", "10T area", "8T+7b area", "area save"
    );
    for mv in [300u32, 325, 350, 375, 400, 450] {
        let inputs = MethodologyInputs {
            ule_vdd: f64::from(mv) / 1000.0,
            ..MethodologyInputs::default()
        };
        match design_ule_way(Scenario::A, &model, &inputs) {
            Ok(d) => {
                let a10 = SizedCell::new(CellKind::Sram10T, d.sizing_10t).area_um2();
                let a8 = SizedCell::new(CellKind::Sram8T, d.sizing_8t).area_um2() * 39.0 / 32.0;
                println!(
                    "{:>8} {:>9.2} {:>9.2} {:>10.3}u {:>10.3}u {:>9.1}%",
                    mv,
                    d.sizing_10t,
                    d.sizing_8t,
                    a10,
                    a8,
                    100.0 * (1.0 - a8 / a10)
                );
            }
            Err(e) => println!("{mv:>8} methodology infeasible: {e}"),
        }
    }

    println!("\n== Yield-target sweep (scenario A at 350mV) ==");
    println!(
        "{:>8} {:>12} {:>9} {:>9} {:>12}",
        "yield", "Pf anchor", "10T size", "8T size", "8T Pf"
    );
    for target in [0.90, 0.95, 0.99, 0.999] {
        let inputs = MethodologyInputs {
            target_yield: target,
            ..MethodologyInputs::default()
        };
        let d = design_ule_way(Scenario::A, &model, &inputs)?;
        println!(
            "{:>8.3} {:>12.3e} {:>9.2} {:>9.2} {:>12.3e}",
            target, d.pf_target, d.sizing_10t, d.sizing_8t, d.pf_8t
        );
    }

    println!("\n== Where does 6T stop working? ==");
    for mv in [1000u32, 800, 700, 650, 620, 600, 500, 350] {
        let v = f64::from(mv) / 1000.0;
        match model.sizing_for_pf(CellKind::Sram6T, v, 1.22e-6) {
            Ok(s) => println!("  {mv:>4} mV: 6T works at sizing x{s:.2}"),
            Err(e) => println!("  {mv:>4} mV: {e}"),
        }
    }

    println!("\nThe 8T+SECDED point stays well below the 10T sizing across the");
    println!("whole sweep — the proposal's advantage is robust to the exact");
    println!("ULE voltage and yield target, not an artifact of one setting.");
    Ok(())
}
