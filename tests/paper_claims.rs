//! Calibration tests for the paper's headline claims.
//!
//! Absolute joules cannot be compared against the authors' closed
//! toolchain (CACTI extensions + MPSim + HSPICE), so these tests pin
//! the *shape* of every headline number inside a tolerance band around
//! the paper's reported value:
//!
//! * HP-mode EPI savings: 14% (A) / 12% (B)  -> bands 10–18% / 8–16%
//! * ULE-mode EPI savings: 42% (A) / 39% (B) -> bands 35–48% / 30–45%
//! * Scenario A saves more than B in both modes (same ordering)
//! * ULE execution-time overhead: ~3% ("negligible") -> band 0–6%
//! * Pf anchor: 1.22e-6 for 99% yield over the 8K-bit example
//! * Proposal yield >= baseline yield in both scenarios

use hyvec_core::experiments::{
    fig3_hp_epi, fig4_ule_epi, methodology_table, ule_performance, ExperimentParams,
};
use hyvec_core::Scenario;

fn params() -> ExperimentParams {
    ExperimentParams {
        instructions: 60_000,
        seed: 2013,
    }
}

#[test]
fn hp_savings_match_paper_bands() {
    let a = fig3_hp_epi(Scenario::A, params());
    let b = fig3_hp_epi(Scenario::B, params());
    assert!(
        a.saving > 0.10 && a.saving < 0.18,
        "scenario A HP saving {:.3} outside 10-18% (paper: 14%)",
        a.saving
    );
    assert!(
        b.saving > 0.08 && b.saving < 0.16,
        "scenario B HP saving {:.3} outside 8-16% (paper: 12%)",
        b.saving
    );
    assert!(
        a.saving > b.saving,
        "paper ordering: A (14%) saves more than B (12%) at HP; got A {:.3} vs B {:.3}",
        a.saving,
        b.saving
    );
}

#[test]
fn ule_savings_match_paper_bands() {
    let a = fig4_ule_epi(Scenario::A, params());
    let b = fig4_ule_epi(Scenario::B, params());
    assert!(
        a.avg_saving > 0.35 && a.avg_saving < 0.48,
        "scenario A ULE saving {:.3} outside 35-48% (paper: 42%)",
        a.avg_saving
    );
    assert!(
        b.avg_saving > 0.30 && b.avg_saving < 0.45,
        "scenario B ULE saving {:.3} outside 30-45% (paper: 39%)",
        b.avg_saving
    );
    assert!(
        a.avg_saving > b.avg_saving,
        "paper ordering: A (42%) saves more than B (39%) at ULE; got A {:.3} vs B {:.3}",
        a.avg_saving,
        b.avg_saving
    );
}

#[test]
fn hp_mode_has_no_performance_degradation() {
    // "Our architecture does not experience any performance
    //  degradation (no latency overhead)" at HP — Sec. IV-B.1.
    use hyvec_cachesim::{Mode, System};
    use hyvec_core::architecture::{Architecture, DesignPoint};
    use hyvec_mediabench::Benchmark;
    for s in Scenario::ALL {
        let base = Architecture::build(s, DesignPoint::Baseline).unwrap();
        let prop = Architecture::build(s, DesignPoint::Proposal).unwrap();
        let mut bs = System::new(base.config.clone());
        let mut ps = System::new(prop.config.clone());
        for b in [Benchmark::GsmC, Benchmark::Mpeg2D] {
            let br = bs.run(b.trace(40_000, 9), Mode::Hp);
            let pr = ps.run(b.trace(40_000, 9), Mode::Hp);
            assert_eq!(
                br.stats.cycles, pr.stats.cycles,
                "scenario {s}/{b}: HP cycles must be identical"
            );
        }
    }
}

#[test]
fn ule_overhead_is_negligible_like_the_paper() {
    // "around 3% increase in execution time in all cases".
    for s in Scenario::ALL {
        let rows = ule_performance(s, params());
        let avg: f64 = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
        assert!(
            (0.0..0.06).contains(&avg),
            "scenario {s}: ULE overhead {avg:.4} outside 0-6% (paper: ~3%)"
        );
        for r in &rows {
            assert!(
                r.overhead < 0.08,
                "scenario {s}/{}: overhead {:.4}",
                r.benchmark,
                r.overhead
            );
        }
    }
}

#[test]
fn pf_anchor_reproduces_exactly() {
    // "to have a 99% yield for an 8KB cache, faulty bit rate Pf must
    //  be 1.22e-6" — Sec. III-C.
    let designs = methodology_table();
    let a = designs
        .iter()
        .find(|d| d.scenario == Scenario::A)
        .expect("scenario A present");
    assert!(
        (a.pf_target - 1.2268e-6).abs() < 1e-8,
        "anchor {} vs paper 1.22e-6",
        a.pf_target
    );
}

#[test]
fn methodology_preserves_reliability_levels() {
    // "while keeping the same guaranteed performance and reliability
    //  levels" — the proposal's yield is never below the baseline's.
    for d in methodology_table() {
        assert!(
            d.yield_proposal >= d.yield_baseline,
            "scenario {:?}: proposal yield {} < baseline {}",
            d.scenario,
            d.yield_proposal,
            d.yield_baseline
        );
        assert!(
            d.sizing_8t < d.sizing_10t,
            "scenario {:?}: the 8T cells must stay smaller than the 10T cells",
            d.scenario
        );
    }
}

#[test]
fn benchmarks_show_minor_differences_to_the_average() {
    // "All benchmarks show minor differences to the average" (HP).
    let r = fig3_hp_epi(Scenario::A, params());
    let avg = 1.0 - r.saving;
    for (b, ratio) in &r.per_benchmark {
        assert!(
            (ratio - avg).abs() < 0.08,
            "{b}: normalized EPI {ratio:.3} deviates from average {avg:.3}"
        );
    }
}

#[test]
fn leakage_savings_exceed_dynamic_savings_at_ule() {
    // "the relative leakage energy savings are larger than those for
    //  dynamic energy" — Sec. IV-B.2.
    let r = fig4_ule_epi(Scenario::A, params());
    for row in &r.rows {
        let dyn_saving = 1.0 - row.proposal.l1_dynamic_pj / row.baseline.l1_dynamic_pj;
        let leak_saving = 1.0 - row.proposal.l1_leakage_pj / row.baseline.l1_leakage_pj;
        assert!(
            leak_saving > dyn_saving,
            "{}: leakage saving {:.3} must exceed dynamic saving {:.3}",
            row.benchmark,
            leak_saving,
            dyn_saving
        );
    }
}
