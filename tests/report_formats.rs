//! Workspace-level tests of the report/render pipeline: the JSON and
//! CSV backends must produce parseable structured output covering
//! every artifact × scenario cell of the evaluation matrix, and the
//! escaping rules must round-trip arbitrary content.

use std::collections::HashMap;

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::render::{csv_field, escape_json, render, Format, CSV_HEADER};
use hyvec_core::report::{Cell, Column, Report, Section, Table};
use hyvec_core::sweep::{full_matrix, run_all, SweepBuilder};
use proptest::prelude::*;

fn quick() -> ExperimentParams {
    ExperimentParams {
        instructions: 2_000,
        seed: 0xD47E_2013,
    }
}

// ---------------------------------------------------------------------
// A minimal JSON value parser (test-only): enough of RFC 8259 to
// validate renderer output without trusting the renderer's own code.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn lit(&mut self, s: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = match self.peek()? {
                b'"' => self.string()?,
                _ => return Err(format!("expected object key at byte {}", self.pos)),
            };
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        let text = std::str::from_utf8(self.bytes).expect("input was a &str");
        let mut chars = text[self.pos..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((j, 'u')) => {
                        let hex = &text[self.pos + j + 1..self.pos + j + 5];
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!("raw control char {:#x} in string", c as u32))
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

/// Splits one CSV line into fields, honoring RFC 4180 quoting.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match (quoted, c) {
            (false, ',') => fields.push(std::mem::take(&mut field)),
            (false, '"') if field.is_empty() => quoted = true,
            (true, '"') => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            (_, c) => field.push(c),
        }
    }
    fields.push(field);
    fields
}

// ---------------------------------------------------------------------
// Structured-output coverage of the full matrix
// ---------------------------------------------------------------------

#[test]
fn json_sweep_parses_and_covers_the_matrix() {
    let report = run_all(quick(), 4);
    let json = Parser::parse(&render(&report, Format::Json)).expect("renderer emits valid JSON");
    assert_eq!(
        json.get("schema").unwrap().as_str(),
        "hyvec-report/v1",
        "schema tag"
    );
    let sections = json.get("sections").unwrap().as_arr();
    let expected: Vec<String> = full_matrix(quick()).into_iter().map(|j| j.label).collect();
    let got: Vec<&str> = sections
        .iter()
        .map(|s| s.get("label").unwrap().as_str())
        .collect();
    assert_eq!(got, expected, "every matrix cell appears, in order");
    for section in sections {
        let tables = section.get("tables").unwrap().as_arr();
        assert!(
            !tables.is_empty(),
            "section {} has no tables",
            section.get("label").unwrap().as_str()
        );
        for table in tables {
            let columns = table.get("columns").unwrap().as_arr();
            for row in table.get("rows").unwrap().as_arr() {
                if let Json::Obj(fields) = row {
                    assert_eq!(fields.len(), columns.len(), "row arity matches columns");
                } else {
                    panic!("rows must be objects");
                }
            }
        }
        // Seeds are strings so u64 survives double-precision readers.
        let seed = section.get("seed").unwrap().as_str();
        assert!(seed.parse::<u64>().is_ok(), "seed {seed:?} is not a u64");
    }
}

#[test]
fn csv_sweep_covers_the_matrix_with_typed_cells() {
    let report = run_all(quick(), 4);
    let csv = render(&report, Format::Csv);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(CSV_HEADER));
    let mut cells_per_section: HashMap<String, usize> = HashMap::new();
    for line in lines {
        let fields = split_csv_line(line);
        assert_eq!(fields.len(), 7, "malformed CSV line {line:?}");
        assert!(
            ["str", "int", "float", "percent"].contains(&fields[5].as_str()),
            "unknown cell type {:?}",
            fields[5]
        );
        if fields[5] != "str" {
            assert!(
                fields[6] == "null" || fields[6].parse::<f64>().is_ok(),
                "numeric cell with non-numeric value {:?}",
                fields[6]
            );
        }
        *cells_per_section.entry(fields[0].clone()).or_default() += 1;
    }
    for job in full_matrix(quick()) {
        assert!(
            cells_per_section.get(&job.label).copied().unwrap_or(0) > 0,
            "matrix cell {} missing from CSV",
            job.label
        );
    }
}

#[test]
fn single_experiment_reports_render_in_all_formats() {
    let outcome = SweepBuilder::new()
        .params(quick())
        .artifacts(["area"])
        .jobs(1)
        .run();
    for format in [Format::Text, Format::Json, Format::Csv] {
        let out = render(&outcome.report, format);
        assert!(out.contains("area/A"), "{format} output lost the label");
    }
    Parser::parse(&render(&outcome.report, Format::Json)).expect("filtered report is valid JSON");
}

// ---------------------------------------------------------------------
// Escaping property tests
// ---------------------------------------------------------------------

/// Draws strings salted with the characters both escapers must handle.
fn nasty_string(rng: &mut proptest::TestRng) -> String {
    const SPECIALS: [char; 10] = ['"', '\\', ',', '\n', '\r', '\t', '\u{1}', 'é', '✓', ' '];
    let len = rng.below(24) as usize;
    (0..len)
        .map(|_| {
            if rng.below(2) == 0 {
                SPECIALS[rng.below(SPECIALS.len() as u64) as usize]
            } else {
                char::from(b'a' + (rng.below(26) as u8))
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn json_string_escaping_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = proptest::TestRng::for_test(&format!("json-esc-{seed}"));
        let original = nasty_string(&mut rng);
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(&original));
        let parsed = Parser::parse(&doc)
            .map_err(|e| TestCaseError::fail(format!("{original:?}: {e}")))?;
        prop_assert_eq!(parsed.get("k").unwrap().as_str(), original.as_str());
    }

    #[test]
    fn csv_field_quoting_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = proptest::TestRng::for_test(&format!("csv-esc-{seed}"));
        let a = nasty_string(&mut rng);
        let b = nasty_string(&mut rng);
        // Embedded line breaks span physical lines; join before split
        // as a stream-parser would. Restrict to single-line content
        // here and cover line breaks in the unit tests above.
        prop_assume!(!a.contains('\n') && !a.contains('\r'));
        prop_assume!(!b.contains('\n') && !b.contains('\r'));
        let line = format!("{},{}", csv_field(&a), csv_field(&b));
        let fields = split_csv_line(&line);
        prop_assert_eq!(fields.len(), 2);
        prop_assert_eq!(&fields[0], &a);
        prop_assert_eq!(&fields[1], &b);
    }

    #[test]
    fn arbitrary_tables_render_valid_json_and_csv(label_n in 1u64..6, rows_n in 0usize..5) {
        let mut rng = proptest::TestRng::for_test(&format!("table-{label_n}-{rows_n}"));
        // Labels and cells carry arbitrary specials except line breaks
        // (covered by the dedicated quoting tests above), so physical
        // CSV lines equal logical records.
        let mut fresh = || nasty_string(&mut rng).replace(['\n', '\r'], "~");
        let label = fresh();
        let mut table = Table::new(fresh())
            .column(Column::new("s"))
            .column(Column::new("v"));
        let mut originals = Vec::new();
        for _ in 0..rows_n {
            let s = fresh();
            originals.push(s.clone());
            table.push_row(vec![Cell::str(s), Cell::float(0.5, 3)]);
        }
        let mut section = Section::new(label.clone(), 7);
        section.push(table);
        let report = Report::single(1000, label_n, section);

        let json = render(&report, Format::Json);
        let parsed = Parser::parse(&json).map_err(TestCaseError::fail)?;
        let sections = parsed.get("sections").unwrap().as_arr();
        prop_assert_eq!(sections[0].get("label").unwrap().as_str(), label.as_str());

        let csv = render(&report, Format::Csv);
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), 1 + rows_n * 2, "one CSV record per cell");
        for (i, original) in originals.iter().enumerate() {
            let fields = split_csv_line(lines[1 + i * 2]);
            prop_assert_eq!(&fields[0], &label);
            prop_assert_eq!(&fields[6], original, "str cell survives CSV");
        }
    }
}
