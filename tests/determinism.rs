//! Regression tests for the sweep engine's determinism contract:
//! reports are a pure function of (base seed, instruction count), and
//! worker count is not observable in the output.

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::seed::derive_seed;
use hyvec_core::sweep::{full_matrix, run_all};

fn quick() -> ExperimentParams {
    ExperimentParams {
        instructions: 2_000,
        seed: 0xD47E_2013,
    }
}

#[test]
fn same_seed_gives_byte_identical_reports() {
    let first = run_all(quick(), 1);
    let second = run_all(quick(), 1);
    assert_eq!(
        first.render(),
        second.render(),
        "two sweeps with the same base seed must render identically"
    );
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    let serial = run_all(quick(), 1);
    for jobs in [2, 8] {
        let parallel = run_all(quick(), jobs);
        assert_eq!(
            serial.render(),
            parallel.render(),
            "worker count {jobs} changed the report"
        );
    }
}

#[test]
fn different_base_seeds_give_different_reports() {
    let a = run_all(quick(), 4);
    let b = run_all(
        ExperimentParams {
            seed: quick().seed + 1,
            ..quick()
        },
        4,
    );
    assert_ne!(
        a.render(),
        b.render(),
        "the base seed must actually reach the experiments"
    );
}

#[test]
fn report_sections_follow_canonical_matrix_order() {
    let report = run_all(quick(), 4);
    let labels: Vec<_> = report.sections.iter().map(|s| s.label.clone()).collect();
    let expected: Vec<_> = full_matrix(quick()).into_iter().map(|j| j.label).collect();
    assert_eq!(labels, expected, "sections must keep matrix order");
}

#[test]
fn section_seeds_use_the_shared_derivation() {
    // The report records each job's private seed; it must come from
    // the shared hyvec_core::seed derivation of (base seed, label) —
    // not from some scheduler-dependent source.
    let report = run_all(quick(), 2);
    for section in &report.sections {
        assert_eq!(
            section.seed,
            derive_seed(quick().seed, &section.label),
            "section {} carries a foreign seed",
            section.label
        );
    }
}

#[test]
fn multi_core_interleaved_runs_are_jobs_invariant() {
    // The ablation-cores sections simulate up to 8 round-robin
    // interleaved cores over one shared L2; their output must be
    // bit-reproducible whether the sweep runs serially or fanned
    // across workers.
    use hyvec_core::render::{render, Format};
    use hyvec_core::sweep::SweepBuilder;
    let sweep = |jobs: usize| {
        SweepBuilder::new()
            .params(quick())
            .jobs(jobs)
            .filter("ablation-cores/*")
            .run()
            .report
    };
    let serial = sweep(1);
    assert_eq!(serial.sections.len(), 2, "ablation-cores/A and /B");
    for jobs in [2, 4] {
        let parallel = sweep(jobs);
        for format in [Format::Text, Format::Json, Format::Csv] {
            assert_eq!(
                render(&serial, format),
                render(&parallel, format),
                "worker count {jobs} changed the multi-core {format} output"
            );
        }
    }
}

#[test]
fn sim_threads_are_invariant_across_all_render_formats() {
    // The epoch-parallel engine must be invisible in the output: the
    // ablation-cores sections (up to 64 cores, shared and private-L2
    // MESI topologies) rendered in every format must come out
    // byte-identical between the serial reference loop and the
    // threaded epoch merge.
    use hyvec_core::render::{render, Format};
    use hyvec_core::sweep::SweepBuilder;
    let sweep = |sim_threads: usize| {
        SweepBuilder::new()
            .params(quick())
            .jobs(2)
            .sim_threads(sim_threads)
            .filter("ablation-cores/*")
            .run()
            .report
    };
    let serial = sweep(1);
    for sim_threads in [2, 8] {
        let threaded = sweep(sim_threads);
        for format in [Format::Text, Format::Json, Format::Csv] {
            assert_eq!(
                render(&serial, format),
                render(&threaded, format),
                "--sim-threads {sim_threads} changed the {format} output"
            );
        }
    }
}

#[test]
fn multi_core_engine_is_bit_reproducible() {
    // Below the sweep layer: two identical 4-core interleaved runs
    // must produce identical per-core and chain statistics.
    use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
    use hyvec_cachesim::engine::System;
    use hyvec_mediabench::{multiprogram_sources, Benchmark};
    let build = || {
        System::builder()
            .config(SystemConfig::uniform_6t())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
            .build_multi(4)
            .expect("4-core system")
    };
    let benches = [
        Benchmark::Mpeg2C,
        Benchmark::Mpeg2D,
        Benchmark::GsmC,
        Benchmark::GsmD,
    ];
    let run = || build().run(multiprogram_sources(&benches, 10_000, 42), Mode::Hp);
    assert_eq!(run(), run(), "4-core interleaved run must be reproducible");
}

#[test]
fn forced_slow_path_matches_fast_path_counters() {
    // `hyvec run-all --force-slow-path` routes every access through
    // the full EDC decode path; the fast path is a pure optimization,
    // so every rendered format must come out byte-identical.
    use hyvec_core::render::{render, Format};
    use hyvec_core::sweep::SweepBuilder;
    let sweep = |force: bool| {
        SweepBuilder::new()
            .params(quick())
            .jobs(2)
            .force_slow_path(force)
            .run()
            .report
    };
    let fast = sweep(false);
    let slow = sweep(true);
    for format in [Format::Text, Format::Json, Format::Csv] {
        assert_eq!(
            render(&fast, format),
            render(&slow, format),
            "--force-slow-path changed the {format} output"
        );
    }
}

#[test]
fn structured_formats_are_jobs_invariant_too() {
    // The determinism contract extends beyond the text renderer: the
    // JSON and CSV outputs must also be independent of worker count.
    use hyvec_core::render::{render, Format};
    let serial = run_all(quick(), 1);
    let parallel = run_all(quick(), 4);
    for format in [Format::Json, Format::Csv] {
        assert_eq!(
            render(&serial, format),
            render(&parallel, format),
            "worker count changed the {format} output"
        );
    }
}
