//! Cross-crate integration tests: the full pipeline from EDC codes
//! through the failure/yield models, the architecture builder, the
//! functional cache with fault injection, and the simulator.

use hyvec_cachesim::cache::{HybridCache, StuckBits, WordSlot};
use hyvec_cachesim::config::Mode;
use hyvec_cachesim::engine::System;
use hyvec_cachesim::faults::sample_faults;
use hyvec_cachesim::power::PowerModel;
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_core::experiments::{
    ablation_memory_latency, ablation_ways, reliability, ExperimentParams,
};
use hyvec_edc::{Decoded, DectedCode, EdcCode, HsiaoCode};
use hyvec_mediabench::Benchmark;
use hyvec_sram::FailureModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn quick() -> ExperimentParams {
    ExperimentParams {
        instructions: 20_000,
        seed: 42,
    }
}

#[test]
fn end_to_end_proposal_runs_both_modes() {
    for s in Scenario::ALL {
        let arch = Architecture::build(s, DesignPoint::Proposal).unwrap();
        let mut sys = System::new(arch.config.clone());
        let hp = sys.run(Benchmark::Mpeg2C.trace(30_000, 1), Mode::Hp);
        assert_eq!(hp.stats.instructions, 30_000);
        assert!(hp.stats.il1.hit_ratio() > 0.9);
        assert_eq!(hp.stats.silent_corruptions(), 0, "clean silicon");
        let ule = sys.run(Benchmark::EpicD.trace(30_000, 1), Mode::Ule);
        assert!(ule.epi_pj() < hp.epi_pj(), "ULE must be far more frugal");
        assert_eq!(ule.stats.silent_corruptions(), 0);
    }
}

#[test]
fn the_codes_in_the_cache_are_the_real_codes() {
    // The cache datapath and the standalone codecs agree bit for bit:
    // encode a word through the codec and verify the cache's stored
    // encoding decodes identically after corruption.
    let secded = HsiaoCode::secded32();
    let dected = DectedCode::dected32();
    for data in [0u64, 0xFFFF_FFFF, 0x1234_5678] {
        let cw = secded.encode(data);
        assert_eq!(
            secded.decode(cw ^ 2),
            Decoded::Corrected { data, errors: 1 }
        );
        let cw = dected.encode(data);
        assert_eq!(
            dected.decode(cw ^ 0b110),
            Decoded::Corrected { data, errors: 2 }
        );
    }
}

#[test]
fn sampled_fault_maps_stay_within_the_edc_budget() {
    // Manufacture many dies of the scenario-A proposal at its design
    // Pf and verify the vast majority satisfy the per-word budget —
    // the Monte-Carlo counterpart of the yield math.
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).unwrap();
    let design = arch.design;
    let mut ok = 0u32;
    let dies = 40;
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..dies {
        let mut cache = HybridCache::new(arch.config.dl1.clone(), Mode::Ule);
        let mut pf = vec![0.0; 8];
        pf[7] = design.pf_8t;
        sample_faults(&mut cache, &pf, &mut rng);
        // Walk the whole ULE way: every word must decode.
        let mut die_ok = true;
        for addr in (0..1024u64).step_by(4) {
            let out = cache.access(addr, false);
            if out.detected > 0 || out.silent > 0 {
                die_ok = false;
            }
        }
        if die_ok {
            ok += 1;
        }
    }
    let mc_yield = f64::from(ok) / f64::from(dies);
    assert!(
        mc_yield >= design.yield_baseline - 0.12,
        "MC yield {mc_yield} far below analytic {}",
        design.yield_baseline
    );
}

#[test]
fn reliability_experiment_shows_edc_value() {
    let r = reliability(Scenario::B, 30, quick());
    assert_eq!(r.proposal_silent, 0);
    assert!(r.analytic_proposal >= r.analytic_baseline);
}

#[test]
fn ablation_way_split_shows_no_further_insight() {
    // 6+2 behaves in the same direction as 7+1 (the paper's reason to
    // show only 7+1).
    let rows = ablation_ways(Scenario::A, quick());
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(
            row.hp_saving > 0.05,
            "{}+{}: HP saving {}",
            row.hp_ways,
            row.ule_ways,
            row.hp_saving
        );
        assert!(
            row.ule_saving > 0.20,
            "{}+{}: ULE saving {}",
            row.hp_ways,
            row.ule_ways,
            row.ule_saving
        );
    }
}

#[test]
fn ablation_memory_latency_does_not_change_trends() {
    let rows = ablation_memory_latency(Scenario::A, quick());
    assert_eq!(rows.len(), 4);
    let savings: Vec<f64> = rows.iter().map(|r| r.hp_saving).collect();
    for s in &savings {
        assert!(*s > 0.05, "saving collapsed: {savings:?}");
    }
    // The spread across latencies stays small: trends unchanged.
    let max = savings.iter().cloned().fold(f64::MIN, f64::max);
    let min = savings.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.06, "latency changed the trend: {savings:?}");
}

#[test]
fn area_model_is_consistent_across_crates() {
    // The architecture's area (through the power model) must reflect
    // the cell areas from hyvec-sram: swapping 10T->8T+checks shrinks
    // the ULE way.
    for s in Scenario::ALL {
        let base = Architecture::build(s, DesignPoint::Baseline).unwrap();
        let prop = Architecture::build(s, DesignPoint::Proposal).unwrap();
        let bp = PowerModel::new(&base.config);
        let pp = PowerModel::new(&prop.config);
        assert!(pp.il1.area_um2() < bp.il1.area_um2(), "scenario {s}");
    }
}

#[test]
fn stuck_bits_follow_through_the_whole_stack() {
    // Install a specific stuck bit in the proposal's ULE way and watch
    // the run report count exactly the corrections it causes.
    let arch = Architecture::build(Scenario::A, DesignPoint::Proposal).unwrap();
    let mut sys = System::new(arch.config.clone());
    // Fill will happen at set 0, word 0 of the ULE way (way 7).
    sys.dl1_mut().set_stuck_bits(
        WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        },
        StuckBits {
            mask: 1 << 4,
            value: 0,
        },
    );
    let report = sys.run(Benchmark::AdpcmC.trace(30_000, 3), Mode::Ule);
    // The fault may or may not be exercised by the trace, but there
    // must never be a silent corruption and the run must finish.
    assert_eq!(report.stats.silent_corruptions(), 0);
    assert_eq!(report.stats.instructions, 30_000);
}

#[test]
fn failure_model_and_methodology_agree() {
    // The sizing chosen by the methodology actually achieves the
    // target failure rate according to the failure model.
    let model = FailureModel::default();
    for s in Scenario::ALL {
        let arch = Architecture::build(s, DesignPoint::Baseline).unwrap();
        let d = &arch.design;
        let achieved = model.pf(
            &hyvec_sram::SizedCell::new(hyvec_sram::CellKind::Sram10T, d.sizing_10t),
            0.35,
        );
        assert!(
            achieved <= d.pf_target * 1.0001,
            "scenario {s}: 10T sizing misses the anchor"
        );
    }
}

#[test]
fn deterministic_experiments() {
    // Same params -> bit-identical experiment outputs (everything is
    // seeded).
    use hyvec_core::experiments::fig3_hp_epi;
    let a = fig3_hp_epi(Scenario::A, quick());
    let b = fig3_hp_epi(Scenario::A, quick());
    assert_eq!(a.saving.to_bits(), b.saving.to_bits());
}
