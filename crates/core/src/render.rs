//! Rendering backends for [`crate::report::Report`] documents.
//!
//! Three hand-rolled backends (the build environment is offline, so no
//! serde):
//!
//! * [`TextRenderer`] — the historical aligned human-readable format,
//!   byte-identical to the pre-refactor `hyvec run-all` output (the
//!   determinism tests compare these strings);
//! * [`JsonRenderer`] — a pretty-printed JSON document carrying every
//!   typed cell under stable machine keys (seeds are decimal strings
//!   so 64-bit values survive readers that parse numbers as doubles);
//! * [`CsvRenderer`] — one long-format CSV stream with a
//!   `section,seed,table,row,column,type,value` row per cell, covering
//!   every artifact × scenario cell of the matrix.
//!
//! All three are pure functions of the report: rendering never
//! re-runs experiments, and two structurally equal reports render to
//! identical bytes in every format.

use std::fmt;
use std::str::FromStr;

use crate::report::{format_f64, Cell, Report, Section, Table};

/// The output formats of the render layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Aligned human-readable text (default).
    #[default]
    Text,
    /// Structured JSON.
    Json,
    /// Long-format CSV (one row per cell).
    Csv,
}

impl Format {
    /// Every format, for help strings and tests.
    pub const ALL: [Format; 3] = [Format::Text, Format::Json, Format::Csv];

    /// The CLI name of the format.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format {other:?} (expected text|json|csv)")),
        }
    }
}

/// A rendering backend: turns a typed report into one output string.
pub trait Render {
    /// Renders the whole report.
    fn render(&self, report: &Report) -> String;
}

/// Renders `report` in `format` (convenience over the backend types).
pub fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Text => TextRenderer.render(report),
        Format::Json => JsonRenderer.render(report),
        Format::Csv => CsvRenderer.render(report),
    }
}

// ---------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------

/// The historical human-readable format.
#[derive(Debug)]
pub struct TextRenderer;

impl Render for TextRenderer {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {} jobs, {} instructions/benchmark, base seed {}\n\n",
            report.title,
            report.sections.len(),
            report.instructions,
            report.base_seed
        ));
        for section in &report.sections {
            out.push_str(&format!(
                "== {} (seed {:#018x}) ==\n",
                section.label, section.seed
            ));
            for table in &section.tables {
                if !table.hidden_in_text {
                    out.push_str(&table.render_text());
                }
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// The structured JSON backend.
#[derive(Debug)]
pub struct JsonRenderer;

/// Schema tag emitted at the top of every JSON report.
pub const JSON_SCHEMA: &str = "hyvec-report/v1";

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", escape_json(s))
}

fn json_cell(cell: &Cell) -> String {
    match cell {
        Cell::Str(s) => json_str(s),
        Cell::Int(v) => v.to_string(),
        Cell::Float { value, .. } | Cell::Sci { value, .. } | Cell::Percent { value, .. } => {
            format_f64(*value)
        }
    }
}

impl JsonRenderer {
    fn table(out: &mut String, table: &Table, indent: &str) {
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!("{indent}  \"id\": {},\n", json_str(&table.id)));
        let columns: Vec<String> = table.columns.iter().map(|c| json_str(&c.key)).collect();
        out.push_str(&format!(
            "{indent}  \"columns\": [{}],\n",
            columns.join(", ")
        ));
        out.push_str(&format!("{indent}  \"rows\": ["));
        for (i, row) in table.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let fields: Vec<String> = table
                .columns
                .iter()
                .zip(row)
                .map(|(c, cell)| format!("{}: {}", json_str(&c.key), json_cell(cell)))
                .collect();
            out.push_str(&format!("{indent}    {{{}}}", fields.join(", ")));
        }
        if table.rows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str(&format!("\n{indent}  ]\n"));
        }
        out.push_str(&format!("{indent}}}"));
    }

    fn section(out: &mut String, section: &Section) {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": {},\n", json_str(&section.label)));
        out.push_str(&format!("      \"seed\": \"{}\",\n", section.seed));
        out.push_str("      \"tables\": [");
        for (i, table) in section.tables.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            Self::table(out, table, "        ");
        }
        if section.tables.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n      ]\n");
        }
        out.push_str("    }");
    }
}

impl Render for JsonRenderer {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(JSON_SCHEMA)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&report.title)));
        out.push_str(&format!("  \"instructions\": {},\n", report.instructions));
        out.push_str(&format!("  \"base_seed\": \"{}\",\n", report.base_seed));
        out.push_str("  \"sections\": [");
        for (i, section) in report.sections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            Self::section(&mut out, section);
        }
        if report.sections.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

/// The long-format CSV backend.
#[derive(Debug)]
pub struct CsvRenderer;

/// Header line of the CSV output.
pub const CSV_HEADER: &str = "section,seed,table,row,column,type,value";

/// Quotes `s` as a CSV field when needed (RFC 4180 style: fields
/// containing commas, quotes, or line breaks are quoted, quotes are
/// doubled).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Render for CsvRenderer {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        out.push_str(CSV_HEADER);
        out.push('\n');
        for section in &report.sections {
            for table in &section.tables {
                for (row_idx, row) in table.rows.iter().enumerate() {
                    for (column, cell) in table.columns.iter().zip(row) {
                        out.push_str(&format!(
                            "{},{},{},{},{},{},{}\n",
                            csv_field(&section.label),
                            section.seed,
                            csv_field(&table.id),
                            row_idx,
                            csv_field(&column.key),
                            cell.type_name(),
                            csv_field(&cell.render_raw())
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Column;

    fn sample_report() -> Report {
        let mut section = Section::new("fig3/A", 7);
        let mut t = Table::new("epi")
            .with_header()
            .column(Column::new("design").left(10))
            .column(Column::new("total_pj").header("total").right(8).prefix(" "));
        t.push_row(vec![Cell::str("baseline"), Cell::float(1.0, 3)]);
        t.push_row(vec![Cell::str("proposal"), Cell::float(0.86, 3)]);
        section.push(t);
        Report::single(1000, 1, section)
    }

    #[test]
    fn format_round_trips_names() {
        for f in Format::ALL {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
        }
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn text_render_includes_header_and_section_banner() {
        let text = render(&sample_report(), Format::Text);
        assert!(text.starts_with(
            "hyvec evaluation sweep: 1 jobs, 1000 instructions/benchmark, base seed 1\n\n"
        ));
        assert!(text.contains("== fig3/A (seed 0x0000000000000007) ==\n"));
        assert!(text.contains(&format!("{:<10} {:>8}\n", "", "total")));
        assert!(text.contains(&format!("{:<10} {:>8}\n", "baseline", "1.000")));
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn csv_quoting_covers_specials() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn json_carries_typed_values_under_stable_keys() {
        let json = render(&sample_report(), Format::Json);
        assert!(json.contains("\"schema\": \"hyvec-report/v1\""));
        assert!(json.contains("\"label\": \"fig3/A\""));
        assert!(json.contains("\"seed\": \"7\""));
        assert!(json.contains("{\"design\": \"baseline\", \"total_pj\": 1}"));
        assert!(json.contains("{\"design\": \"proposal\", \"total_pj\": 0.86}"));
    }

    #[test]
    fn csv_emits_one_row_per_cell() {
        let csv = render(&sample_report(), Format::Csv);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + 4, "2 rows x 2 columns");
        assert_eq!(lines[1], "fig3/A,7,epi,0,design,str,baseline");
        assert_eq!(lines[2], "fig3/A,7,epi,0,total_pj,float,1");
    }

    #[test]
    fn hidden_tables_skip_text_but_reach_structured_formats() {
        let mut report = sample_report();
        let mut detail = Table::new("detail")
            .hidden_in_text()
            .column(Column::new("k"));
        detail.push_row(vec![Cell::int(5i64)]);
        report.sections[0].push(detail);
        assert!(!render(&report, Format::Text).contains("5"));
        assert!(render(&report, Format::Json).contains("\"id\": \"detail\""));
        assert!(render(&report, Format::Csv).contains("fig3/A,7,detail,0,k,int,5"));
    }

    #[test]
    fn renders_are_pure_functions_of_the_report() {
        let r = sample_report();
        for f in Format::ALL {
            assert_eq!(render(&r, f), render(&r, f));
        }
    }
}
