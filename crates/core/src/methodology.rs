//! The design methodology of the paper's Figure 2: sizing the ULE-way
//! bitcells so the EDC-protected 8T design matches the yield of the
//! 10T baseline.
//!
//! Steps (scenario A wording; scenario B is analogous with SECDED
//! present in the baseline and DECTED in the proposal):
//!
//! 1. size 6T cells for the HP-mode failure-rate target (derived from
//!    the cache yield target via elementary probability);
//! 2. size 10T cells to match that same `Pf` at the ULE voltage, and
//!    compute the baseline cache yield `Y10T` (Eq. (2));
//! 3. starting from minimum-size 8T cells, compute `Pf8T` (Chen-style
//!    analysis), the EDC-protected word survival probability (Eq. (1))
//!    and the cache yield `Y`; while `Y < Y10T`, grow the transistors
//!    by the minimal manufacturable step and repeat.

use crate::architecture::Scenario;
use hyvec_edc::Protection;
use hyvec_sram::cell::{CellKind, SizedCell};
use hyvec_sram::failure::{FailureModel, SizingError, SIZING_STEP};
use hyvec_sram::yield_model::{cache_yield, required_pf, word_ok_probability};

/// Inputs to the sizing methodology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodologyInputs {
    /// Target manufacturing yield (paper example: 0.99).
    pub target_yield: f64,
    /// Bits over which the failure-rate anchor is computed (the
    /// paper's example computes `Pf = 1.22e-6` over 8192 bits).
    pub anchor_bits: u64,
    /// HP supply voltage (1.0 V).
    pub hp_vdd: f64,
    /// ULE supply voltage (0.35 V).
    pub ule_vdd: f64,
    /// Data words per ULE way (`DW`): 256 for the 8KB 7+1 geometry.
    pub data_words: u64,
    /// Tag words per ULE way (`TW`): 32.
    pub tag_words: u64,
    /// Data word width (32).
    pub word_bits: u32,
    /// Tag width (26).
    pub tag_bits: u32,
}

impl Default for MethodologyInputs {
    fn default() -> Self {
        MethodologyInputs {
            target_yield: 0.99,
            anchor_bits: 8192,
            hp_vdd: 1.0,
            ule_vdd: 0.35,
            data_words: 256,
            tag_words: 32,
            word_bits: 32,
            tag_bits: 26,
        }
    }
}

/// The outcome of the Fig. 2 methodology for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UleWayDesign {
    /// The scenario designed for.
    pub scenario: Scenario,
    /// The hard-failure-rate anchor (`Pf`, the paper's 1.22e-6).
    pub pf_target: f64,
    /// 6T sizing meeting the anchor at HP voltage.
    pub sizing_6t: f64,
    /// 10T sizing matching the anchor at ULE voltage.
    pub sizing_10t: f64,
    /// Achieved 10T bit-failure rate at ULE voltage.
    pub pf_10t: f64,
    /// Baseline ULE-way yield (`Y10T` / `Y10T+SECDED`).
    pub yield_baseline: f64,
    /// Final 8T sizing from the iterative loop.
    pub sizing_8t: f64,
    /// Achieved 8T bit-failure rate at ULE voltage.
    pub pf_8t: f64,
    /// Proposal ULE-way yield with EDC (must be >= baseline).
    pub yield_proposal: f64,
    /// Iterations of the sizing loop (step 5 of Fig. 2).
    pub iterations: u32,
}

/// Protection carried by the baseline / proposal ULE way per scenario.
fn scenario_codes(scenario: Scenario) -> (Protection, Protection) {
    match scenario {
        Scenario::A => (Protection::None, Protection::Secded),
        Scenario::B => (Protection::Secded, Protection::Dected),
    }
}

/// Yield of a ULE way (Eq. (2)) whose words have `pf` faulty-bit rate
/// and tolerate `tol` hard faults under protection `prot`.
fn way_yield(inputs: &MethodologyInputs, pf: f64, prot: Protection, tol: u32) -> f64 {
    let k = prot.check_bits() as u32;
    let p_data = word_ok_probability(pf, inputs.word_bits + k, tol);
    let p_tag = word_ok_probability(pf, inputs.tag_bits + k, tol);
    cache_yield(p_data, inputs.data_words, p_tag, inputs.tag_words)
}

/// Runs the full Fig. 2 methodology for `scenario`.
///
/// # Errors
///
/// Returns [`SizingError`] when a cell family cannot reach the target
/// at the requested voltage (e.g. 6T at 350mV).
pub fn design_ule_way(
    scenario: Scenario,
    model: &FailureModel,
    inputs: &MethodologyInputs,
) -> Result<UleWayDesign, SizingError> {
    let (baseline_prot, proposal_prot) = scenario_codes(scenario);

    // Anchor: the Pf giving the target yield over the anchor bits
    // ("elementary probability calculations"). Step 1 of Fig. 2 sizes
    // the 10T cells "to match the same hard bit failure rate (Pf) as
    // 6T bitcells at HP mode" in both scenarios.
    let pf_target = required_pf(inputs.target_yield, inputs.anchor_bits);

    // Step 0: 6T sized for the anchor at HP voltage.
    let sizing_6t = model.sizing_for_pf(CellKind::Sram6T, inputs.hp_vdd, pf_target)?;

    // Step 1: 10T sized to match the same Pf at ULE voltage.
    let sizing_10t = model.sizing_for_pf(CellKind::Sram10T, inputs.ule_vdd, pf_target)?;
    let pf_10t = model.pf(
        &SizedCell::new(CellKind::Sram10T, sizing_10t),
        inputs.ule_vdd,
    );

    // Step 2: baseline yields, "calculated analogously" (paper,
    // Sec. III-C), one per reliability capability of the baseline:
    //
    // * *functional* yield — the word can be read correctly in the
    //   absence of soft errors. An unprotected word tolerates 0 hard
    //   faults; a SECDED word tolerates 1 (the code corrects it); a
    //   DECTED word tolerates 2.
    // * *soft-error-covered* yield (scenario B only) — the word can
    //   additionally absorb one runtime soft error: the code must
    //   keep one correction in reserve, so the tolerable hard-fault
    //   count drops by one. This is exactly why the paper's proposal
    //   needs DECTED: with one hard fault present, DECTED still "can
    //   correct both a soft error and a hard faulty bit in the same
    //   word".
    let func_tol = |p: Protection| p.max_correctable() as u32;
    let soft_tol = |p: Protection| p.max_correctable().saturating_sub(1) as u32;
    let yield_baseline = way_yield(inputs, pf_10t, baseline_prot, func_tol(baseline_prot));
    let yield_baseline_soft = match baseline_prot {
        Protection::None => None,
        p => Some(way_yield(inputs, pf_10t, p, soft_tol(p))),
    };

    // Steps 1–6 of Fig. 2: iterate 8T sizing until the EDC-protected
    // design matches the baseline on every criterion.
    let mut sizing_8t = 1.0f64;
    let mut iterations = 0u32;
    let (pf_8t, yield_proposal) = loop {
        let pf = model.pf(&SizedCell::new(CellKind::Sram8T, sizing_8t), inputs.ule_vdd);
        let y_func = way_yield(inputs, pf, proposal_prot, func_tol(proposal_prot));
        let y_soft = way_yield(inputs, pf, proposal_prot, soft_tol(proposal_prot));
        iterations += 1;
        let soft_ok = match yield_baseline_soft {
            None => true,
            Some(base) => y_soft >= base,
        };
        if y_func >= yield_baseline && soft_ok {
            break (pf, y_func);
        }
        sizing_8t += SIZING_STEP;
        // hyvec-lint: allow(no-panic, "divergence guard on the paper's Fig. 2 fixed-point loop; hitting it means the failure model is broken, and silently looping forever would be worse")
        assert!(
            iterations < 10_000,
            "sizing loop failed to converge (scenario {scenario:?})"
        );
    };

    Ok(UleWayDesign {
        scenario,
        pf_target,
        sizing_6t,
        sizing_10t,
        pf_10t,
        yield_baseline,
        sizing_8t,
        pf_8t,
        yield_proposal,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(scenario: Scenario) -> UleWayDesign {
        design_ule_way(
            scenario,
            &FailureModel::default(),
            &MethodologyInputs::default(),
        )
        .expect("default methodology must converge")
    }

    #[test]
    fn anchor_matches_paper_example() {
        let d = design(Scenario::A);
        assert!(
            (d.pf_target - 1.2268e-6).abs() < 1e-9,
            "Pf anchor {} != 1.22e-6",
            d.pf_target
        );
    }

    #[test]
    fn six_t_stays_near_minimum_at_hp() {
        // The failure model is calibrated so minimum-size 6T lands at
        // the anchor at 1V.
        let d = design(Scenario::A);
        assert!(d.sizing_6t <= 1.1, "6T sizing {}", d.sizing_6t);
    }

    #[test]
    fn ten_t_needs_heavy_upsizing_at_nst() {
        let d = design(Scenario::A);
        assert!(
            d.sizing_10t > 2.0 && d.sizing_10t < 4.0,
            "10T sizing {} out of expected range",
            d.sizing_10t
        );
        assert!(d.pf_10t <= d.pf_target * 1.001);
    }

    #[test]
    fn eight_t_plus_edc_is_smaller_than_10t() {
        // The core claim: EDC lets the 8T cells stay much smaller
        // than the 10T cells while matching yield.
        for s in [Scenario::A, Scenario::B] {
            let d = design(s);
            assert!(
                d.sizing_8t < d.sizing_10t,
                "{s:?}: 8T {} must be below 10T {}",
                d.sizing_8t,
                d.sizing_10t
            );
            // And the relaxed (word-level) target lets pf_8t be orders
            // of magnitude above pf_10t.
            assert!(d.pf_8t > 10.0 * d.pf_10t, "{s:?}");
        }
    }

    #[test]
    fn proposal_yield_matches_or_beats_baseline() {
        for s in [Scenario::A, Scenario::B] {
            let d = design(s);
            assert!(
                d.yield_proposal >= d.yield_baseline,
                "{s:?}: yields {} vs {}",
                d.yield_proposal,
                d.yield_baseline
            );
            assert!(d.yield_baseline > 0.98, "{s:?}: baseline yield sane");
        }
    }

    #[test]
    fn loop_terminates_in_few_iterations() {
        for s in [Scenario::A, Scenario::B] {
            let d = design(s);
            assert!(
                d.iterations >= 2 && d.iterations < 200,
                "{s:?}: {} iterations",
                d.iterations
            );
        }
    }

    #[test]
    fn minimality_one_step_down_fails() {
        // The returned 8T sizing is the first that meets the yield:
        // one step below must miss it.
        let model = FailureModel::default();
        let inputs = MethodologyInputs::default();
        for s in [Scenario::A, Scenario::B] {
            let d = design(s);
            if d.sizing_8t > 1.0 {
                let pf_under = model.pf(
                    &SizedCell::new(CellKind::Sram8T, d.sizing_8t - SIZING_STEP),
                    inputs.ule_vdd,
                );
                let (_, prot) = super::scenario_codes(s);
                let y_under = super::way_yield(&inputs, pf_under, prot, 1);
                assert!(y_under < d.yield_baseline, "{s:?} not minimal");
            }
        }
    }

    #[test]
    fn scenario_b_needs_slightly_bigger_8t() {
        // DECTED words are longer (45/39 bits), so scenario B's 8T
        // sizing is >= scenario A's.
        let a = design(Scenario::A);
        let b = design(Scenario::B);
        assert!(b.sizing_8t >= a.sizing_8t);
        // 10T sizing is the same anchor in both scenarios.
        assert_eq!(a.sizing_10t, b.sizing_10t);
    }

    #[test]
    fn six_t_cannot_be_sized_for_nst() {
        // The premise of way gating: no 6T sizing works at 350mV.
        let err = design_ule_way(
            Scenario::A,
            &FailureModel::default(),
            &MethodologyInputs {
                // Try to run the methodology with ULE voltage below
                // the 6T limit but also below 10T/8T limits? No: 6T is
                // sized at hp_vdd. Instead check the model directly.
                ..MethodologyInputs::default()
            },
        );
        assert!(err.is_ok());
        let direct = FailureModel::default().sizing_for_pf(CellKind::Sram6T, 0.35, 1e-6);
        assert!(direct.is_err());
    }

    #[test]
    fn tighter_yield_targets_need_bigger_cells() {
        let model = FailureModel::default();
        let loose = design_ule_way(
            Scenario::A,
            &model,
            &MethodologyInputs {
                target_yield: 0.95,
                ..MethodologyInputs::default()
            },
        )
        .unwrap();
        let tight = design_ule_way(
            Scenario::A,
            &model,
            &MethodologyInputs {
                target_yield: 0.999,
                ..MethodologyInputs::default()
            },
        )
        .unwrap();
        assert!(tight.sizing_10t > loose.sizing_10t);
        assert!(tight.sizing_8t >= loose.sizing_8t);
    }
}
