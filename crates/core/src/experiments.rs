//! Regeneration of every figure and table in the paper's evaluation
//! (Sec. IV), plus the ablations called out in `DESIGN.md`.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig3_hp_epi`] | Fig. 3 — normalized average EPI at HP mode |
//! | [`fig4_ule_epi`] | Fig. 4 — normalized EPI breakdowns at ULE mode |
//! | [`methodology_table`] | Sec. III-C — sizing/yield methodology |
//! | [`ule_performance`] | Sec. IV-B.2 — execution-time overhead |
//! | [`area_comparison`] | Sec. I/V — area claims |
//! | [`reliability`] | "same reliability levels" claim |
//! | [`ablation_ways`] | 7+1 vs 6+2 (Sec. IV-A) |
//! | [`ablation_memory_latency`] | memory-latency insensitivity (Sec. IV-A) |
//! | [`ablation_granularity`] | word-granularity protection choice |
//! | [`ablation_l2`] | unified-L2 sweep over the open memory hierarchy |
//! | [`ablation_cores`] | multi-core scaling behind a fixed shared L2 |
//! | [`ablation_cores_mesi`] | private MESI-coherent L2s per core |

use crate::architecture::{Architecture, DesignPoint, Scenario};
use crate::methodology::{design_ule_way, MethodologyInputs, UleWayDesign};
use hyvec_cachesim::config::Mode;
use hyvec_cachesim::engine::System;
use hyvec_cachesim::faults::sample_faults;
use hyvec_cachesim::power::{EnergyBreakdown, PowerModel};
use hyvec_edc::Protection;
use hyvec_mediabench::Benchmark;
use hyvec_sram::cell::{CellKind, SizedCell};
use hyvec_sram::failure::FailureModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Shared run parameters for the simulated experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Instructions simulated per benchmark.
    pub instructions: u64,
    /// Trace seed (same seed for baseline and proposal, so the input
    /// is identical across design points).
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            instructions: 100_000,
            seed: 1,
        }
    }
}

impl ExperimentParams {
    /// The same parameters with a different seed (used by the sweep to
    /// hand each [`Experiment`] its derived private seed).
    pub fn with_seed(self, seed: u64) -> ExperimentParams {
        ExperimentParams { seed, ..self }
    }

    /// The canonical field encoding hashed by
    /// [`ExperimentParams::fingerprint`]: `name=value` pairs joined
    /// with `;`, fields in fixed lexical order. Keying on field
    /// *names* (not positions) keeps the fingerprint stable across
    /// struct-field reorderings, and any future field must be
    /// appended here under its own name (changing the encoding of
    /// existing fields would silently invalidate every
    /// content-addressed cache entry keyed on it).
    pub fn canonical_encoding(&self) -> String {
        format!("instructions={};seed={}", self.instructions, self.seed)
    }

    /// A stable 64-bit fingerprint of the parameters: FNV-1a over
    /// [`ExperimentParams::canonical_encoding`]. This is the
    /// parameter half of the `hyvec serve` content-addressed cache
    /// key (combined there with the experiment id and a config
    /// revision); it must never depend on process, run, or
    /// field-declaration order.
    pub fn fingerprint(&self) -> u64 {
        crate::seed::fnv1a(&self.canonical_encoding())
    }
}

/// Runs `benchmarks` on `arch` at `mode`, returning the summed energy
/// breakdown, instructions and cycles.
fn run_suite(
    arch: &Architecture,
    benchmarks: &[Benchmark],
    mode: Mode,
    params: ExperimentParams,
) -> (EnergyBreakdown, u64, u64, Vec<(Benchmark, f64, u64)>) {
    let mut system = System::new(arch.config.clone());
    let mut total = EnergyBreakdown::default();
    let mut instructions = 0;
    let mut cycles = 0;
    let mut per_bench = Vec::new();
    for &b in benchmarks {
        let report = system.run(b.trace(params.instructions, params.seed), mode);
        total.l1_dynamic_pj += report.energy.l1_dynamic_pj;
        total.l1_leakage_pj += report.energy.l1_leakage_pj;
        total.edc_pj += report.energy.edc_pj;
        total.other_pj += report.energy.other_pj;
        instructions += report.stats.instructions;
        cycles += report.stats.cycles;
        per_bench.push((b, report.epi_pj(), report.stats.cycles));
    }
    (total, instructions, cycles, per_bench)
}

// ---------------------------------------------------------------------
// E1: Figure 3 — HP mode EPI
// ---------------------------------------------------------------------

/// One scenario's Figure 3 data: average EPI at HP mode, normalized to
/// the baseline total.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// The scenario.
    pub scenario: Scenario,
    /// Baseline breakdown, normalized so its total is 1.0.
    pub baseline: EnergyBreakdown,
    /// Proposal breakdown, normalized to the baseline total.
    pub proposal: EnergyBreakdown,
    /// Average EPI saving (paper: ~14% for A, ~12% for B).
    pub saving: f64,
    /// Per-benchmark normalized proposal EPI (paper: "all benchmarks
    /// show minor differences to the average").
    pub per_benchmark: Vec<(Benchmark, f64)>,
}

/// Regenerates Figure 3 for `scenario` (BigBench at HP mode).
pub fn fig3_hp_epi(scenario: Scenario, params: ExperimentParams) -> Fig3Result {
    let baseline = Architecture::build_pinned(scenario, DesignPoint::Baseline);
    let proposal = Architecture::build_pinned(scenario, DesignPoint::Proposal);
    let (be, bi, _, bb) = run_suite(&baseline, &Benchmark::BIG, Mode::Hp, params);
    let (pe, pi, _, pb) = run_suite(&proposal, &Benchmark::BIG, Mode::Hp, params);
    let base_epi = be.epi_pj(bi);
    let prop_epi = pe.epi_pj(pi);
    let per_benchmark = bb
        .iter()
        .zip(&pb)
        .map(|((b, base, _), (_, prop, _))| (*b, prop / base))
        .collect();
    Fig3Result {
        scenario,
        baseline: be.scaled(1.0 / (base_epi * bi as f64)),
        proposal: pe.scaled(1.0 / (base_epi * pi as f64)),
        saving: 1.0 - prop_epi / base_epi,
        per_benchmark,
    }
}

// ---------------------------------------------------------------------
// E2: Figure 4 — ULE mode EPI breakdowns
// ---------------------------------------------------------------------

/// One benchmark row of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Baseline breakdown normalized to total 1.0.
    pub baseline: EnergyBreakdown,
    /// Proposal breakdown normalized to the baseline total.
    pub proposal: EnergyBreakdown,
    /// EPI saving for this benchmark.
    pub saving: f64,
}

/// One scenario's Figure 4 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// The scenario.
    pub scenario: Scenario,
    /// Per-benchmark rows (SmallBench).
    pub rows: Vec<Fig4Row>,
    /// Average saving (paper: ~42% for A, ~39% for B).
    pub avg_saving: f64,
}

/// Regenerates Figure 4 for `scenario` (SmallBench at ULE mode).
pub fn fig4_ule_epi(scenario: Scenario, params: ExperimentParams) -> Fig4Result {
    let baseline = Architecture::build_pinned(scenario, DesignPoint::Baseline);
    let proposal = Architecture::build_pinned(scenario, DesignPoint::Proposal);
    let mut base_sys = System::new(baseline.config.clone());
    let mut prop_sys = System::new(proposal.config.clone());
    let mut rows = Vec::new();
    let mut savings = 0.0;
    for b in Benchmark::SMALL {
        let br = base_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
        let pr = prop_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
        let base_total = br.energy.total_pj();
        let saving = 1.0 - pr.energy.total_pj() / base_total;
        savings += saving;
        rows.push(Fig4Row {
            benchmark: b,
            baseline: br.energy.scaled(1.0 / base_total),
            proposal: pr.energy.scaled(1.0 / base_total),
            saving,
        });
    }
    Fig4Result {
        scenario,
        avg_saving: savings / rows.len() as f64,
        rows,
    }
}

// ---------------------------------------------------------------------
// E3: methodology table
// ---------------------------------------------------------------------

/// The sizing/yield table of Sec. III-C for both scenarios.
pub fn methodology_table() -> Vec<UleWayDesign> {
    Scenario::ALL
        .iter()
        .map(|&s| {
            design_ule_way(s, &FailureModel::default(), &MethodologyInputs::default())
                // hyvec-lint: allow(no-panic, "default inputs converge for both scenarios; pinned by tier-1 methodology tests")
                .expect("default methodology converges")
        })
        .collect()
}

// ---------------------------------------------------------------------
// E4: ULE execution-time overhead
// ---------------------------------------------------------------------

/// Execution-time overhead of the proposal at ULE mode for one
/// benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Proposal cycles.
    pub proposal_cycles: u64,
    /// Relative execution-time increase (paper: up to ~3%).
    pub overhead: f64,
}

/// Measures the ULE-mode execution-time overhead of the proposal
/// (SmallBench).
pub fn ule_performance(scenario: Scenario, params: ExperimentParams) -> Vec<PerfRow> {
    let baseline = Architecture::build_pinned(scenario, DesignPoint::Baseline);
    let proposal = Architecture::build_pinned(scenario, DesignPoint::Proposal);
    let mut base_sys = System::new(baseline.config.clone());
    let mut prop_sys = System::new(proposal.config.clone());
    Benchmark::SMALL
        .iter()
        .map(|&b| {
            let br = base_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
            let pr = prop_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
            PerfRow {
                benchmark: b,
                baseline_cycles: br.stats.cycles,
                proposal_cycles: pr.stats.cycles,
                overhead: pr.stats.cycles as f64 / br.stats.cycles as f64 - 1.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E5: area comparison
// ---------------------------------------------------------------------

/// Area comparison between baseline and proposal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Baseline L1 area (IL1 + DL1), µm².
    pub baseline_um2: f64,
    /// Proposal L1 area, µm².
    pub proposal_um2: f64,
    /// Relative area saving.
    pub saving: f64,
    /// Area of the ULE way alone, baseline vs proposal, µm² (where
    /// the replacement actually happens).
    pub ule_way_baseline_um2: f64,
    /// Proposal ULE way area (including check-bit columns and EDC
    /// logic), µm².
    pub ule_way_proposal_um2: f64,
}

/// Computes the L1 area comparison for `scenario`.
pub fn area_comparison(scenario: Scenario) -> AreaResult {
    let baseline = Architecture::build_pinned(scenario, DesignPoint::Baseline);
    let proposal = Architecture::build_pinned(scenario, DesignPoint::Proposal);
    let b_pm = PowerModel::new(&baseline.config);
    let p_pm = PowerModel::new(&proposal.config);
    let b_area = b_pm.il1.area_um2() + b_pm.dl1.area_um2();
    let p_area = p_pm.il1.area_um2() + p_pm.dl1.area_um2();

    // ULE-way-only areas, from the sized cells and word geometry
    // (256 data words of 32 bits + 32 tags of 26 bits, plus the
    // stored check bits).
    let dsg = &baseline.design;
    let bits_with_checks = |check: u64| 256 * (32 + check) + 32 * (26 + check);
    let base_check = match scenario {
        Scenario::A => 0u64,
        Scenario::B => 7,
    };
    let prop_check = match scenario {
        Scenario::A => 7u64,
        Scenario::B => 13,
    };
    let cell10 = SizedCell::new(CellKind::Sram10T, dsg.sizing_10t);
    let cell8 = SizedCell::new(CellKind::Sram8T, dsg.sizing_8t);
    let ule_base = bits_with_checks(base_check) as f64 * cell10.area_um2();
    let ule_prop = bits_with_checks(prop_check) as f64 * cell8.area_um2();

    AreaResult {
        scenario,
        baseline_um2: b_area,
        proposal_um2: p_area,
        saving: 1.0 - p_area / b_area,
        ule_way_baseline_um2: ule_base,
        ule_way_proposal_um2: ule_prop,
    }
}

// ---------------------------------------------------------------------
// E6: reliability equivalence
// ---------------------------------------------------------------------

/// Reliability comparison: analytic yields, Monte-Carlo yields over
/// sampled fault maps, and functional fault-injection runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Analytic baseline yield (Eq. (2)).
    pub analytic_baseline: f64,
    /// Analytic proposal yield.
    pub analytic_proposal: f64,
    /// Monte-Carlo proposal yield over sampled dies (fraction of dies
    /// where every ULE-way word stays within the EDC budget).
    pub mc_proposal: f64,
    /// Dies sampled.
    pub dies: u32,
    /// Silent corruptions observed running SmallBench on a *faulty*
    /// proposal die (must be 0 — EDC corrects them).
    pub proposal_silent: u64,
    /// EDC corrections observed in that run (should be > 0 when
    /// faults landed in live words).
    pub proposal_corrected: u64,
    /// Silent corruptions observed on a strawman die with the same
    /// faulty 8T cells but *no* EDC (must be > 0: this is what the
    /// paper's methodology prevents).
    pub strawman_silent: u64,
}

/// Runs the reliability experiment for `scenario`.
pub fn reliability(scenario: Scenario, dies: u32, params: ExperimentParams) -> ReliabilityResult {
    let design = design_ule_way(
        scenario,
        &FailureModel::default(),
        &MethodologyInputs::default(),
    )
    // hyvec-lint: allow(no-panic, "default inputs converge for both scenarios; pinned by tier-1 methodology tests")
    .expect("methodology");
    let inputs = MethodologyInputs::default();

    // Analytic yields (as in the methodology).
    let analytic_baseline = design.yield_baseline;
    let analytic_proposal = design.yield_proposal;

    // Monte-Carlo: sample fault maps of the proposal ULE way and
    // check the per-word fault budget.
    let prot = match scenario {
        Scenario::A => Protection::Secded,
        Scenario::B => Protection::Dected,
    };
    let k = prot.check_bits() as u32;
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xFA17_5EED);
    let mut good = 0u32;
    for _ in 0..dies {
        let mut die_ok = true;
        // Data words then tag words, Bernoulli per bit.
        for _ in 0..inputs.data_words {
            if sample_word_faults(&mut rng, inputs.word_bits + k, design.pf_8t) > 1 {
                die_ok = false;
                break;
            }
        }
        if die_ok {
            for _ in 0..inputs.tag_words {
                if sample_word_faults(&mut rng, inputs.tag_bits + k, design.pf_8t) > 1 {
                    die_ok = false;
                    break;
                }
            }
        }
        if die_ok {
            good += 1;
        }
    }

    // Functional: run a faulty proposal die and a no-EDC strawman.
    // The design failure rate may yield only a couple of faulty bits
    // per die; use a demonstration rate high enough that several
    // faults land in live words while staying within the one-per-word
    // budget with high probability.
    let pf_demo = design.pf_8t.max(1.5e-3);
    let proposal = Architecture::build_pinned(scenario, DesignPoint::Proposal);
    let mut pf = vec![0.0f64; proposal.config.dl1.ways.len()];
    if let Some(ule_idx) = proposal.config.dl1.ways.iter().position(|w| w.ule_enabled) {
        pf[ule_idx] = pf_demo;
    }
    let mut prop_sys = System::new(proposal.config.clone());
    let mut rng2 = SmallRng::seed_from_u64(params.seed ^ 0xD1E5_A171);
    sample_faults(prop_sys.dl1_mut(), &pf, &mut rng2);
    sample_faults(prop_sys.il1_mut(), &pf, &mut rng2);
    let mut proposal_silent = 0;
    let mut proposal_corrected = 0;
    for b in Benchmark::SMALL {
        let r = prop_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
        proposal_silent += r.stats.silent_corruptions();
        proposal_corrected += r.stats.corrected();
    }

    // Strawman: identical 8T sizing and fault rate, but no EDC.
    let mut strawman_cfg = proposal.config.clone();
    for way in strawman_cfg
        .il1
        .ways
        .iter_mut()
        .chain(strawman_cfg.dl1.ways.iter_mut())
    {
        way.protection_hp = Protection::None;
        way.protection_ule = Protection::None;
    }
    let mut straw_sys = System::new(strawman_cfg);
    let mut rng3 = SmallRng::seed_from_u64(params.seed ^ 0xD1E5_A171);
    sample_faults(straw_sys.dl1_mut(), &pf, &mut rng3);
    sample_faults(straw_sys.il1_mut(), &pf, &mut rng3);
    let mut strawman_silent = 0;
    for b in Benchmark::SMALL {
        let r = straw_sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
        strawman_silent += r.stats.silent_corruptions();
    }

    ReliabilityResult {
        scenario,
        analytic_baseline,
        analytic_proposal,
        mc_proposal: f64::from(good) / f64::from(dies),
        dies,
        proposal_silent,
        proposal_corrected,
        strawman_silent,
    }
}

// ---------------------------------------------------------------------
// A4: ULE-voltage sweep (DVS study)
// ---------------------------------------------------------------------

/// Proposal-vs-baseline comparison at one ULE voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRow {
    /// ULE supply voltage, volts.
    pub ule_vdd: f64,
    /// 10T sizing at this voltage.
    pub sizing_10t: f64,
    /// 8T sizing at this voltage.
    pub sizing_8t: f64,
    /// ULE-mode EPI saving of the proposal.
    pub ule_saving: f64,
}

/// Sweeps the ULE supply voltage, re-running the sizing methodology
/// and the ULE evaluation at each point. Frequency is scaled with the
/// cell-delay model so each point stays timing-feasible.
///
/// The paper fixes 350mV ("our architecture is not limited to any
/// particular Vcc level"); this sweep substantiates that sentence.
pub fn ablation_voltage(scenario: Scenario, params: ExperimentParams) -> Vec<VoltageRow> {
    use hyvec_cachemodel::OperatingPoint;
    [0.32f64, 0.35, 0.40, 0.45]
        .iter()
        .filter_map(|&vdd| {
            let inputs = MethodologyInputs {
                ule_vdd: vdd,
                ..MethodologyInputs::default()
            };
            let model = FailureModel::default();
            let build =
                |point| Architecture::build_with(scenario, point, &model, &inputs, 7, 1, 20).ok();
            let baseline = build(DesignPoint::Baseline)?;
            let proposal = build(DesignPoint::Proposal)?;
            // Keep 5MHz at 350mV and scale roughly with the voltage
            // headroom (a simple DVS curve).
            let freq = 5.0e6 * (vdd / 0.35).powi(3);
            let op = OperatingPoint::new(vdd, freq);
            let mut base_sys = System::new(baseline.config.clone());
            let mut prop_sys = System::new(proposal.config.clone());
            let mut base_e = 0.0;
            let mut prop_e = 0.0;
            for b in Benchmark::SMALL {
                base_e += base_sys
                    .run_at(b.trace(params.instructions, params.seed), Mode::Ule, op)
                    .energy
                    .total_pj();
                prop_e += prop_sys
                    .run_at(b.trace(params.instructions, params.seed), Mode::Ule, op)
                    .energy
                    .total_pj();
            }
            Some(VoltageRow {
                ule_vdd: vdd,
                sizing_10t: baseline.design.sizing_10t,
                sizing_8t: proposal.design.sizing_8t,
                ule_saving: 1.0 - prop_e / base_e,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// E7: soft errors on top of hard faults (why scenario B needs DECTED)
// ---------------------------------------------------------------------

/// Outcome of the combined hard-fault + soft-error experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftErrorResult {
    /// Corrections by the SECDED design (baseline-B-style protection
    /// on the same faulty 8T cells).
    pub secded_corrected: u64,
    /// Detected-but-uncorrectable events under SECDED (hard fault +
    /// soft error in one word: reliability lost).
    pub secded_detected: u64,
    /// Corrections by the DECTED proposal.
    pub dected_corrected: u64,
    /// Detected-but-uncorrectable events under DECTED (should stay 0
    /// at the design fault rate).
    pub dected_detected: u64,
    /// Silent corruptions under either design (must be 0: both codes
    /// at least detect).
    pub silent: u64,
}

/// Demonstrates the scenario-B argument functionally: with hard faults
/// at the design rate *and* accelerated soft errors, SECDED-protected
/// words containing a hard fault degrade to detection-only, while
/// DECTED keeps correcting. Both remain silent-corruption-free.
pub fn soft_error_study(params: ExperimentParams, seu_rate: f64) -> SoftErrorResult {
    let proposal = Architecture::build_pinned(Scenario::B, DesignPoint::Proposal);
    let design = proposal.design;

    let run = |prot: Protection| {
        let mut cfg = proposal.config.clone();
        for way in cfg.il1.ways.iter_mut().chain(cfg.dl1.ways.iter_mut()) {
            if way.ule_enabled {
                way.protection_ule = prot;
            }
        }
        let mut sys = System::new(cfg.clone());
        // Hard faults at a rate that guarantees several faulty bits.
        let mut pf = vec![0.0f64; cfg.dl1.ways.len()];
        if let Some(i) = cfg.dl1.ways.iter().position(|w| w.ule_enabled) {
            pf[i] = design.pf_8t.max(2e-3);
        }
        let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x050F_7E44);
        sample_faults(sys.dl1_mut(), &pf, &mut rng);
        sample_faults(sys.il1_mut(), &pf, &mut rng);
        sys.set_soft_error_rate(seu_rate, params.seed ^ 0xABCD);
        let mut corrected = 0;
        let mut detected = 0;
        let mut silent = 0;
        for b in Benchmark::SMALL {
            let r = sys.run(b.trace(params.instructions, params.seed), Mode::Ule);
            corrected += r.stats.corrected();
            detected += r.stats.detected();
            silent += r.stats.silent_corruptions();
        }
        (corrected, detected, silent)
    };

    let (secded_corrected, secded_detected, s1) = run(Protection::Secded);
    let (dected_corrected, dected_detected, s2) = run(Protection::Dected);
    SoftErrorResult {
        secded_corrected,
        secded_detected,
        dected_corrected,
        dected_detected,
        silent: s1 + s2,
    }
}

fn sample_word_faults<R: rand::Rng>(rng: &mut R, bits: u32, pf: f64) -> u32 {
    let mut n = 0;
    for _ in 0..bits {
        if rng.gen::<f64>() < pf {
            n += 1;
        }
    }
    n
}

// ---------------------------------------------------------------------
// A1: way-split ablation (7+1 vs 6+2)
// ---------------------------------------------------------------------

/// Savings of the proposal for one way split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaySplitRow {
    /// HP (6T) ways.
    pub hp_ways: usize,
    /// ULE ways.
    pub ule_ways: usize,
    /// HP-mode EPI saving.
    pub hp_saving: f64,
    /// ULE-mode EPI saving.
    pub ule_saving: f64,
}

/// Compares 7+1 against 6+2 (paper: "did not provide further
/// insights").
pub fn ablation_ways(scenario: Scenario, params: ExperimentParams) -> Vec<WaySplitRow> {
    [(7usize, 1usize), (6, 2)]
        .iter()
        .map(|&(hp, ule)| {
            let build = |point| {
                Architecture::build_with(
                    scenario,
                    point,
                    &FailureModel::default(),
                    &MethodologyInputs::default(),
                    hp,
                    ule,
                    20,
                )
                // hyvec-lint: allow(no-panic, "every way split in the ablation range sizes with default models; the sweep itself is the regression test")
                .expect("ablation arch")
            };
            let baseline = build(DesignPoint::Baseline);
            let proposal = build(DesignPoint::Proposal);
            let (be, bi, _, _) = run_suite(&baseline, &Benchmark::BIG, Mode::Hp, params);
            let (pe, pi, _, _) = run_suite(&proposal, &Benchmark::BIG, Mode::Hp, params);
            let hp_saving = 1.0 - pe.epi_pj(pi) / be.epi_pj(bi);
            let (be, bi, _, _) = run_suite(&baseline, &Benchmark::SMALL, Mode::Ule, params);
            let (pe, pi, _, _) = run_suite(&proposal, &Benchmark::SMALL, Mode::Ule, params);
            let ule_saving = 1.0 - pe.epi_pj(pi) / be.epi_pj(bi);
            WaySplitRow {
                hp_ways: hp,
                ule_ways: ule,
                hp_saving,
                ule_saving,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A2: memory-latency ablation
// ---------------------------------------------------------------------

/// Savings of the proposal for one memory latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatRow {
    /// Memory latency in cycles.
    pub latency: u32,
    /// HP-mode EPI saving.
    pub hp_saving: f64,
}

/// Sweeps the memory latency (paper: "other memory latencies do not
/// change the trends").
pub fn ablation_memory_latency(scenario: Scenario, params: ExperimentParams) -> Vec<MemLatRow> {
    [10u32, 20, 40, 80]
        .iter()
        .map(|&lat| {
            let build = |point| {
                Architecture::build_with(
                    scenario,
                    point,
                    &FailureModel::default(),
                    &MethodologyInputs::default(),
                    7,
                    1,
                    lat,
                )
                // hyvec-lint: allow(no-panic, "every latency point in the ablation range sizes with default models; the sweep itself is the regression test")
                .expect("ablation arch")
            };
            let (be, bi, _, _) = run_suite(
                &build(DesignPoint::Baseline),
                &Benchmark::BIG,
                Mode::Hp,
                params,
            );
            let (pe, pi, _, _) = run_suite(
                &build(DesignPoint::Proposal),
                &Benchmark::BIG,
                Mode::Hp,
                params,
            );
            MemLatRow {
                latency: lat,
                hp_saving: 1.0 - pe.epi_pj(pi) / be.epi_pj(bi),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A5: L2 ablation (the memory hierarchy opened by `MemoryLevel`)
// ---------------------------------------------------------------------

/// One L2 design point of the L2 ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2Row {
    /// L2 capacity in KB (0 = no L2: the paper's flat platform).
    pub size_kb: u64,
    /// L2 lookup latency, cycles (0 when no L2 is configured).
    pub hit_latency: u32,
    /// Cycles per instruction over BigBench.
    pub cpi: f64,
    /// Energy per instruction, pJ (L2 access energy included).
    pub epi_pj: f64,
    /// L2 hit ratio (0 when no L2 is configured).
    pub l2_hit_ratio: f64,
    /// Cycles stalled on IL1 misses.
    pub il1_stall_cycles: u64,
    /// Cycles stalled on DL1 misses.
    pub dl1_stall_cycles: u64,
    /// Requests that reached main memory.
    pub memory_accesses: u64,
}

/// Memory latency of the L2 ablation, cycles. The paper's ~20-cycle
/// flat memory leaves an L2 little to hide; a slow (embedded-DRAM
/// class) backing store is where a second level earns its area.
pub const ABLATION_L2_MEMORY_LATENCY: u32 = 80;

/// Sweeps a unified L2 (none, then growing capacities at their default
/// latencies) under the proposal design point, running BigBench at HP
/// mode behind a slow memory ([`ABLATION_L2_MEMORY_LATENCY`]). Every
/// row but the first routes L1 misses through the composable
/// [`hyvec_cachesim::hierarchy::MemoryLevel`] chain
/// (`L1s -> L2Cache -> MainMemory`) assembled by `System::builder()`.
pub fn ablation_l2(scenario: Scenario, params: ExperimentParams) -> Vec<L2Row> {
    use hyvec_cachesim::config::{L2Config, MemoryConfig};

    let arch = Architecture::build_with(
        scenario,
        DesignPoint::Proposal,
        &FailureModel::default(),
        &MethodologyInputs::default(),
        7,
        1,
        ABLATION_L2_MEMORY_LATENCY,
    )
    // hyvec-lint: allow(no-panic, "the pinned 7+1 proposal sizing converges with default models; exercised by every run-all")
    .expect("proposal architecture");

    [None, Some(16u64), Some(64), Some(256)]
        .iter()
        .map(|&size_kb| {
            let mut builder = System::builder()
                .config(arch.config.clone())
                .memory(MemoryConfig::with_latency(ABLATION_L2_MEMORY_LATENCY));
            let mut hit_latency = 0;
            if let Some(kb) = size_kb {
                let l2 = L2Config::unified(kb);
                hit_latency = l2.hit_latency;
                builder = builder.l2(l2);
            }
            // hyvec-lint: allow(no-panic, "builder inputs are the validated paper geometry plus L2Config::unified presets; exercised by every run-all")
            let mut system = builder.build().expect("valid hierarchy");

            let mut instructions = 0u64;
            let mut cycles = 0u64;
            let mut energy_pj = 0.0;
            let mut row = L2Row {
                size_kb: size_kb.unwrap_or(0),
                hit_latency,
                cpi: 0.0,
                epi_pj: 0.0,
                l2_hit_ratio: 0.0,
                il1_stall_cycles: 0,
                dl1_stall_cycles: 0,
                memory_accesses: 0,
            };
            let mut l2_hits = 0u64;
            let mut l2_accesses = 0u64;
            for b in Benchmark::BIG {
                let r = system.run(b.trace(params.instructions, params.seed), Mode::Hp);
                instructions += r.stats.instructions;
                cycles += r.stats.cycles;
                energy_pj += r.energy.total_pj();
                row.il1_stall_cycles += r.stats.il1_stall_cycles;
                row.dl1_stall_cycles += r.stats.dl1_stall_cycles;
                row.memory_accesses += r.stats.memory_accesses;
                if let Some(l2) = r.stats.l2 {
                    l2_hits += l2.hits;
                    l2_accesses += l2.accesses;
                }
            }
            row.cpi = cycles as f64 / instructions as f64;
            row.epi_pj = energy_pj / instructions as f64;
            if l2_accesses > 0 {
                row.l2_hit_ratio = l2_hits as f64 / l2_accesses as f64;
            }
            row
        })
        .collect()
}

// ---------------------------------------------------------------------
// A6: core-count ablation (multi-core over the shared L2)
// ---------------------------------------------------------------------

/// One core-count design point of the multi-core ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoresRow {
    /// Number of cores sharing the L2.
    pub cores: usize,
    /// Energy per instruction over the whole machine, pJ.
    pub epi_pj: f64,
    /// Hit ratio of the shared L2.
    pub l2_hit_ratio: f64,
    /// Requests that reached main memory (demand fills + writebacks
    /// from every core).
    pub memory_accesses: u64,
    /// Machine-wide memory accesses per 1000 executed instructions.
    pub memory_per_kilo_instructions: f64,
    /// Demand memory fills of core 0 per 1000 of *its* instructions —
    /// the contention-induced traffic figure. Core 0 runs the same
    /// program with the same stream at every core count, so any rise
    /// is purely the other cores evicting its shared-L2 lines.
    pub core0_memory_per_kilo: f64,
    /// Per-core `(benchmark, IPC)`, in core order.
    pub per_core_ipc: Vec<(Benchmark, f64)>,
}

/// Shared-L2 capacity of the core-count ablation, KB. Fixed across
/// core counts so contention — not capacity — is the swept variable,
/// and deliberately small (one program's working set fits, the
/// 8-program mix is ~4x over) so the sweep traverses the whole regime
/// from private-cache comfort to full thrash.
pub const ABLATION_CORES_L2_KB: u64 = 16;

/// Core counts swept by the multi-core ablation. The 16/32/64 entries
/// are where the epoch-parallel engine pays for itself; the report is
/// byte-identical at every `--sim-threads` value regardless.
pub const ABLATION_CORES_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Core counts swept by the private-L2 MESI topology scenario of the
/// multi-core ablation (a subset — coherence probing is O(cores) per
/// miss, and three points already show the trend).
pub const ABLATION_CORES_MESI_COUNTS: [usize; 3] = [2, 8, 32];

/// The multi-program mix of the core-count ablation: core `i` runs
/// program `i mod 6`. BigBench reordered so the L1-overflowing MPEG-2
/// programs come first — every core count then actually re-references
/// the shared L2, making its hit ratio a meaningful contention signal
/// from the 1-core row on.
pub const ABLATION_CORES_PROGRAMS: [Benchmark; 6] = [
    Benchmark::Mpeg2C,
    Benchmark::Mpeg2D,
    Benchmark::GsmC,
    Benchmark::GsmD,
    Benchmark::G721C,
    Benchmark::G721D,
];

/// Sweeps the core count ([`ABLATION_CORES_COUNTS`] private split-L1
/// front ends behind one fixed [`ABLATION_CORES_L2_KB`]-KB shared L2
/// and a slow memory) under the proposal design point. Core `i` runs
/// [`ABLATION_CORES_PROGRAMS`]`[i mod 6]` at HP mode in its own
/// address window ([`hyvec_mediabench::multiprogram_sources`]),
/// round-robin interleaved at instruction granularity by the
/// multi-core engine
/// ([`hyvec_cachesim::multicore::MultiCoreSystem`]).
pub fn ablation_cores(scenario: Scenario, params: ExperimentParams) -> Vec<CoresRow> {
    use hyvec_cachesim::config::{L2Config, MemoryConfig};
    use hyvec_mediabench::multiprogram_sources;

    let arch = Architecture::build_with(
        scenario,
        DesignPoint::Proposal,
        &FailureModel::default(),
        &MethodologyInputs::default(),
        7,
        1,
        ABLATION_L2_MEMORY_LATENCY,
    )
    // hyvec-lint: allow(no-panic, "the pinned 7+1 proposal sizing converges with default models; exercised by every run-all")
    .expect("proposal architecture");

    ABLATION_CORES_COUNTS
        .iter()
        .map(|&cores| {
            let mut system = System::builder()
                .config(arch.config.clone())
                .memory(MemoryConfig::with_latency(ABLATION_L2_MEMORY_LATENCY))
                .l2(L2Config::unified(ABLATION_CORES_L2_KB))
                .build_multi(cores)
                // hyvec-lint: allow(no-panic, "builder inputs are the validated paper geometry plus L2Config::unified presets; exercised by every run-all")
                .expect("valid multi-core hierarchy");
            let benchmarks: Vec<Benchmark> = (0..cores)
                .map(|i| ABLATION_CORES_PROGRAMS[i % ABLATION_CORES_PROGRAMS.len()])
                .collect();
            let sources = multiprogram_sources(&benchmarks, params.instructions, params.seed);
            let report = system.run(sources, Mode::Hp);
            let instructions = report.instructions();
            let core0 = &report.per_core[0].stats;
            CoresRow {
                cores,
                epi_pj: report.epi_pj(),
                l2_hit_ratio: report.l2_hit_ratio(),
                memory_accesses: report.memory.accesses,
                memory_per_kilo_instructions: 1000.0 * report.memory.accesses as f64
                    / instructions as f64,
                core0_memory_per_kilo: 1000.0 * core0.memory_accesses as f64
                    / core0.instructions as f64,
                per_core_ipc: benchmarks
                    .iter()
                    .zip(&report.per_core)
                    .map(|(b, r)| (*b, r.stats.instructions as f64 / r.stats.cycles as f64))
                    .collect(),
            }
        })
        .collect()
}

/// One core count of the private-L2 MESI topology scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CoresTopologyRow {
    /// Number of cores, each with a private MESI-coherent L2.
    pub cores: usize,
    /// Energy per instruction over the whole machine, pJ.
    pub epi_pj: f64,
    /// Aggregate hit ratio over all private L2s.
    pub l2_hit_ratio: f64,
    /// Machine-wide memory accesses per 1000 executed instructions.
    pub memory_per_kilo_instructions: f64,
    /// Peer lines invalidated by write upgrades, per 1000 executed
    /// instructions.
    pub invalidations_per_kilo: f64,
    /// Misses supplied cache-to-cache by a peer L2 instead of memory,
    /// per 1000 executed instructions.
    pub interventions_per_kilo: f64,
}

/// Sweeps [`ABLATION_CORES_MESI_COUNTS`] cores over the
/// [`Topology::PrivateL2`](hyvec_cachesim::config::Topology) shape:
/// each core owns a private [`ABLATION_CORES_L2_KB`]-KB MESI-coherent
/// L2 over the one shared memory. Unlike the shared-L2 sweep, the
/// cores run decorrelated streams of the *same* program over the
/// *same* address space (no per-core rebasing — the closest a
/// trace-driven model gets to a multi-threaded program), so lines
/// genuinely migrate: write upgrades invalidate peer copies and misses
/// are supplied cache-to-cache.
pub fn ablation_cores_mesi(scenario: Scenario, params: ExperimentParams) -> Vec<CoresTopologyRow> {
    use hyvec_cachesim::config::{L2Config, MemoryConfig, Mesi, Topology};
    use hyvec_mediabench::per_core_seed;

    let arch = Architecture::build_with(
        scenario,
        DesignPoint::Proposal,
        &FailureModel::default(),
        &MethodologyInputs::default(),
        7,
        1,
        ABLATION_L2_MEMORY_LATENCY,
    )
    // hyvec-lint: allow(no-panic, "the pinned 7+1 proposal sizing converges with default models; exercised by every run-all")
    .expect("proposal architecture");

    ABLATION_CORES_MESI_COUNTS
        .iter()
        .map(|&cores| {
            let mut system = System::builder()
                .config(arch.config.clone())
                .memory(MemoryConfig::with_latency(ABLATION_L2_MEMORY_LATENCY))
                .l2(L2Config::unified(ABLATION_CORES_L2_KB))
                .topology(Topology::PrivateL2 {
                    coherence: Some(Mesi::default()),
                })
                .build_multi(cores)
                // hyvec-lint: allow(no-panic, "builder inputs are the validated paper geometry plus L2Config::unified presets; exercised by every run-all")
                .expect("valid private-L2 MESI machine");
            let sources: Vec<_> = (0..cores)
                .map(|core| {
                    ABLATION_CORES_PROGRAMS[0]
                        .trace(params.instructions, per_core_seed(params.seed, core))
                })
                .collect();
            let report = system.run(sources, Mode::Hp);
            let instructions = report.instructions();
            let kilo = |count: u64| 1000.0 * count as f64 / instructions as f64;
            // hyvec-lint: allow(no-panic, "the private topology always reports an aggregate l2 level")
            let l2 = report.l2.expect("private L2s report an l2 level");
            CoresTopologyRow {
                cores,
                epi_pj: report.epi_pj(),
                l2_hit_ratio: report.l2_hit_ratio(),
                memory_per_kilo_instructions: kilo(report.memory.accesses),
                invalidations_per_kilo: kilo(l2.invalidations),
                interventions_per_kilo: kilo(l2.interventions),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A3: protection-granularity ablation
// ---------------------------------------------------------------------

/// Yield/overhead consequences of protecting at a different word
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityRow {
    /// Protected word width, bits.
    pub word_bits: u32,
    /// Check-bit storage overhead (check bits / data bits).
    pub storage_overhead: f64,
    /// 8T sizing required to match the baseline yield at this
    /// granularity.
    pub sizing_8t: f64,
    /// Relative ULE-way bit count (data + check bits, normalized to
    /// the 32-bit-word design).
    pub relative_bits: f64,
}

/// Analyzes SECDED protection at 8/16/32-bit word granularity for
/// scenario A. Finer words tolerate more total faults (higher
/// correctable density) but pay more check-bit overhead.
pub fn ablation_granularity() -> Vec<GranularityRow> {
    let model = FailureModel::default();
    let base_inputs = MethodologyInputs::default();
    let reference_bits = 256.0 * 39.0 + 32.0 * 33.0;
    [8u32, 16, 32]
        .iter()
        .map(|&wb| {
            let words = 256 * 32 / u64::from(wb);
            let inputs = MethodologyInputs {
                word_bits: wb,
                data_words: words,
                ..base_inputs
            };
            let design =
                // hyvec-lint: allow(no-panic, "every granularity point converges with the default failure model; the sweep itself is the regression test")
                design_ule_way(Scenario::A, &model, &inputs).expect("granularity methodology");
            let total_bits =
                (words * u64::from(wb + 7)) as f64 + (32.0 * f64::from(inputs.tag_bits + 7));
            GranularityRow {
                word_bits: wb,
                storage_overhead: 7.0 / f64::from(wb),
                sizing_8t: design.sizing_8t,
                relative_bits: total_bits / reference_bits,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// The Experiment trait: every artifact as a typed-report producer
// ---------------------------------------------------------------------

use crate::report::{Cell, Column, Report, Section, Table};

/// Monte-Carlo dies sampled by the reliability experiment. One
/// setting for every entry point (sweep, `hyvec reliability`, the
/// standalone binary), so the section stays byte-stable across them;
/// call [`reliability`] directly for a tighter custom estimate.
pub const RELIABILITY_DIES: u32 = 100;

/// Accelerated soft-error rate used by the sweep's soft-error job.
pub const SOFT_ERROR_RATE: f64 = 3e-8;

/// One artifact × scenario cell of the paper's evaluation matrix,
/// behind a uniform interface: a stable id and a run method that
/// returns a typed [`Report`].
///
/// Implementations wrap the free experiment functions of this module
/// ([`fig3_hp_epi`], [`reliability`], ...) and convert their bespoke
/// result structs into report tables; the sweep engine
/// ([`crate::sweep`]) only ever sees this trait, so new artifacts
/// plug in by registering an implementation
/// ([`crate::registry::Registry`]) — no closed enum to extend.
pub trait Experiment: Send + Sync {
    /// Stable `"artifact/scenario"` identifier (e.g. `"fig3/A"`).
    /// Doubles as the seed-derivation key ([`crate::seed`]): renaming
    /// an experiment is the only way to change its RNG stream.
    fn id(&self) -> &str;

    /// One-line human description of what the experiment regenerates,
    /// surfaced by the machine-readable registry index
    /// ([`crate::registry::Registry::index_json`], i.e. `hyvec list
    /// --format json` and the serve daemon's `GET /experiments`).
    /// Purely informational: never hashed, never part of the report.
    fn description(&self) -> &str {
        ""
    }

    /// Runs the experiment with `rng_seed` as its private trace/RNG
    /// seed (`params.seed` is the sweep's *base* seed and is recorded
    /// in the returned report, not consumed). Returns a report with
    /// one section labeled [`Experiment::id`].
    fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report;
}

/// Builds the single-section report every experiment returns.
fn single_section(id: &str, params: ExperimentParams, rng_seed: u64, tables: Vec<Table>) -> Report {
    let mut section = Section::new(id, rng_seed);
    section.extend(tables);
    Report::single(params.instructions, params.seed, section)
}

/// The normalized-EPI breakdown matrix of Figures 3 and 4, columns
/// driven by [`EnergyBreakdown::components`] so new energy components
/// flow into every renderer automatically.
fn breakdown_table(rows: &[(&str, &EnergyBreakdown)]) -> Table {
    let mut t = Table::new("epi")
        .with_header()
        .column(Column::new("design").left(24));
    for (key, header, _) in rows[0].1.components() {
        t.push_column(Column::new(key).header(header).right(8).prefix(" "));
    }
    t.push_column(Column::new("total_pj").header("total").right(8).prefix(" "));
    for (label, b) in rows {
        let mut cells = vec![Cell::str(*label)];
        for (key, _, value) in b.components() {
            // The EDC adder is an order of magnitude below the array
            // energies; one extra decimal keeps it legible.
            let precision = if key == "edc_pj" { 4 } else { 3 };
            cells.push(Cell::float(value, precision));
        }
        cells.push(Cell::float(b.total_pj(), 3));
        t.push_row(cells);
    }
    t
}

impl Fig3Result {
    /// The result as report tables: the breakdown matrix and saving
    /// line the text report shows, plus the per-benchmark normalized
    /// EPI as a text-hidden table so JSON/CSV carry the full figure.
    pub fn tables(&self) -> Vec<Table> {
        let epi = breakdown_table(&[("baseline", &self.baseline), ("proposal", &self.proposal)]);
        let mut saving = Table::new("saving")
            .row_suffix(" (paper: ~14% A / ~12% B)")
            .column(Column::new("saving").prefix("HP EPI saving: "));
        saving.push_row(vec![Cell::percent(self.saving)]);
        let mut per_benchmark = Table::new("per_benchmark")
            .hidden_in_text()
            .column(Column::new("benchmark"))
            .column(Column::new("normalized_epi"));
        for (b, ratio) in &self.per_benchmark {
            per_benchmark.push_row(vec![Cell::str(b.to_string()), Cell::float(*ratio, 3)]);
        }
        vec![epi, saving, per_benchmark]
    }
}

impl Fig4Result {
    /// The result as report tables (per-benchmark savings + average).
    pub fn tables(&self) -> Vec<Table> {
        let mut savings = Table::new("savings")
            .column(Column::new("benchmark").left(10))
            .column(Column::new("saving").prefix(" saving "));
        for row in &self.rows {
            savings.push_row(vec![
                Cell::str(row.benchmark.to_string()),
                Cell::percent(row.saving),
            ]);
        }
        let mut average = Table::new("average")
            .row_suffix(" (paper: ~42% A / ~39% B)")
            .column(Column::new("avg_saving").prefix("average ULE saving: "));
        average.push_row(vec![Cell::percent(self.avg_saving)]);
        // The actual content of Figure 4 — per-benchmark normalized
        // EPI breakdowns — never appeared in the text sweep report;
        // carry it for the structured formats.
        let mut breakdowns = Table::new("breakdowns")
            .hidden_in_text()
            .column(Column::new("benchmark"))
            .column(Column::new("design"));
        for (key, _, _) in EnergyBreakdown::default().components() {
            breakdowns.push_column(Column::new(key));
        }
        breakdowns.push_column(Column::new("total_pj"));
        for row in &self.rows {
            for (design, b) in [("baseline", &row.baseline), ("proposal", &row.proposal)] {
                let mut cells = vec![Cell::str(row.benchmark.to_string()), Cell::str(design)];
                for (_, _, value) in b.components() {
                    cells.push(Cell::float(value, 4));
                }
                cells.push(Cell::float(b.total_pj(), 4));
                breakdowns.push_row(cells);
            }
        }
        vec![savings, average, breakdowns]
    }
}

fn methodology_tables(d: &UleWayDesign) -> Vec<Table> {
    let mut sizing = Table::new("sizing")
        .column(Column::new("pf_target").prefix("Pf target "))
        .column(Column::new("sizing_6t").prefix("; sizings: 6T x"))
        .column(Column::new("sizing_10t").prefix(", 10T x"))
        .column(Column::new("sizing_8t").prefix(", 8T x"));
    sizing.push_row(vec![
        Cell::sci(d.pf_target, 3),
        Cell::float(d.sizing_6t, 2),
        Cell::float(d.sizing_10t, 2),
        Cell::float(d.sizing_8t, 2),
    ]);
    let mut yields = Table::new("yield")
        .row_suffix(" sizing iterations")
        .column(Column::new("yield_baseline").prefix("yield "))
        .column(Column::new("yield_proposal").prefix(" (baseline) -> "))
        .column(Column::new("iterations").prefix(" (proposal), "));
    yields.push_row(vec![
        Cell::float(d.yield_baseline, 6),
        Cell::float(d.yield_proposal, 6),
        Cell::int(d.iterations),
    ]);
    vec![sizing, yields]
}

fn performance_tables(rows: &[PerfRow]) -> Vec<Table> {
    let avg = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
    let mut cycles = Table::new("cycles")
        .row_suffix(")")
        .column(Column::new("benchmark").left(10))
        .column(Column::new("baseline_cycles").right(10).prefix(" "))
        .column(Column::new("proposal_cycles").right(10).prefix(" -> "))
        .column(Column::new("overhead").prefix(" cycles ("));
    for r in rows {
        cycles.push_row(vec![
            Cell::str(r.benchmark.to_string()),
            Cell::int(r.baseline_cycles as i64),
            Cell::int(r.proposal_cycles as i64),
            Cell::percent(r.overhead),
        ]);
    }
    let mut average = Table::new("average")
        .row_suffix(" (paper: ~3%)")
        .column(Column::new("avg_overhead").prefix("average overhead: "));
    average.push_row(vec![Cell::percent(avg)]);
    vec![cycles, average]
}

impl AreaResult {
    /// The result as report tables (L1 totals + ULE-way close-up).
    pub fn tables(&self) -> Vec<Table> {
        let mut l1 = Table::new("l1")
            .row_suffix(")")
            .column(Column::new("baseline_um2").prefix("L1 (IL1+DL1): "))
            .column(Column::new("proposal_um2").prefix(" -> "))
            .column(Column::new("saving").prefix(" um2 (saving "));
        l1.push_row(vec![
            Cell::float(self.baseline_um2, 0),
            Cell::float(self.proposal_um2, 0),
            Cell::percent(self.saving),
        ]);
        let mut ule = Table::new("ule_way")
            .row_suffix(" um2")
            .column(Column::new("baseline_um2").prefix("ULE way alone: "))
            .column(Column::new("proposal_um2").prefix(" -> "));
        ule.push_row(vec![
            Cell::float(self.ule_way_baseline_um2, 0),
            Cell::float(self.ule_way_proposal_um2, 0),
        ]);
        vec![l1, ule]
    }
}

impl ReliabilityResult {
    /// The result as report tables (yields + fault-injection counts).
    pub fn tables(&self) -> Vec<Table> {
        let mut yields = Table::new("yield")
            .column(Column::new("analytic_baseline").prefix("analytic yield: "))
            .column(Column::new("analytic_proposal").prefix(" (baseline) / "))
            .column(Column::new("dies").prefix(" (proposal); MC over "))
            .column(Column::new("mc_proposal").prefix(" dies: "));
        yields.push_row(vec![
            Cell::float(self.analytic_baseline, 6),
            Cell::float(self.analytic_proposal, 6),
            Cell::int(self.dies),
            Cell::float(self.mc_proposal, 3),
        ]);
        let mut faults = Table::new("fault_injection")
            .column(Column::new("corrected").prefix("fault injection: corrected "))
            .column(Column::new("silent").prefix(", silent "))
            .column(Column::new("strawman_silent").prefix(" (must be 0), strawman silent "));
        faults.push_row(vec![
            Cell::int(self.proposal_corrected as i64),
            Cell::int(self.proposal_silent as i64),
            Cell::int(self.strawman_silent as i64),
        ]);
        vec![yields, faults]
    }
}

impl SoftErrorResult {
    /// The result as report tables (per-code counts + silent total).
    pub fn tables(&self) -> Vec<Table> {
        let mut secded = Table::new("secded")
            .column(Column::new("corrected").prefix("SECDED: corrected "))
            .column(Column::new("detected").prefix(", uncorrectable "));
        secded.push_row(vec![
            Cell::int(self.secded_corrected as i64),
            Cell::int(self.secded_detected as i64),
        ]);
        let mut dected = Table::new("dected")
            .column(Column::new("corrected").prefix("DECTED: corrected "))
            .column(Column::new("detected").prefix(", uncorrectable "));
        dected.push_row(vec![
            Cell::int(self.dected_corrected as i64),
            Cell::int(self.dected_detected as i64),
        ]);
        let mut silent = Table::new("silent")
            .row_suffix(" (must be 0)")
            .column(Column::new("silent").prefix("silent under either: "));
        silent.push_row(vec![Cell::int(self.silent as i64)]);
        vec![secded, dected, silent]
    }
}

fn ways_table(rows: &[WaySplitRow]) -> Table {
    let mut t = Table::new("splits")
        .column(Column::new("hp_ways"))
        .column(Column::new("ule_ways").prefix("+"))
        .column(Column::new("hp_saving").prefix(": HP "))
        .column(Column::new("ule_saving").prefix(", ULE "));
    for r in rows {
        t.push_row(vec![
            Cell::int(r.hp_ways as i64),
            Cell::int(r.ule_ways as i64),
            Cell::percent(r.hp_saving),
            Cell::percent(r.ule_saving),
        ]);
    }
    t
}

fn memlat_table(rows: &[MemLatRow]) -> Table {
    let mut t = Table::new("latency")
        .column(Column::new("latency").right(3))
        .column(Column::new("hp_saving").prefix(" cycles: HP "));
    for r in rows {
        t.push_row(vec![Cell::int(r.latency), Cell::percent(r.hp_saving)]);
    }
    t
}

fn l2_tables(rows: &[L2Row]) -> Vec<Table> {
    let mut points = Table::new("points")
        .column(Column::new("size_kb").right(4))
        .column(Column::new("hit_latency").right(2).prefix(" KB (hit "))
        .column(Column::new("cpi").prefix(" cyc): CPI "))
        .column(Column::new("epi_pj").prefix(", EPI "))
        .column(Column::new("l2_hit_ratio").prefix(" pJ, L2 hits "));
    for r in rows {
        points.push_row(vec![
            Cell::int(r.size_kb),
            Cell::int(r.hit_latency),
            Cell::float(r.cpi, 3),
            Cell::float(r.epi_pj, 2),
            Cell::percent(r.l2_hit_ratio),
        ]);
    }
    let mut stalls = Table::new("stalls")
        .column(Column::new("size_kb").right(4))
        .column(Column::new("il1_stall_cycles").right(8).prefix(" KB: IL1 "))
        .column(Column::new("dl1_stall_cycles").right(8).prefix(", DL1 "))
        .column(
            Column::new("memory_accesses")
                .right(6)
                .prefix(" stall cycles, memory accesses "),
        );
    for r in rows {
        stalls.push_row(vec![
            Cell::int(r.size_kb),
            Cell::int(r.il1_stall_cycles),
            Cell::int(r.dl1_stall_cycles),
            Cell::int(r.memory_accesses),
        ]);
    }
    vec![points, stalls]
}

fn cores_tables(rows: &[CoresRow]) -> Vec<Table> {
    let mut scaling = Table::new("scaling")
        .row_suffix(" per 1k instr")
        .column(Column::new("cores").right(1))
        .column(Column::new("epi_pj").prefix(" cores: EPI "))
        .column(Column::new("l2_hit_ratio").prefix(" pJ, L2 hits "))
        .column(Column::new("memory_accesses").right(6).prefix(", memory "))
        .column(Column::new("memory_per_kilo_instructions").prefix(" ("))
        .column(Column::new("core0_memory_per_kilo").prefix(" per 1k), core-0 demand "));
    for r in rows {
        scaling.push_row(vec![
            Cell::int(r.cores as i64),
            Cell::float(r.epi_pj, 2),
            Cell::percent(r.l2_hit_ratio),
            Cell::int(r.memory_accesses),
            Cell::float(r.memory_per_kilo_instructions, 2),
            Cell::float(r.core0_memory_per_kilo, 2),
        ]);
    }
    let mut per_core = Table::new("per_core")
        .column(Column::new("cores").right(1))
        .column(Column::new("core").right(1).prefix("-core run, core "))
        .column(Column::new("benchmark").left(7).prefix(": "))
        .column(Column::new("ipc").prefix(" IPC "));
    // Per-core rows only up to 8 cores: the 16/32/64 design points are
    // summarized by the scaling table (their per-core listing would be
    // 112 rows of the same 6 programs repeating).
    for r in rows.iter().filter(|r| r.cores <= 8) {
        for (core, (benchmark, ipc)) in r.per_core_ipc.iter().enumerate() {
            per_core.push_row(vec![
                Cell::int(r.cores as i64),
                Cell::int(core as i64),
                Cell::str(benchmark.to_string()),
                Cell::float(*ipc, 3),
            ]);
        }
    }
    vec![scaling, per_core]
}

fn cores_mesi_table(rows: &[CoresTopologyRow]) -> Table {
    let mut t = Table::new("private_l2_mesi")
        .row_suffix(" per 1k instr")
        .column(Column::new("cores").right(1))
        .column(Column::new("epi_pj").prefix(" cores: EPI "))
        .column(Column::new("l2_hit_ratio").prefix(" pJ, L2 hits "))
        .column(Column::new("memory_per_kilo_instructions").prefix(", memory "))
        .column(Column::new("invalidations_per_kilo").prefix(", invalidations "))
        .column(Column::new("interventions_per_kilo").prefix(", interventions "));
    for r in rows {
        t.push_row(vec![
            Cell::int(r.cores as i64),
            Cell::float(r.epi_pj, 2),
            Cell::percent(r.l2_hit_ratio),
            Cell::float(r.memory_per_kilo_instructions, 2),
            Cell::float(r.invalidations_per_kilo, 2),
            Cell::float(r.interventions_per_kilo, 2),
        ]);
    }
    t
}

fn voltage_table(rows: &[VoltageRow]) -> Table {
    let mut t = Table::new("voltage")
        .column(Column::new("ule_vdd_mv"))
        .column(Column::new("sizing_10t").prefix(" mV: 10T x"))
        .column(Column::new("sizing_8t").prefix(", 8T x"))
        .column(Column::new("ule_saving").prefix(", ULE saving "));
    for r in rows {
        t.push_row(vec![
            Cell::float(r.ule_vdd * 1000.0, 0),
            Cell::float(r.sizing_10t, 2),
            Cell::float(r.sizing_8t, 2),
            Cell::percent(r.ule_saving),
        ]);
    }
    t
}

fn granularity_table(rows: &[GranularityRow]) -> Table {
    let mut t = Table::new("granularity")
        .column(Column::new("word_bits").right(2))
        .column(Column::new("storage_overhead").prefix("-bit words: overhead "))
        .column(Column::new("sizing_8t").prefix(", 8T x"))
        .column(Column::new("relative_bits").prefix(", bits x"));
    for r in rows {
        t.push_row(vec![
            Cell::int(r.word_bits),
            Cell::percent(r.storage_overhead),
            Cell::float(r.sizing_8t, 2),
            Cell::float(r.relative_bits, 3),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// A8: workload-zoo ablation (the streaming trace layer end to end)
// ---------------------------------------------------------------------

/// One workload of the zoo ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadZooRow {
    /// Short workload name (`zipf`, `ptrchase`, ...).
    pub workload: &'static str,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Energy per instruction, pJ.
    pub epi_pj: f64,
    /// DL1 hit ratio.
    pub dl1_hit_ratio: f64,
    /// L2 hit ratio.
    pub l2_hit_ratio: f64,
    /// Memory accesses per 1000 executed instructions.
    pub memory_per_kilo: f64,
}

/// Runs every [`Workload`](hyvec_mediabench::zoo::Workload) of the zoo
/// on the proposal machine (hybrid L1, 16KB L2, slow memory) at HP
/// mode. Each trace is routed through the binary encoding — generator
/// → [`hyvec_mediabench::TraceWriter`] →
/// [`hyvec_mediabench::BinaryReplay`] → `System::run` — so every
/// `run-all` exercises the streaming trace layer end to end, not just
/// its unit tests.
pub fn ablation_workloads(scenario: Scenario, params: ExperimentParams) -> Vec<WorkloadZooRow> {
    use hyvec_cachesim::config::{L2Config, MemoryConfig};
    use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay, DEFAULT_CHUNK_ENTRIES};
    use hyvec_mediabench::zoo::Workload;

    let arch = Architecture::build_with(
        scenario,
        DesignPoint::Proposal,
        &FailureModel::default(),
        &MethodologyInputs::default(),
        7,
        1,
        ABLATION_L2_MEMORY_LATENCY,
    )
    // hyvec-lint: allow(no-panic, "the pinned 7+1 proposal sizing converges with default models; exercised by every run-all")
    .expect("proposal architecture");

    Workload::ALL
        .iter()
        .map(|&w| {
            let mut system = System::builder()
                .config(arch.config.clone())
                .memory(MemoryConfig::with_latency(ABLATION_L2_MEMORY_LATENCY))
                .l2(L2Config::unified(16))
                .build()
                // hyvec-lint: allow(no-panic, "builder inputs are the validated paper geometry plus L2Config::unified presets; exercised by every run-all")
                .expect("valid hierarchy");

            let (bytes, _) = encode_entries(
                w.trace(params.instructions, params.seed),
                DEFAULT_CHUNK_ENTRIES,
            );
            let mut reader = BinaryReplay::from_bytes(bytes)
                // hyvec-lint: allow(no-panic, "the header was just written by TraceWriter; exercised by every run-all")
                .expect("freshly encoded trace has a valid header");
            let r = system.run(&mut reader, Mode::Hp);
            // hyvec-lint: allow(no-panic, "an in-memory trace just produced by the encoder cannot be truncated; exercised by every run-all")
            assert!(reader.error().is_none(), "freshly encoded trace corrupt");

            let l2 = r.stats.l2.unwrap_or_default();
            WorkloadZooRow {
                workload: w.name(),
                cpi: r.stats.cycles as f64 / r.stats.instructions as f64,
                epi_pj: r.epi_pj(),
                dl1_hit_ratio: r.stats.dl1.hit_ratio(),
                l2_hit_ratio: if l2.accesses > 0 {
                    l2.hits as f64 / l2.accesses as f64
                } else {
                    0.0
                },
                memory_per_kilo: r.stats.memory_accesses as f64 * 1000.0
                    / r.stats.instructions as f64,
            }
        })
        .collect()
}

fn workloads_table(rows: &[WorkloadZooRow]) -> Table {
    let mut t = Table::new("workloads")
        .column(Column::new("workload").right(8))
        .column(Column::new("cpi").prefix(": CPI "))
        .column(Column::new("epi_pj").prefix(", EPI "))
        .column(Column::new("dl1_hit").prefix(" pJ, DL1 "))
        .column(Column::new("l2_hit").prefix(", L2 "))
        .column(Column::new("mem_per_ki").prefix(", mem/ki "));
    for r in rows {
        t.push_row(vec![
            Cell::str(r.workload),
            Cell::float(r.cpi, 3),
            Cell::float(r.epi_pj, 2),
            Cell::percent(r.dl1_hit_ratio),
            Cell::percent(r.l2_hit_ratio),
            Cell::float(r.memory_per_kilo, 2),
        ]);
    }
    t
}

/// Declares a scenario-parameterized experiment wrapper struct.
macro_rules! scenario_experiment {
    ($(#[$meta:meta])* $name:ident, $artifact:literal, $desc:literal, |$self_:ident, $p:ident| $body:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            scenario: Scenario,
            id: String,
        }

        impl $name {
            /// The experiment for `scenario`.
            pub fn new(scenario: Scenario) -> Self {
                Self {
                    scenario,
                    id: format!(concat!($artifact, "/{}"), scenario),
                }
            }

            /// The scenario this instance evaluates.
            pub fn scenario(&self) -> Scenario {
                self.scenario
            }
        }

        impl Experiment for $name {
            fn id(&self) -> &str {
                &self.id
            }

            fn description(&self) -> &str {
                $desc
            }

            fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report {
                let $self_ = self;
                let $p = params.with_seed(rng_seed);
                single_section(&self.id, params, rng_seed, $body)
            }
        }
    };
}

scenario_experiment!(
    /// Sec. III-C sizing/yield methodology as an [`Experiment`].
    MethodologyExperiment,
    "methodology",
    "Sec. III-C sizing/yield methodology table (iterative ULE-way design loop)",
    |e, _p| {
        let d = design_ule_way(
            e.scenario,
            &FailureModel::default(),
            &MethodologyInputs::default(),
        )
        // hyvec-lint: allow(no-panic, "default inputs converge for both scenarios; pinned by tier-1 methodology tests")
        .expect("default methodology converges");
        methodology_tables(&d)
    }
);

scenario_experiment!(
    /// Figure 3 (HP-mode EPI) as an [`Experiment`].
    Fig3Experiment,
    "fig3",
    "Figure 3: HP-mode EPI breakdowns, baseline vs proposal (BigBench)",
    |e, p| fig3_hp_epi(e.scenario, p).tables()
);

scenario_experiment!(
    /// Figure 4 (ULE-mode EPI breakdowns) as an [`Experiment`].
    Fig4Experiment,
    "fig4",
    "Figure 4: ULE-mode EPI breakdowns, baseline vs proposal (SmallBench)",
    |e, p| fig4_ule_epi(e.scenario, p).tables()
);

scenario_experiment!(
    /// Sec. IV-B.2 execution-time overhead as an [`Experiment`].
    PerformanceExperiment,
    "performance",
    "Sec. IV-B.2 ULE execution-time overhead vs the baseline",
    |e, p| performance_tables(&ule_performance(e.scenario, p))
);

scenario_experiment!(
    /// The L1 area comparison as an [`Experiment`].
    AreaExperiment,
    "area",
    "L1 area comparison across cell mixes and EDC check bits",
    |e, _p| area_comparison(e.scenario).tables()
);

scenario_experiment!(
    /// Yields + fault injection as an [`Experiment`].
    ReliabilityExperiment,
    "reliability",
    "Way yields plus seeded fault-injection outcomes over simulated dies",
    |e, p| reliability(e.scenario, RELIABILITY_DIES, p).tables()
);

scenario_experiment!(
    /// The 7+1 vs 6+2 way-split ablation as an [`Experiment`].
    AblationWaysExperiment,
    "ablation-ways",
    "Ablation: 7+1 vs 6+2 way split between cell types",
    |e, p| vec![ways_table(&ablation_ways(e.scenario, p))]
);

scenario_experiment!(
    /// The memory-latency ablation as an [`Experiment`].
    AblationMemoryLatencyExperiment,
    "ablation-memlat",
    "Ablation: main-memory latency sensitivity of the EPI saving",
    |e, p| vec![memlat_table(&ablation_memory_latency(e.scenario, p))]
);

scenario_experiment!(
    /// The ULE-voltage ablation as an [`Experiment`].
    AblationVoltageExperiment,
    "ablation-voltage",
    "Ablation: ULE supply-voltage sweep of energy and reliability",
    |e, p| vec![voltage_table(&ablation_voltage(e.scenario, p))]
);

scenario_experiment!(
    /// The L2 size/latency ablation (EPI + stall breakdown over the
    /// composable memory hierarchy) as an [`Experiment`].
    AblationL2Experiment,
    "ablation-l2",
    "Ablation: none/16/64/256KB L2 sizes behind the hybrid L1 (EPI, stalls, traffic)",
    |e, p| l2_tables(&ablation_l2(e.scenario, p))
);

scenario_experiment!(
    /// The core-count ablation (1..64 cores behind a fixed shared L2:
    /// EPI, per-core IPC, L2 hit ratio and contention-induced memory
    /// traffic — plus the private-L2 MESI topology scenario with its
    /// coherence-traffic counters) as an [`Experiment`].
    AblationCoresExperiment,
    "ablation-cores",
    "Ablation: 1-64 cores over a shared L2 plus private MESI L2s (EPI, IPC, coherence traffic)",
    |e, p| {
        let mut tables = cores_tables(&ablation_cores(e.scenario, p));
        tables.push(cores_mesi_table(&ablation_cores_mesi(e.scenario, p)));
        tables
    }
);

scenario_experiment!(
    /// The workload-zoo ablation (zipfian lookups, pointer chasing,
    /// stencil streaming, bursty web arrivals — every trace replayed
    /// through the binary streaming encoder) as an [`Experiment`].
    AblationWorkloadsExperiment,
    "ablation-workloads",
    "Ablation: workload zoo (zipf/ptrchase/stencil/webburst) replayed via the binary trace stream",
    |e, p| vec![workloads_table(&ablation_workloads(e.scenario, p))]
);

/// Hard faults + soft errors (DECTED vs SECDED, scenario B) as an
/// [`Experiment`].
#[derive(Debug)]
pub struct SoftErrorExperiment;

impl Experiment for SoftErrorExperiment {
    fn id(&self) -> &str {
        "soft-errors/B"
    }

    fn description(&self) -> &str {
        "Hard faults plus accelerated soft errors: DECTED vs SECDED (scenario B)"
    }

    fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report {
        let r = soft_error_study(params.with_seed(rng_seed), SOFT_ERROR_RATE);
        single_section(self.id(), params, rng_seed, r.tables())
    }
}

/// The protection-granularity ablation (scenario A) as an
/// [`Experiment`].
#[derive(Debug)]
pub struct AblationGranularityExperiment;

impl Experiment for AblationGranularityExperiment {
    fn id(&self) -> &str {
        "ablation-granularity/A"
    }

    fn description(&self) -> &str {
        "Ablation: EDC protection granularity (word width vs storage overhead)"
    }

    fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report {
        single_section(
            self.id(),
            params,
            rng_seed,
            vec![granularity_table(&ablation_granularity())],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        ExperimentParams {
            instructions: 20_000,
            seed: 7,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_name_keyed() {
        // The canonical encoding is `name=value` in fixed lexical
        // order, so the fingerprint survives struct-field reorderings
        // (field *names*, not positions, are what is hashed).
        let p = ExperimentParams {
            seed: 1,
            instructions: 100_000,
        };
        assert_eq!(p.canonical_encoding(), "instructions=100000;seed=1");
        assert_eq!(
            p.fingerprint(),
            crate::seed::fnv1a("instructions=100000;seed=1")
        );
        // Pinned across runs and releases: changing the encoding
        // silently invalidates every content-addressed cache entry
        // keyed on it, so a change must be a deliberate act that
        // fails this test.
        assert_eq!(ExperimentParams::default().fingerprint(), p.fingerprint());
        assert_eq!(p.fingerprint(), 0x5A7E_E7A9_E60F_4C48);
    }

    #[test]
    fn fingerprint_covers_every_field() {
        let p = ExperimentParams::default();
        assert_ne!(p.fingerprint(), p.with_seed(2).fingerprint());
        let more = ExperimentParams {
            instructions: p.instructions + 1,
            ..p
        };
        assert_ne!(p.fingerprint(), more.fingerprint());
    }

    #[test]
    fn fig3_proposal_saves_energy_at_hp() {
        for s in Scenario::ALL {
            let r = fig3_hp_epi(s, quick());
            assert!(
                r.saving > 0.05 && r.saving < 0.30,
                "scenario {s}: HP saving {} out of band",
                r.saving
            );
            // Normalized baseline sums to 1.
            assert!((r.baseline.total_pj() - 1.0).abs() < 1e-9);
            assert!((r.proposal.total_pj() - (1.0 - r.saving)).abs() < 1e-6);
            // Benchmarks differ only mildly from the average.
            for (b, ratio) in &r.per_benchmark {
                assert!(
                    (ratio - (1.0 - r.saving)).abs() < 0.08,
                    "{s}/{b}: per-benchmark ratio {ratio} far from avg"
                );
            }
        }
    }

    #[test]
    fn fig4_proposal_saves_big_at_ule() {
        for s in Scenario::ALL {
            let r = fig4_ule_epi(s, quick());
            assert!(
                r.avg_saving > 0.25 && r.avg_saving < 0.60,
                "scenario {s}: ULE saving {} out of band",
                r.avg_saving
            );
            assert_eq!(r.rows.len(), 4);
            for row in &r.rows {
                assert!((row.baseline.total_pj() - 1.0).abs() < 1e-9);
                assert!(row.saving > 0.15, "{s}/{}: {}", row.benchmark, row.saving);
            }
        }
    }

    #[test]
    fn scenario_a_saves_more_than_b_at_hp() {
        // Paper: 14% (A) vs 12% (B) — B's DECTED check bits dilute the
        // benefit.
        let a = fig3_hp_epi(Scenario::A, quick());
        let b = fig3_hp_epi(Scenario::B, quick());
        assert!(
            a.saving > b.saving,
            "A {} should beat B {}",
            a.saving,
            b.saving
        );
    }

    #[test]
    fn performance_overhead_is_small() {
        for s in Scenario::ALL {
            for row in ule_performance(s, quick()) {
                assert!(
                    row.overhead >= 0.0 && row.overhead < 0.08,
                    "{s}/{}: overhead {}",
                    row.benchmark,
                    row.overhead
                );
            }
        }
    }

    #[test]
    fn area_improves() {
        for s in Scenario::ALL {
            let r = area_comparison(s);
            assert!(r.saving > 0.0, "{s}: no area saving: {:?}", r);
            assert!(r.ule_way_proposal_um2 < r.ule_way_baseline_um2, "{s}");
        }
    }

    #[test]
    fn reliability_proposal_never_corrupts_silently() {
        let r = reliability(Scenario::A, 50, quick());
        assert_eq!(r.proposal_silent, 0, "EDC must prevent silent corruption");
        assert!(
            r.strawman_silent > 0,
            "no-EDC strawman must corrupt: the faults are real"
        );
        assert!(
            r.proposal_corrected > 0,
            "faults should trigger corrections"
        );
        assert!(r.mc_proposal >= r.analytic_baseline - 0.15);
    }

    #[test]
    fn soft_error_study_shows_dected_advantage() {
        let r = soft_error_study(
            ExperimentParams {
                instructions: 40_000,
                seed: 5,
            },
            3e-8,
        );
        assert_eq!(r.silent, 0, "both codes must never corrupt silently");
        assert!(
            r.secded_detected > r.dected_detected,
            "SECDED must lose correction on hard+soft words: {r:?}"
        );
        assert!(r.dected_corrected > 0);
    }

    #[test]
    fn voltage_sweep_preserves_the_win() {
        let rows = ablation_voltage(Scenario::A, quick());
        assert!(rows.len() >= 3, "most voltages must be feasible");
        for r in &rows {
            assert!(
                r.ule_saving > 0.10,
                "saving collapsed at {} V: {}",
                r.ule_vdd,
                r.ule_saving
            );
            assert!(r.sizing_8t < r.sizing_10t, "8T must stay smaller");
        }
        // Lower voltage -> bigger cells (both families).
        assert!(rows.first().unwrap().sizing_10t > rows.last().unwrap().sizing_10t);
    }

    #[test]
    fn l2_ablation_exercises_the_hierarchy() {
        let rows = ablation_l2(Scenario::A, quick());
        assert_eq!(rows.len(), 4);
        let flat = rows[0];
        assert_eq!(flat.size_kb, 0);
        assert_eq!(flat.l2_hit_ratio, 0.0, "no L2 -> no L2 hits");
        assert!(flat.memory_accesses > 0);
        // The 16KB point has the lowest lookup latency: the clearest
        // win over the flat platform (at the short test instruction
        // budget, compulsory misses still dominate the miss stream,
        // so the hit ratio is modest but the latency hiding is real).
        let l2 = rows[1];
        assert!(
            l2.l2_hit_ratio > 0.05,
            "the L2 must absorb part of the miss stream: {}",
            l2.l2_hit_ratio
        );
        assert!(l2.cpi < flat.cpi, "the L2 must hide memory latency");
        assert!(
            l2.il1_stall_cycles + l2.dl1_stall_cycles
                < flat.il1_stall_cycles + flat.dl1_stall_cycles,
            "stall breakdown must shrink with the L2"
        );
        assert!(
            l2.memory_accesses < flat.memory_accesses,
            "the L2 must filter memory traffic"
        );
        // Capacity monotonicity: more L2 never hits less.
        for pair in rows[1..].windows(2) {
            assert!(pair[1].l2_hit_ratio >= pair[0].l2_hit_ratio);
        }
    }

    #[test]
    fn cores_ablation_exposes_contention() {
        let rows = ablation_cores(Scenario::A, quick());
        assert_eq!(rows.len(), ABLATION_CORES_COUNTS.len());
        assert_eq!(
            rows.iter().map(|r| r.cores).collect::<Vec<_>>(),
            ABLATION_CORES_COUNTS
        );
        for r in &rows {
            assert_eq!(r.per_core_ipc.len(), r.cores);
            for (b, ipc) in &r.per_core_ipc {
                assert!(
                    *ipc > 0.0 && *ipc <= 1.0,
                    "{}-core {b}: IPC {ipc} out of range",
                    r.cores
                );
            }
            assert!(r.epi_pj > 0.0);
            assert!(r.memory_accesses > 0);
        }
        // Contention: core 0 runs the identical stream at every core
        // count, so its demand traffic rises (and the shared L2's hit
        // ratio falls) purely because the other cores evict its lines.
        let one = &rows[0];
        let eight = &rows[3];
        assert!(
            eight.core0_memory_per_kilo > one.core0_memory_per_kilo,
            "contention must raise core 0's demand memory traffic: {} vs {}",
            eight.core0_memory_per_kilo,
            one.core0_memory_per_kilo
        );
        assert!(
            eight.l2_hit_ratio < one.l2_hit_ratio,
            "contention must depress the shared-L2 hit ratio: {} vs {}",
            eight.l2_hit_ratio,
            one.l2_hit_ratio
        );
        // And core 0 (same program, same stream) can only slow down
        // when seven other programs contend for its L2 lines.
        assert!(eight.per_core_ipc[0].1 <= one.per_core_ipc[0].1);
    }

    #[test]
    fn cores_mesi_ablation_counts_coherence_traffic() {
        let rows = ablation_cores_mesi(Scenario::A, quick());
        assert_eq!(
            rows.iter().map(|r| r.cores).collect::<Vec<_>>(),
            ABLATION_CORES_MESI_COUNTS
        );
        for r in &rows {
            assert!(r.epi_pj > 0.0);
            assert!(r.l2_hit_ratio > 0.0);
            // Same program over the same address space on every core:
            // writes must upgrade against peer copies and misses must
            // be supplied cache-to-cache.
            assert!(
                r.invalidations_per_kilo > 0.0,
                "{}-core MESI run recorded no invalidations",
                r.cores
            );
            assert!(
                r.interventions_per_kilo > 0.0,
                "{}-core MESI run recorded no interventions",
                r.cores
            );
        }
    }

    #[test]
    fn granularity_tradeoff_shape() {
        let rows = ablation_granularity();
        assert_eq!(rows.len(), 3);
        // Overhead decreases with word size.
        assert!(rows[0].storage_overhead > rows[1].storage_overhead);
        assert!(rows[1].storage_overhead > rows[2].storage_overhead);
        // Finer granularity tolerates more faults, so sizing can only
        // shrink (or stay) as words get smaller.
        assert!(rows[0].sizing_8t <= rows[2].sizing_8t);
    }
}
