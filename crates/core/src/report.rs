//! Typed result documents for the evaluation: the data model every
//! experiment produces and every renderer consumes.
//!
//! The model is a three-level document tree:
//!
//! ```text
//! Report                       one sweep (or one experiment)
//! └── Section                  one artifact × scenario cell, e.g. "fig3/A"
//!     └── Table                one logical result of the section
//!         ├── Column ...       machine key + text-layout metadata
//!         └── Row (Vec<Cell>)  typed values
//! ```
//!
//! Everything an experiment reports — a figure's breakdown matrix, a
//! one-line summary sentence, an ablation sweep — is a [`Table`] of
//! typed [`Cell`]s. Prose-style summary lines are single-row tables
//! whose column `prefix`es carry the literal text between values; that
//! is what lets the text renderer in [`crate::render`] reproduce the
//! historical human-readable output byte-for-byte while the JSON and
//! CSV renderers see only clean `key → typed value` data.
//!
//! # Example
//!
//! ```
//! use hyvec_core::report::{Cell, Column, Table};
//!
//! let mut t = Table::new("saving").row_suffix(" (paper: ~14%)");
//! t.push_column(Column::new("saving").prefix("HP EPI saving: "));
//! t.push_row(vec![Cell::percent(0.137)]);
//! assert_eq!(t.render_text(), "HP EPI saving: 13.7% (paper: ~14%)\n");
//! ```

use std::fmt;

/// Horizontal alignment of a cell inside its column width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (`{:<w}`).
    Left,
    /// Pad on the left (`{:>w}`).
    Right,
}

/// One typed value of a report table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A string (benchmark name, design-point label, ...).
    Str(String),
    /// An integer count (cycles, iterations, corrected errors, ...).
    Int(i64),
    /// A real number rendered with a fixed number of decimals.
    Float {
        /// The value.
        value: f64,
        /// Decimals in the text rendering (`{:.p}`).
        precision: u8,
    },
    /// A real number rendered in scientific notation (`{:.p e}`).
    Sci {
        /// The value.
        value: f64,
        /// Mantissa decimals in the text rendering.
        precision: u8,
    },
    /// A fraction rendered as a percentage (`0.423` → `"42.3%"`).
    /// JSON and CSV carry the raw fraction.
    Percent {
        /// The fraction (1.0 = 100%).
        value: f64,
        /// Decimals of the rendered percentage.
        precision: u8,
    },
}

impl Cell {
    /// A string cell.
    pub fn str(s: impl Into<String>) -> Cell {
        Cell::Str(s.into())
    }

    /// An integer cell (accepts any integer that fits `i64`).
    pub fn int(v: impl TryInto<i64>) -> Cell {
        Cell::Int(
            v.try_into()
                // hyvec-lint: allow(no-panic, "counter magnitudes are bounded far below i64::MAX by instruction budgets; a wrapped cell would render a silently wrong figure")
                .unwrap_or_else(|_| panic!("integer cell out of i64 range")),
        )
    }

    /// A fixed-precision float cell.
    pub fn float(value: f64, precision: u8) -> Cell {
        Cell::Float { value, precision }
    }

    /// A scientific-notation float cell.
    pub fn sci(value: f64, precision: u8) -> Cell {
        Cell::Sci { value, precision }
    }

    /// A percentage cell with the conventional one decimal.
    pub fn percent(value: f64) -> Cell {
        Cell::Percent {
            value,
            precision: 1,
        }
    }

    /// Machine-readable name of the cell's type (used by the CSV
    /// renderer's `type` column).
    pub fn type_name(&self) -> &'static str {
        match self {
            Cell::Str(_) => "str",
            Cell::Int(_) => "int",
            Cell::Float { .. } => "float",
            Cell::Sci { .. } => "float",
            Cell::Percent { .. } => "percent",
        }
    }

    /// The human-oriented text of the cell, before column padding.
    pub fn render_text(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, precision } => {
                format!("{value:.prec$}", prec = usize::from(*precision))
            }
            Cell::Sci { value, precision } => {
                format!("{value:.prec$e}", prec = usize::from(*precision))
            }
            Cell::Percent { value, precision } => {
                format!("{:.prec$}%", 100.0 * value, prec = usize::from(*precision))
            }
        }
    }

    /// The raw machine value: full-precision, no layout. Percentages
    /// yield their fraction, floats their shortest round-trip decimal.
    pub fn render_raw(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, .. } | Cell::Sci { value, .. } | Cell::Percent { value, .. } => {
                format_f64(*value)
            }
        }
    }
}

/// Formats an `f64` as a JSON-compatible number literal (shortest
/// round-trip decimal; non-finite values become `null`).
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    // Rust prints reals without a fractional part as "2"; that is a
    // valid JSON number, so it can stay.
    s
}

/// One column of a [`Table`]: the machine key plus everything the text
/// renderer needs to lay the column out.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Machine-readable key (JSON object key, CSV `column` field).
    pub key: String,
    /// Display header for aligned text tables ("" renders blank).
    pub header: String,
    /// Text alignment inside `width`.
    pub align: Align,
    /// Text padding width (0 = natural width, no padding).
    pub width: usize,
    /// Literal text emitted before the cell in text rows (and before
    /// the header in header lines). Carries prose for sentence-style
    /// single-row tables.
    pub prefix: String,
}

impl Column {
    /// A new left-aligned, unpadded, prefix-less column.
    pub fn new(key: impl Into<String>) -> Column {
        Column {
            key: key.into(),
            header: String::new(),
            align: Align::Left,
            width: 0,
            prefix: String::new(),
        }
    }

    /// Sets the display header.
    pub fn header(mut self, header: impl Into<String>) -> Column {
        self.header = header.into();
        self
    }

    /// Left-aligns the column in `width` characters.
    pub fn left(mut self, width: usize) -> Column {
        self.align = Align::Left;
        self.width = width;
        self
    }

    /// Right-aligns the column in `width` characters.
    pub fn right(mut self, width: usize) -> Column {
        self.align = Align::Right;
        self.width = width;
        self
    }

    /// Sets the literal text preceding the cell.
    pub fn prefix(mut self, prefix: impl Into<String>) -> Column {
        self.prefix = prefix.into();
        self
    }

    /// Pads `text` to the column's width and alignment.
    pub fn pad(&self, text: &str) -> String {
        match (self.width, self.align) {
            (0, _) => text.to_string(),
            (w, Align::Left) => format!("{text:<w$}"),
            (w, Align::Right) => format!("{text:>w$}"),
        }
    }
}

/// One typed table: columns, rows, and the layout metadata the text
/// renderer uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Machine-readable table id, unique within its section.
    pub id: String,
    /// Column specifications.
    pub columns: Vec<Column>,
    /// Rows of cells; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Whether the text renderer emits a header line.
    pub show_header: bool,
    /// Literal text appended to every text row (closing prose).
    pub row_suffix: String,
    /// Whether the text renderer skips this table. Used for detail
    /// data (e.g. Figure 4's per-benchmark breakdowns) that the
    /// historical text report never showed but JSON/CSV must carry.
    pub hidden_in_text: bool,
}

impl Table {
    /// A new header-less table.
    pub fn new(id: impl Into<String>) -> Table {
        Table {
            id: id.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            show_header: false,
            row_suffix: String::new(),
            hidden_in_text: false,
        }
    }

    /// Enables the text header line.
    pub fn with_header(mut self) -> Table {
        self.show_header = true;
        self
    }

    /// Hides the table from the text renderer (structured formats
    /// still emit it).
    pub fn hidden_in_text(mut self) -> Table {
        self.hidden_in_text = true;
        self
    }

    /// Sets the literal row suffix.
    pub fn row_suffix(mut self, suffix: impl Into<String>) -> Table {
        self.row_suffix = suffix.into();
        self
    }

    /// Adds a column (builder form).
    pub fn column(mut self, column: Column) -> Table {
        self.columns.push(column);
        self
    }

    /// Adds a column (mutating form).
    pub fn push_column(&mut self, column: Column) {
        self.columns.push(column);
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the column count —
    /// the invariant every renderer relies on.
    pub fn push_row(&mut self, cells: Vec<Cell>) {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): renderers index rows by column, so a ragged table must abort at construction")
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table {}: row arity {} != column count {}",
            self.id,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Renders just this table as aligned text (one line per row, plus
    /// the header when enabled). The section/report renderers build on
    /// this.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.show_header {
            for c in &self.columns {
                out.push_str(&c.prefix);
                out.push_str(&c.pad(&c.header));
            }
            out.push('\n');
        }
        for row in &self.rows {
            for (c, cell) in self.columns.iter().zip(row) {
                out.push_str(&c.prefix);
                out.push_str(&c.pad(&cell.render_text()));
            }
            out.push_str(&self.row_suffix);
            out.push('\n');
        }
        out
    }
}

/// One artifact × scenario cell of the evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Stable id, `"artifact/scenario"` (e.g. `"fig3/A"`); doubles as
    /// the seed-derivation key (see [`crate::seed`]).
    pub label: String,
    /// The private RNG seed the section's experiment ran with.
    pub seed: u64,
    /// The section's result tables, in presentation order.
    pub tables: Vec<Table>,
}

impl Section {
    /// A new, empty section.
    pub fn new(label: impl Into<String>, seed: u64) -> Section {
        Section {
            label: label.into(),
            seed,
            tables: Vec::new(),
        }
    }

    /// Appends a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Appends several tables.
    pub fn extend(&mut self, tables: impl IntoIterator<Item = Table>) {
        self.tables.extend(tables);
    }
}

/// The full typed result document of a sweep (or of one experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Document title (`"hyvec evaluation sweep"` for sweeps).
    pub title: String,
    /// Instructions simulated per benchmark.
    pub instructions: u64,
    /// The *base* seed the per-section seeds were derived from.
    pub base_seed: u64,
    /// Sections in canonical matrix order.
    pub sections: Vec<Section>,
}

/// Title used by sweep reports (kept stable for output compatibility).
pub const SWEEP_TITLE: &str = "hyvec evaluation sweep";

impl Report {
    /// A new, empty report.
    pub fn new(title: impl Into<String>, instructions: u64, base_seed: u64) -> Report {
        Report {
            title: title.into(),
            instructions,
            base_seed,
            sections: Vec::new(),
        }
    }

    /// A sweep-titled report holding one section (what a single
    /// [`crate::experiments::Experiment`] run returns).
    pub fn single(instructions: u64, base_seed: u64, section: Section) -> Report {
        Report {
            title: SWEEP_TITLE.to_string(),
            instructions,
            base_seed,
            sections: vec![section],
        }
    }

    /// Renders the report as human-readable aligned text (the
    /// historical `hyvec run-all` format). Shorthand for the text
    /// backend of [`crate::render`].
    pub fn render(&self) -> String {
        crate::render::render(self, crate::render::Format::Text)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_text_matches_legacy_format_strings() {
        assert_eq!(Cell::float(1.0, 3).render_text(), "1.000");
        assert_eq!(Cell::percent(0.423).render_text(), "42.3%");
        assert_eq!(Cell::sci(1.22e-6, 3).render_text(), "1.220e-6");
        assert_eq!(Cell::int(42u32).render_text(), "42");
        assert_eq!(Cell::str("adpcm_c").render_text(), "adpcm_c");
    }

    #[test]
    fn cell_raw_values_are_machine_friendly() {
        assert_eq!(Cell::percent(0.5).render_raw(), "0.5");
        assert_eq!(Cell::float(2.0, 2).render_raw(), "2");
        assert_eq!(Cell::float(f64::NAN, 2).render_raw(), "null");
    }

    #[test]
    fn column_padding_matches_format_macros() {
        let left = Column::new("a").left(10);
        assert_eq!(left.pad("x"), format!("{:<10}", "x"));
        let right = Column::new("b").right(8);
        assert_eq!(right.pad("1.000"), format!("{:>8}", "1.000"));
        assert_eq!(Column::new("c").pad("free"), "free");
    }

    #[test]
    fn sentence_table_renders_prose() {
        let mut t = Table::new("l1").row_suffix(")");
        t.push_column(Column::new("baseline_um2").prefix("L1: "));
        t.push_column(Column::new("saving").prefix(" um2 (saving "));
        t.push_row(vec![Cell::float(1234.0, 0), Cell::percent(0.25)]);
        assert_eq!(t.render_text(), "L1: 1234 um2 (saving 25.0%)\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_is_rejected() {
        let mut t = Table::new("t")
            .column(Column::new("a"))
            .column(Column::new("b"));
        t.push_row(vec![Cell::int(1i64)]);
    }

    #[test]
    fn header_line_uses_column_layout() {
        let t = Table::new("epi")
            .with_header()
            .column(Column::new("design").left(24))
            .column(Column::new("l1").header("L1 dyn").right(8).prefix(" "));
        assert_eq!(t.render_text(), format!("{:<24} {:>8}\n", "", "L1 dyn"));
    }
}
