//! The experiment registry: the open-ended successor of the old
//! closed `JobKind` enum.
//!
//! A [`Registry`] owns a list of [`Experiment`] implementations in
//! canonical report order. The sweep engine ([`crate::sweep`])
//! enumerates jobs from whatever is registered, so adding an artifact
//! to the evaluation is one [`Registry::register`] call — no enum to
//! extend, no executor match arm, no renderer change.
//!
//! [`Registry::standard`] registers the paper's full evaluation
//! matrix plus this reproduction's own ablations (every artifact ×
//! scenario cell, 26 experiments).

use crate::architecture::Scenario;
use crate::experiments::{
    AblationCoresExperiment, AblationGranularityExperiment, AblationL2Experiment,
    AblationMemoryLatencyExperiment, AblationVoltageExperiment, AblationWaysExperiment,
    AblationWorkloadsExperiment, AreaExperiment, Experiment, Fig3Experiment, Fig4Experiment,
    MethodologyExperiment, PerformanceExperiment, ReliabilityExperiment, SoftErrorExperiment,
};

/// An ordered collection of registered experiments.
#[derive(Default)]
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            experiments: Vec::new(),
        }
    }

    /// The paper's full evaluation matrix in canonical report order
    /// (per-scenario artifacts enumerate scenarios in
    /// [`Scenario::ALL`] order).
    pub fn standard() -> Registry {
        let mut r = Registry::new();
        for s in Scenario::ALL {
            r.register(Box::new(MethodologyExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(Fig3Experiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(Fig4Experiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(PerformanceExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AreaExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(ReliabilityExperiment::new(s)));
        }
        r.register(Box::new(SoftErrorExperiment));
        for s in Scenario::ALL {
            r.register(Box::new(AblationWaysExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AblationMemoryLatencyExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AblationVoltageExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AblationL2Experiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AblationCoresExperiment::new(s)));
        }
        for s in Scenario::ALL {
            r.register(Box::new(AblationWorkloadsExperiment::new(s)));
        }
        r.register(Box::new(AblationGranularityExperiment));
        r
    }

    /// Appends an experiment.
    ///
    /// # Panics
    ///
    /// Panics if an experiment with the same id is already registered
    /// (duplicate ids would collide in seed derivation and reports).
    pub fn register(&mut self, experiment: Box<dyn Experiment>) {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): duplicate ids would collide in seed derivation, corrupting determinism")
        assert!(
            self.get(experiment.id()).is_none(),
            "duplicate experiment id {:?}",
            experiment.id()
        );
        self.experiments.push(experiment);
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The registered ids, in registration (= report) order.
    pub fn ids(&self) -> Vec<&str> {
        self.experiments.iter().map(|e| e.id()).collect()
    }

    /// Looks an experiment up by id.
    pub fn get(&self, id: &str) -> Option<&dyn Experiment> {
        self.experiments
            .iter()
            .find(|e| e.id() == id)
            .map(|e| e.as_ref())
    }

    /// Iterates the registered experiments in order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(|e| e.as_ref())
    }

    /// Serializes the registry as the machine-readable index: id,
    /// artifact family, scenario, and one-line description per
    /// experiment, in registration (= report) order.
    ///
    /// `hyvec list --format json` prints this string and the serve
    /// daemon's `GET /experiments` serves it, byte-identical —
    /// clients may treat the two as the same document. Hand-rolled
    /// JSON, same offline discipline as [`crate::render`].
    pub fn index_json(&self) -> String {
        use crate::render::escape_json;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-registry/v1\",\n");
        out.push_str("  \"experiments\": [");
        for (i, e) in self.iter().enumerate() {
            let id = e.id();
            let (artifact, scenario) = id.split_once('/').unwrap_or((id, ""));
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"artifact\": \"{}\", \"scenario\": \"{}\", \"description\": \"{}\"}}",
                escape_json(id),
                escape_json(artifact),
                escape_json(scenario),
                escape_json(e.description())
            ));
        }
        if self.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentParams;
    use crate::report::Report;

    #[test]
    fn standard_registry_covers_the_matrix() {
        let r = Registry::standard();
        assert_eq!(r.len(), 26);
        for s in Scenario::ALL {
            for prefix in [
                "methodology",
                "fig3",
                "fig4",
                "performance",
                "area",
                "reliability",
                "ablation-ways",
                "ablation-memlat",
                "ablation-voltage",
                "ablation-l2",
                "ablation-cores",
                "ablation-workloads",
            ] {
                let id = format!("{prefix}/{s}");
                assert!(r.get(&id).is_some(), "registry is missing {id}");
            }
        }
        assert!(r.get("soft-errors/B").is_some());
        assert!(r.get("ablation-granularity/A").is_some());
        assert!(r.get("fig5/A").is_none());
    }

    #[test]
    fn index_json_lists_every_experiment_with_a_description() {
        let r = Registry::standard();
        let json = r.index_json();
        assert!(json.contains("\"schema\": \"hyvec-registry/v1\""));
        for e in r.iter() {
            assert!(
                json.contains(&format!("\"id\": \"{}\"", e.id())),
                "index is missing {}",
                e.id()
            );
            assert!(
                !e.description().is_empty(),
                "{} has no description for the index",
                e.id()
            );
        }
        // Split fields accompany the full id.
        assert!(json.contains(
            "\"id\": \"fig3/A\", \"artifact\": \"fig3\", \"scenario\": \"A\", \"description\": \"Figure 3"
        ));
        // Exactly one array entry per experiment.
        assert_eq!(json.matches("\"id\": ").count(), r.len());
    }

    #[test]
    fn index_json_of_an_empty_registry_is_well_formed() {
        let json = Registry::new().index_json();
        assert!(json.contains("\"experiments\": []"));
    }

    #[test]
    fn ids_are_unique() {
        let registry = Registry::standard();
        let mut ids = registry.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 26, "duplicate experiment ids");
    }

    #[test]
    #[should_panic(expected = "duplicate experiment id")]
    fn duplicate_registration_is_rejected() {
        let mut r = Registry::new();
        r.register(Box::new(SoftErrorExperiment));
        r.register(Box::new(SoftErrorExperiment));
    }

    #[test]
    fn registry_is_open_for_extension() {
        struct Custom;
        impl Experiment for Custom {
            fn id(&self) -> &str {
                "custom/A"
            }
            fn run(&self, params: ExperimentParams, rng_seed: u64) -> Report {
                Report::single(
                    params.instructions,
                    params.seed,
                    crate::report::Section::new(self.id(), rng_seed),
                )
            }
        }
        let mut r = Registry::new();
        r.register(Box::new(Custom));
        assert_eq!(r.ids(), vec!["custom/A"]);
        let report = r
            .get("custom/A")
            .unwrap()
            .run(ExperimentParams::default(), 9);
        assert_eq!(report.sections[0].label, "custom/A");
        assert_eq!(report.sections[0].seed, 9);
    }
}
