//! Deterministic per-job seed derivation, shared by the sweep engine,
//! the CLI front-ends, and the workspace determinism tests.
//!
//! Every job of the evaluation matrix owns a private RNG seed derived
//! from the sweep's base seed and the job's stable label. Seeds
//! therefore do not depend on worker count, scheduling order, or the
//! position of a job in the matrix — the property the workspace's
//! `tests/determinism.rs` enforces. Centralizing the derivation here
//! keeps callers (and tests) from re-implementing the hash and
//! silently drifting.

/// Derives a job's private seed from the sweep base seed and the job's
/// stable label: FNV-1a over the label, then a SplitMix64 finalizer so
/// related base seeds still give unrelated streams.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    split_mix64(base ^ fnv1a(label).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// FNV-1a over `label`'s bytes (the label-keying half of
/// [`derive_seed`]).
pub fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The SplitMix64 finalizer (Steele et al.): a full-avalanche bijection
/// on `u64`, so distinct inputs always give distinct seeds.
pub fn split_mix64(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stable_and_keyed_on_base_and_label() {
        assert_eq!(derive_seed(1, "fig3/A"), derive_seed(1, "fig3/A"));
        assert_ne!(derive_seed(1, "fig3/A"), derive_seed(2, "fig3/A"));
        assert_ne!(derive_seed(1, "fig3/A"), derive_seed(1, "fig3/B"));
    }

    #[test]
    fn split_mix64_is_a_bijection_on_samples() {
        // Spot-check injectivity over a dense sample.
        let mut outs: Vec<u64> = (0..10_000u64).map(split_mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn historical_derivation_is_preserved() {
        // The exact constant chain the seed-derivation shipped with;
        // changing it would silently re-seed every experiment.
        let base = 0xD47E_2013u64;
        let label = "fig3/A";
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = base ^ h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        assert_eq!(derive_seed(base, label), z ^ (z >> 31));
    }
}
