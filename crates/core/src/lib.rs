//! # hyvec-core — the hybrid-voltage EDC cache architecture
//!
//! This crate is the reproduction of the primary contribution of
//! *"Efficient Cache Architectures for Reliable Hybrid Voltage
//! Operation Using EDC Codes"* (Maric, Abella, Valero — DATE 2013): a
//! single-Vcc-domain L1 cache whose ways mix bitcell types, where the
//! energy-hungry 10T ULE ways of the prior hybrid design (Maric et
//! al., CF 2011) are replaced by smaller 8T cells protected with EDC
//! codes, keeping the same yield and reliability guarantees.
//!
//! The two scenarios of the paper:
//!
//! * **Scenario A** — baseline `6T+10T`, no coding. Proposal:
//!   `6T + 8T+SECDED`, SECDED active only at ULE mode.
//! * **Scenario B** — baseline `6T+SECDED + 10T+SECDED` (soft-error
//!   protection everywhere). Proposal: `6T+SECDED + 8T+DECTED`,
//!   DECTED active only at ULE mode (SECDED suffices at HP).
//!
//! Key entry points:
//!
//! * [`methodology::design_ule_way`] — the iterative sizing loop of
//!   the paper's Fig. 2, built on the Chen-style failure model and the
//!   yield equations (1)–(2);
//! * [`architecture::Architecture`] — turns a scenario + design point
//!   into a simulatable [`hyvec_cachesim::SystemConfig`];
//! * [`experiments`] — regenerates every figure and table of the
//!   paper's evaluation (see `DESIGN.md` for the experiment index),
//!   each behind the [`experiments::Experiment`] trait;
//! * [`registry`] + [`sweep`] — the open experiment registry and the
//!   parallel sweep runner that enumerates jobs from it;
//! * [`report`] + [`render`] — the typed result documents every
//!   experiment produces, and the text/JSON/CSV backends.
//!
//! # Quickstart
//!
//! ```
//! use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
//! use hyvec_cachesim::{Mode, System};
//! use hyvec_mediabench::Benchmark;
//!
//! // Build the paper's proposed design for scenario A and run a
//! // SmallBench workload at ULE mode.
//! let arch = Architecture::build(Scenario::A, DesignPoint::Proposal)?;
//! let mut system = System::new(arch.config.clone());
//! let report = system.run(Benchmark::AdpcmC.trace(10_000, 1), Mode::Ule);
//! assert!(report.epi_pj() > 0.0);
//! # Ok::<(), hyvec_sram::failure::SizingError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod architecture;
pub mod experiments;
pub mod methodology;
pub mod registry;
pub mod render;
pub mod report;
pub mod seed;
pub mod sweep;

pub use architecture::{Architecture, DesignPoint, Scenario};
pub use experiments::Experiment;
pub use methodology::{MethodologyInputs, UleWayDesign};
pub use registry::Registry;
pub use render::{Format, Render};
pub use report::{Report, Section, Table};
pub use sweep::SweepBuilder;
