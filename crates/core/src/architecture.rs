//! Scenario and design-point definitions, and the mapping from the
//! methodology outputs to a simulatable system configuration.

use crate::methodology::{design_ule_way, MethodologyInputs, UleWayDesign};
use hyvec_cachesim::config::{SystemConfig, WaySpec};
use hyvec_edc::Protection;
use hyvec_sram::cell::CellKind;
use hyvec_sram::failure::{FailureModel, SizingError};
use std::fmt;

/// The paper's two evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Baseline has no coding: `6T+10T` vs `6T+8T+SECDED`.
    A,
    /// Baseline is SECDED-protected everywhere:
    /// `6T+SECDED+10T+SECDED` vs `6T+SECDED+8T+DECTED`.
    B,
}

impl Scenario {
    /// Both scenarios.
    pub const ALL: [Scenario; 2] = [Scenario::A, Scenario::B];

    /// Protection of the HP (6T) ways in this scenario.
    pub fn hp_way_protection(self) -> Protection {
        match self {
            Scenario::A => Protection::None,
            Scenario::B => Protection::Secded,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::A => f.write_str("A"),
            Scenario::B => f.write_str("B"),
        }
    }
}

/// Baseline (prior-art 10T ULE ways) or the paper's proposal (8T+EDC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// The Maric et al. CF'11 hybrid design with 10T ULE ways.
    Baseline,
    /// The proposed 8T+EDC ULE ways.
    Proposal,
}

impl DesignPoint {
    /// Both design points.
    pub const ALL: [DesignPoint; 2] = [DesignPoint::Baseline, DesignPoint::Proposal];
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignPoint::Baseline => f.write_str("baseline"),
            DesignPoint::Proposal => f.write_str("proposal"),
        }
    }
}

/// A fully sized, simulatable cache architecture.
#[derive(Debug, Clone)]
pub struct Architecture {
    /// The scenario this architecture belongs to.
    pub scenario: Scenario,
    /// Baseline or proposal.
    pub point: DesignPoint,
    /// The sizing-methodology outputs used.
    pub design: UleWayDesign,
    /// The simulator configuration (IL1 + DL1, 7+1 ways, 20-cycle
    /// memory).
    pub config: SystemConfig,
}

impl Architecture {
    /// Builds the architecture for `(scenario, point)` with default
    /// models and the paper's geometry (8KB, 8-way, 7+1, 32B lines).
    ///
    /// # Errors
    ///
    /// Returns [`SizingError`] if the methodology cannot size the
    /// cells (impossible with the default inputs).
    pub fn build(scenario: Scenario, point: DesignPoint) -> Result<Self, SizingError> {
        Architecture::build_with(
            scenario,
            point,
            &FailureModel::default(),
            &MethodologyInputs::default(),
            7,
            1,
            20,
        )
    }

    /// [`Architecture::build`] for the paper's pinned
    /// (scenario, design-point) matrix, where sizing is statically
    /// known to converge — the single documented-infallible entry the
    /// experiment suite uses instead of scattering `expect` calls.
    ///
    /// # Panics
    ///
    /// Panics if the default methodology fails to size the cells,
    /// which the tier-1 tests prove impossible for every
    /// (scenario, point) pair.
    pub fn build_pinned(scenario: Scenario, point: DesignPoint) -> Self {
        Architecture::build(scenario, point)
            // hyvec-lint: allow(no-panic, "the paper's pinned scenario matrix always sizes with default inputs; every tier-1 run exercises all four pairs")
            .expect("default methodology sizes the paper's pinned configurations")
    }

    /// Builds with explicit models, way split (`hp_ways` + `ule_ways`)
    /// and memory latency — used by the ablation experiments.
    ///
    /// # Errors
    ///
    /// Returns [`SizingError`] if the methodology cannot size the
    /// cells at the requested voltages.
    ///
    /// # Panics
    ///
    /// Panics if `hp_ways + ule_ways == 0` or `ule_ways == 0`.
    pub fn build_with(
        scenario: Scenario,
        point: DesignPoint,
        model: &FailureModel,
        inputs: &MethodologyInputs,
        hp_ways: usize,
        ule_ways: usize,
        memory_latency: u32,
    ) -> Result<Self, SizingError> {
        // hyvec-lint: allow(no-panic, "documented precondition: a hybrid cache without ULE ways is a caller bug, not a sizing failure")
        assert!(ule_ways > 0, "hybrid operation requires ULE ways");
        // Way counts change the per-way word counts: recompute the
        // methodology over the actual ULE-way geometry.
        let total_ways = hp_ways + ule_ways;
        let sets = 8 * 1024 / 32 / total_ways as u64;
        let line_words = 32 * 8 / 32;
        let inputs = MethodologyInputs {
            data_words: sets * line_words,
            tag_words: sets,
            ..*inputs
        };
        let design = design_ule_way(scenario, model, &inputs)?;

        let hp_prot = scenario.hp_way_protection();
        let mut ways = vec![WaySpec::hp_way(design.sizing_6t, hp_prot); hp_ways];
        for _ in 0..ule_ways {
            ways.push(match (scenario, point) {
                (Scenario::A, DesignPoint::Baseline) => WaySpec::ule_way(
                    CellKind::Sram10T,
                    design.sizing_10t,
                    Protection::None,
                    Protection::None,
                ),
                (Scenario::A, DesignPoint::Proposal) => WaySpec::ule_way(
                    CellKind::Sram8T,
                    design.sizing_8t,
                    Protection::None,
                    Protection::Secded,
                ),
                (Scenario::B, DesignPoint::Baseline) => WaySpec::ule_way(
                    CellKind::Sram10T,
                    design.sizing_10t,
                    Protection::Secded,
                    Protection::Secded,
                ),
                (Scenario::B, DesignPoint::Proposal) => WaySpec::ule_way(
                    CellKind::Sram8T,
                    design.sizing_8t,
                    Protection::Secded,
                    Protection::Dected,
                ),
            });
        }

        let mut config = SystemConfig::with_ways(ways, memory_latency);
        // Keep the total cache size at 8KB regardless of way split.
        config.il1.size_bytes = 8 * 1024;
        config.dl1.size_bytes = 8 * 1024;
        // The uncore's always-on 10T arrays share the ULE-way sizing
        // in baseline and proposal alike.
        config.uncore_ten_t_sizing = design.sizing_10t;
        config
            .il1
            .validate()
            // hyvec-lint: allow(no-panic, "geometry is generated from paper constants a few lines up; failure is a construction bug, pinned by tier-1 tests")
            .expect("generated IL1 geometry is valid");
        config
            .dl1
            .validate()
            // hyvec-lint: allow(no-panic, "geometry is generated from paper constants a few lines up; failure is a construction bug, pinned by tier-1 tests")
            .expect("generated DL1 geometry is valid");

        Ok(Architecture {
            scenario,
            point,
            design,
            config,
        })
    }

    /// Human-readable composition string, e.g. `"6T+8T+SECDED"`.
    pub fn composition(&self) -> String {
        let hp = match self.scenario.hp_way_protection() {
            Protection::None => "6T".to_string(),
            p => format!("6T+{p}"),
        };
        let ule_way = self
            .config
            .il1
            .ways
            .iter()
            .find(|w| w.ule_enabled)
            // hyvec-lint: allow(no-panic, "the config passed CacheConfig::validate, whose NoUleWay check guarantees an ULE way")
            .expect("ULE way exists");
        let cell = ule_way.cell.kind().short_name();
        let ule = match ule_way.protection_ule {
            Protection::None => cell.to_string(),
            p => format!("{cell}+{p}"),
        };
        format!("{hp} + {ule}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyvec_cachesim::config::Mode;

    #[test]
    fn all_four_architectures_build() {
        for s in Scenario::ALL {
            for p in DesignPoint::ALL {
                let arch = Architecture::build(s, p).expect("build");
                arch.config.il1.validate().expect("built configs are valid");
                assert_eq!(arch.config.il1.ways.len(), 8);
                assert_eq!(arch.config.il1.sets(), 32);
                let ule_ways = arch
                    .config
                    .il1
                    .ways
                    .iter()
                    .filter(|w| w.ule_enabled)
                    .count();
                assert_eq!(ule_ways, 1, "{s}/{p}: 7+1 split");
            }
        }
    }

    #[test]
    fn compositions_match_paper_nomenclature() {
        let name = |s, p| Architecture::build(s, p).unwrap().composition();
        assert_eq!(name(Scenario::A, DesignPoint::Baseline), "6T + 10T");
        assert_eq!(name(Scenario::A, DesignPoint::Proposal), "6T + 8T+SECDED");
        assert_eq!(
            name(Scenario::B, DesignPoint::Baseline),
            "6T+SECDED + 10T+SECDED"
        );
        assert_eq!(
            name(Scenario::B, DesignPoint::Proposal),
            "6T+SECDED + 8T+DECTED"
        );
    }

    #[test]
    fn proposal_ule_way_uses_8t_with_stronger_code_at_ule() {
        let arch = Architecture::build(Scenario::B, DesignPoint::Proposal).unwrap();
        let ule = arch.config.il1.ways.iter().find(|w| w.ule_enabled).unwrap();
        assert_eq!(ule.cell.kind(), CellKind::Sram8T);
        assert_eq!(ule.protection(Mode::Hp), Protection::Secded);
        assert_eq!(ule.protection(Mode::Ule), Protection::Dected);
        assert_eq!(ule.stored_check_bits(), 13);
    }

    #[test]
    fn six_plus_two_variant_builds() {
        let arch = Architecture::build_with(
            Scenario::A,
            DesignPoint::Proposal,
            &FailureModel::default(),
            &MethodologyInputs::default(),
            6,
            2,
            20,
        )
        .unwrap();
        assert_eq!(arch.config.il1.ways.len(), 8);
        assert_eq!(
            arch.config
                .il1
                .ways
                .iter()
                .filter(|w| w.ule_enabled)
                .count(),
            2
        );
        arch.config.il1.validate().expect("built configs are valid");
    }

    #[test]
    fn scenario_display() {
        assert_eq!(Scenario::A.to_string(), "A");
        assert_eq!(DesignPoint::Proposal.to_string(), "proposal");
    }
}
