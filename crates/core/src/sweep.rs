//! Parallel batch experiment runner: the whole evaluation in one call.
//!
//! The paper's evaluation is a matrix — artifact (figure, table,
//! ablation) × scenario — that the seed regenerated one binary at a
//! time. This module enumerates that matrix from the experiment
//! [`Registry`] (every cell is an [`Experiment`] implementation),
//! selects a subset with [`SweepBuilder`], and fans the selected jobs
//! across worker threads with [`par_map`], a dependency-free
//! scoped-thread work queue (the build environment has no registry
//! access, so no rayon). The result is a typed [`Report`] that the
//! [`crate::render`] backends turn into text, JSON, or CSV.
//!
//! # Determinism
//!
//! Each job owns a private RNG seed derived from the sweep's base seed
//! and the job's stable id via [`crate::seed::derive_seed`]. Seeds
//! therefore do not depend on worker count, scheduling order, or the
//! position of a job in the matrix — two sweeps with the same base
//! seed produce byte-identical reports in every output format, and a
//! parallel sweep matches a serial one exactly. This invariant is
//! enforced by the workspace's `tests/determinism.rs`. Wall-clock
//! timings are deliberately kept *outside* the report (in
//! [`SweepOutcome::timings`]) so they can feed perf artifacts without
//! breaking that contract. The same contract is what lets the
//! simulator's fault-free fast path (see
//! `hyvec_cachesim::cache::HybridCache`) speed these jobs up without
//! changing a byte of their sections: `BENCH_sweep.json` tracks the
//! job wall times, and the companion `BENCH_hotpath.json` artifact
//! (written by `hyvec run-all` from `hyvec_bench::hotpath`) tracks
//! the fast-vs-slow dispatch-tier throughput directly.
//!
//! # Example
//!
//! ```
//! use hyvec_core::experiments::ExperimentParams;
//! use hyvec_core::sweep::SweepBuilder;
//!
//! let params = ExperimentParams { instructions: 2_000, seed: 1 };
//! let outcome = SweepBuilder::new()
//!     .params(params)
//!     .artifacts(["fig3"])
//!     .jobs(2)
//!     .run();
//! assert_eq!(outcome.report.sections.len(), 2); // fig3/A, fig3/B
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use crate::architecture::Scenario;
use crate::experiments::{Experiment, ExperimentParams};
use crate::registry::Registry;
use crate::report::{Report, Section, SWEEP_TITLE};
use crate::seed::derive_seed;
use hyvec_cachesim::power::EnergyBreakdown;

// ---------------------------------------------------------------------
// Formatting helpers (legacy; kept for the hyvec_bench public API)
// ---------------------------------------------------------------------

/// Renders one normalized EPI breakdown as a table row.
pub fn breakdown_row(label: &str, b: &EnergyBreakdown) -> String {
    format!(
        "{label:<24} {:>8.3} {:>8.3} {:>8.4} {:>8.3} {:>8.3}",
        b.l1_dynamic_pj,
        b.l1_leakage_pj,
        b.edc_pj,
        b.other_pj,
        b.total_pj()
    )
}

/// The header matching [`breakdown_row`].
pub fn breakdown_header() -> String {
    format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "L1 dyn", "L1 leak", "EDC", "other", "total"
    )
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

// ---------------------------------------------------------------------
// Job matrix
// ---------------------------------------------------------------------

/// A scheduled job: which experiment to run and the private seed it
/// runs with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// Stable experiment id (also the seed-derivation key).
    pub label: String,
    /// Run parameters with the job's derived private seed.
    pub params: ExperimentParams,
}

/// Enumerates the full standard evaluation matrix in canonical report
/// order, with per-job derived seeds.
pub fn full_matrix(params: ExperimentParams) -> Vec<SweepJob> {
    matrix_for(&Registry::standard(), params)
}

/// Enumerates `registry`'s experiments as seeded jobs.
pub fn matrix_for(registry: &Registry, params: ExperimentParams) -> Vec<SweepJob> {
    registry
        .ids()
        .into_iter()
        .map(|id| SweepJob {
            label: id.to_string(),
            params: params.with_seed(derive_seed(params.seed, id)),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Parallel executor
// ---------------------------------------------------------------------

/// Applies `f` to every item on up to `jobs` scoped worker threads,
/// returning results in input order. A panicking worker propagates its
/// panic to the caller when the scope joins.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&items[i]);
                // hyvec-lint: allow(no-panic, "a poisoned slot means a sibling worker already panicked; propagating the abort is the only sound option")
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // hyvec-lint: allow(no-panic, "a poisoned slot means a worker already panicked; propagating the abort is the only sound option")
                .expect("result slot poisoned")
                // hyvec-lint: allow(no-panic, "the scoped threads are joined above, and the work loop fills every index < n exactly once")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------
// Sweep selection and execution
// ---------------------------------------------------------------------

/// Matches `text` against a shell-style glob pattern (`*` = any run of
/// characters, `?` = any single character; everything else literal).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('*') => rec(&p[1..], t) || (!t.is_empty() && rec(p, &t[1..])),
            Some('?') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(&c) => t.first() == Some(&c) && rec(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

/// Wall-clock timing of one executed job (kept outside the report so
/// rendered output stays a pure function of the seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTiming {
    /// The job's experiment id.
    pub label: String,
    /// Wall time of the job, nanoseconds.
    pub wall_nanos: u128,
}

impl JobTiming {
    /// Wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_nanos as f64 / 1e6
    }
}

/// Everything a sweep run produces: the deterministic typed report
/// plus the (non-deterministic) wall-clock timings.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The merged report, sections in canonical order.
    pub report: Report,
    /// Per-job wall time, in the same order as the sections
    /// (canonical registry order, independent of which worker ran
    /// which job).
    pub timings: Vec<JobTiming>,
    /// Elapsed wall time of the whole sweep, nanoseconds. Under
    /// parallel execution this is *less* than the per-job sum; both
    /// figures are recorded explicitly in
    /// [`SweepOutcome::bench_json`].
    pub elapsed_wall_nanos: u128,
}

impl SweepOutcome {
    /// Sum of the per-job wall times, nanoseconds: the total compute
    /// spent, as opposed to the elapsed time the sweep occupied.
    pub fn summed_job_wall_nanos(&self) -> u128 {
        self.timings.iter().map(|t| t.wall_nanos).sum()
    }

    /// Serializes the timings as the `BENCH_sweep.json` perf-trajectory
    /// artifact (hand-rolled JSON; see `crate::render` for escaping).
    ///
    /// Schema v2 records both time axes explicitly:
    /// `elapsed_wall_ms` (start-to-finish, what a user waits for) and
    /// `summed_job_wall_ms` (total compute across workers; under
    /// `--jobs > 1` the two legitimately disagree — v1's single
    /// `total_wall_ms` conflated them). The job array is always in
    /// canonical registry order, regardless of worker interleaving.
    pub fn bench_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-bench-sweep/v2\",\n");
        out.push_str(&format!(
            "  \"instructions\": {},\n",
            self.report.instructions
        ));
        out.push_str(&format!(
            "  \"base_seed\": \"{}\",\n",
            self.report.base_seed
        ));
        out.push_str(&format!(
            "  \"elapsed_wall_ms\": {:.3},\n",
            self.elapsed_wall_nanos as f64 / 1e6
        ));
        out.push_str(&format!(
            "  \"summed_job_wall_ms\": {:.3},\n",
            self.summed_job_wall_nanos() as f64 / 1e6
        ));
        out.push_str("  \"jobs\": [");
        for (i, t) in self.timings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_ms\": {:.3}}}",
                crate::render::escape_json(&t.label),
                t.wall_ms()
            ));
        }
        if self.timings.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Selects and runs a subset of the evaluation matrix.
///
/// All filters intersect: an experiment runs if its artifact passes
/// [`SweepBuilder::artifacts`] (when set), its scenario passes
/// [`SweepBuilder::scenarios`] (when set), and its full id matches at
/// least one [`SweepBuilder::filter`] glob (when any are given).
/// Seeds are derived per experiment id, so a job's section is
/// byte-identical whether it runs in a full sweep or a filtered one.
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    params: ExperimentParams,
    jobs: usize,
    artifacts: Option<Vec<String>>,
    scenarios: Option<Vec<Scenario>>,
    globs: Vec<String>,
    force_slow: bool,
    sim_threads: usize,
}

impl Default for SweepBuilder {
    fn default() -> Self {
        SweepBuilder::new()
    }
}

impl SweepBuilder {
    /// A sweep of everything, with default parameters, on one worker
    /// per core.
    pub fn new() -> SweepBuilder {
        SweepBuilder {
            params: ExperimentParams::default(),
            jobs: default_jobs(),
            artifacts: None,
            scenarios: None,
            globs: Vec::new(),
            force_slow: false,
            sim_threads: 1,
        }
    }

    /// Sets the run parameters (instruction budget + base seed).
    pub fn params(mut self, params: ExperimentParams) -> SweepBuilder {
        self.params = params;
        self
    }

    /// Sets the worker-thread count (values ≥ 1; the executor also
    /// never spawns more workers than jobs).
    pub fn jobs(mut self, jobs: usize) -> SweepBuilder {
        self.jobs = jobs.max(1);
        self
    }

    /// Restricts the sweep to the given artifact families (the part of
    /// the id before `/`, e.g. `"fig3"`, `"ablation-ways"`).
    pub fn artifacts<I, S>(mut self, artifacts: I) -> SweepBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.artifacts = Some(artifacts.into_iter().map(Into::into).collect());
        self
    }

    /// Restricts the sweep to the given scenarios (the part of the id
    /// after `/`).
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> SweepBuilder {
        self.scenarios = Some(scenarios.into_iter().collect());
        self
    }

    /// Adds a glob filter over full experiment ids (e.g.
    /// `"ablation-*"`, `"*/B"`). Multiple filters union.
    pub fn filter(mut self, glob: impl Into<String>) -> SweepBuilder {
        self.globs.push(glob.into());
        self
    }

    /// Routes every cache the sweep's experiments construct through
    /// the full EDC slow path, even while fault-free (the
    /// `--force-slow-path` diagnostic knob). The report is
    /// byte-identical either way — the fast path is a pure
    /// optimization — so this exists to exercise and time the decode
    /// path on the standard matrix.
    pub fn force_slow_path(mut self, force: bool) -> SweepBuilder {
        self.force_slow = force;
        self
    }

    /// Sets the worker-thread count of the epoch-parallel multi-core
    /// engine (the `--sim-threads` CLI knob; values ≥ 1, default 1 =
    /// the serial reference loop). Orthogonal to
    /// [`SweepBuilder::jobs`], which parallelizes *across*
    /// experiments: `sim_threads` parallelizes the cores *within* one
    /// multi-core simulation. The report is byte-identical at every
    /// value — the epoch merge replays the canonical core order — so
    /// this only changes wall time.
    pub fn sim_threads(mut self, threads: usize) -> SweepBuilder {
        self.sim_threads = threads.max(1);
        self
    }

    /// Whether the experiment id passes every configured filter.
    pub fn selects(&self, id: &str) -> bool {
        let (artifact, scenario) = id.split_once('/').unwrap_or((id, ""));
        if let Some(artifacts) = &self.artifacts {
            if !artifacts.iter().any(|a| a == artifact) {
                return false;
            }
        }
        if let Some(scenarios) = &self.scenarios {
            if !scenarios.iter().any(|s| s.to_string() == scenario) {
                return false;
            }
        }
        if !self.globs.is_empty() && !self.globs.iter().any(|g| glob_match(g, id)) {
            return false;
        }
        true
    }

    /// Runs the selected subset of the standard registry.
    pub fn run(&self) -> SweepOutcome {
        self.run_with(&Registry::standard())
    }

    /// Runs the selected subset of `registry` on up to the configured
    /// number of worker threads and returns the merged report plus
    /// per-job timings.
    pub fn run_with(&self, registry: &Registry) -> SweepOutcome {
        // Pin (and afterwards restore) the process-global slow-path
        // default: experiments build their caches internally, so the
        // global is the only route the knob can take to reach them.
        let _slow_pin = self.force_slow.then(ForceSlowPin::engage);
        // Same route for the sim-threads knob: experiments build their
        // multi-core systems internally, so the process-global default
        // is how the setting reaches them.
        let _threads_pin = (self.sim_threads != 1).then(|| SimThreadsPin::engage(self.sim_threads));
        let sweep_start = Instant::now();
        let selected: Vec<(&dyn Experiment, u64)> = registry
            .iter()
            .filter(|e| self.selects(e.id()))
            .map(|e| (e, derive_seed(self.params.seed, e.id())))
            .collect();
        // `par_map` returns results in input order, so the job array
        // (like the report sections) is in canonical registry order no
        // matter how the workers interleaved.
        let results: Vec<(Vec<Section>, JobTiming)> =
            par_map(&selected, self.jobs, |&(experiment, seed)| {
                let start = Instant::now();
                let report = experiment.run(self.params, seed);
                let timing = JobTiming {
                    label: experiment.id().to_string(),
                    wall_nanos: start.elapsed().as_nanos(),
                };
                (report.sections, timing)
            });
        let mut report = Report::new(SWEEP_TITLE, self.params.instructions, self.params.seed);
        let mut timings = Vec::with_capacity(results.len());
        for (sections, timing) in results {
            report.sections.extend(sections);
            timings.push(timing);
        }
        SweepOutcome {
            report,
            timings,
            elapsed_wall_nanos: sweep_start.elapsed().as_nanos(),
        }
    }
}

/// Runs every job of the standard evaluation matrix on up to `jobs`
/// worker threads and returns the assembled report.
pub fn run_all(params: ExperimentParams, jobs: usize) -> Report {
    SweepBuilder::new().params(params).jobs(jobs).run().report
}

/// RAII engagement of the process-global force-slow-path pin: set on
/// construction, restored to the prior value on drop (so a panicking
/// sweep does not leave the process pinned).
struct ForceSlowPin {
    prior: bool,
}

impl ForceSlowPin {
    fn engage() -> ForceSlowPin {
        let prior = hyvec_cachesim::cache::global_force_slow_path();
        hyvec_cachesim::cache::set_global_force_slow_path(true);
        ForceSlowPin { prior }
    }
}

impl Drop for ForceSlowPin {
    fn drop(&mut self) {
        hyvec_cachesim::cache::set_global_force_slow_path(self.prior);
    }
}

/// RAII engagement of the process-global sim-threads default, mirroring
/// [`ForceSlowPin`]: set on construction, restored on drop.
struct SimThreadsPin {
    prior: usize,
}

impl SimThreadsPin {
    fn engage(threads: usize) -> SimThreadsPin {
        let prior = hyvec_cachesim::global_sim_threads();
        hyvec_cachesim::set_global_sim_threads(threads);
        SimThreadsPin { prior }
    }
}

impl Drop for SimThreadsPin {
    fn drop(&mut self) {
        hyvec_cachesim::set_global_sim_threads(self.prior);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_artifact_for_every_scenario() {
        let jobs = full_matrix(ExperimentParams::default());
        assert_eq!(jobs.len(), 26);
        for s in Scenario::ALL {
            for prefix in [
                "methodology",
                "fig3",
                "fig4",
                "performance",
                "area",
                "reliability",
                "ablation-ways",
                "ablation-memlat",
                "ablation-voltage",
                "ablation-l2",
                "ablation-cores",
                "ablation-workloads",
            ] {
                let label = format!("{prefix}/{s}");
                assert!(
                    jobs.iter().any(|j| j.label == label),
                    "matrix is missing {label}"
                );
            }
        }
        assert!(jobs.iter().any(|j| j.label == "soft-errors/B"));
        assert!(jobs.iter().any(|j| j.label == "ablation-granularity/A"));
    }

    #[test]
    fn labels_are_unique_and_seeds_differ() {
        let jobs = full_matrix(ExperimentParams::default());
        let mut labels: Vec<_> = jobs.iter().map(|j| j.label.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), jobs.len(), "duplicate job labels");
        let mut seeds: Vec<_> = jobs.iter().map(|j| j.params.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len(), "derived seeds collide");
    }

    #[test]
    fn glob_matching_covers_the_cli_patterns() {
        assert!(glob_match("*", "fig3/A"));
        assert!(glob_match("fig3/*", "fig3/A"));
        assert!(glob_match("*/B", "fig3/B"));
        assert!(!glob_match("*/B", "fig3/A"));
        assert!(glob_match("ablation-*", "ablation-ways/A"));
        assert!(glob_match("fig?/A", "fig3/A"));
        assert!(!glob_match("fig?/A", "fig34/A"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn builder_filters_intersect() {
        let b = SweepBuilder::new()
            .artifacts(["fig3", "fig4"])
            .scenarios([Scenario::A]);
        assert!(b.selects("fig3/A"));
        assert!(!b.selects("fig3/B"));
        assert!(!b.selects("area/A"));
        let g = SweepBuilder::new().filter("ablation-*").filter("fig3/A");
        assert!(g.selects("fig3/A"));
        assert!(g.selects("ablation-voltage/B"));
        assert!(!g.selects("fig4/A"));
    }

    #[test]
    fn filtered_sections_match_the_full_sweep() {
        let params = ExperimentParams {
            instructions: 2_000,
            seed: 11,
        };
        let full = run_all(params, 2);
        let fig3 = SweepBuilder::new()
            .params(params)
            .jobs(1)
            .artifacts(["fig3"])
            .run();
        assert_eq!(fig3.report.sections.len(), 2);
        for section in &fig3.report.sections {
            let from_full = full
                .sections
                .iter()
                .find(|s| s.label == section.label)
                .expect("full sweep has the section");
            assert_eq!(from_full, section, "filtering changed {}", section.label);
        }
        assert_eq!(fig3.timings.len(), 2);
        assert_eq!(fig3.timings[0].label, fig3.report.sections[0].label);
    }

    #[test]
    fn bench_json_lists_every_job() {
        let outcome = SweepBuilder::new()
            .params(ExperimentParams {
                instructions: 1_000,
                seed: 3,
            })
            .artifacts(["area", "methodology"])
            .jobs(2)
            .run();
        let json = outcome.bench_json();
        assert!(json.contains("\"schema\": \"hyvec-bench-sweep/v2\""));
        assert!(json.contains("\"id\": \"area/A\""));
        assert!(json.contains("\"id\": \"methodology/B\""));
        // Both time axes are explicit: elapsed (what the caller
        // waited) and the per-job sum (total compute).
        assert!(json.contains("\"elapsed_wall_ms\""));
        assert!(json.contains("\"summed_job_wall_ms\""));
        assert!(!json.contains("total_wall_ms"), "v1 field must be gone");
        assert!(outcome.elapsed_wall_nanos > 0);
        assert_eq!(
            outcome.summed_job_wall_nanos(),
            outcome.timings.iter().map(|t| t.wall_nanos).sum::<u128>()
        );
    }

    #[test]
    fn bench_json_job_order_is_canonical_under_any_worker_count() {
        let params = ExperimentParams {
            instructions: 1_000,
            seed: 5,
        };
        let labels = |jobs: usize| {
            SweepBuilder::new()
                .params(params)
                .artifacts(["methodology", "area", "fig3"])
                .jobs(jobs)
                .run()
                .timings
                .iter()
                .map(|t| t.label.clone())
                .collect::<Vec<_>>()
        };
        let serial = labels(1);
        for jobs in [2, 8] {
            assert_eq!(
                serial,
                labels(jobs),
                "worker count {jobs} reordered the job array"
            );
        }
        // And the order matches the report sections themselves.
        let outcome = SweepBuilder::new()
            .params(params)
            .artifacts(["methodology", "area", "fig3"])
            .jobs(4)
            .run();
        let sections: Vec<_> = outcome
            .report
            .sections
            .iter()
            .map(|s| s.label.clone())
            .collect();
        assert_eq!(serial, sections);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate worker counts.
        assert_eq!(par_map(&items, 1, |&x| x + 1)[96], 97);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        par_map(&items, 6, |&i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} ran a wrong number of times"
            );
        }
    }
}
