//! Parallel batch experiment runner: the whole evaluation in one call.
//!
//! The paper's evaluation is a matrix — artifact (figure, table,
//! ablation) × scenario — that the seed regenerated one binary at a
//! time. This module enumerates that matrix as independent [`SweepJob`]s
//! and fans them across worker threads with [`par_map`], a dependency-
//! free scoped-thread work queue (the build environment has no registry
//! access, so no rayon).
//!
//! # Determinism
//!
//! Each job owns a private RNG seed derived from the sweep's base seed
//! and the job's stable label via SplitMix64 ([`derive_seed`]). Seeds
//! therefore do not depend on worker count, scheduling order, or the
//! position of a job in the matrix — two sweeps with the same base
//! seed produce byte-identical reports, and a parallel sweep matches a
//! serial one exactly. This invariant is enforced by the workspace's
//! `tests/determinism.rs`.
//!
//! # Example
//!
//! ```
//! use hyvec_core::experiments::ExperimentParams;
//! use hyvec_core::sweep::run_all;
//!
//! let params = ExperimentParams { instructions: 2_000, seed: 1 };
//! let serial = run_all(params, 1);
//! let parallel = run_all(params, 4);
//! assert_eq!(serial.render(), parallel.render());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::architecture::Scenario;
use crate::experiments::{
    ablation_granularity, ablation_memory_latency, ablation_voltage, ablation_ways,
    area_comparison, fig3_hp_epi, fig4_ule_epi, reliability, soft_error_study, ule_performance,
    ExperimentParams,
};
use crate::methodology::{design_ule_way, MethodologyInputs};
use hyvec_cachesim::power::EnergyBreakdown;
use hyvec_sram::failure::FailureModel;

/// Monte-Carlo dies sampled by the reliability jobs (the standalone
/// `table_reliability` binary samples 200 for a tighter estimate).
const RELIABILITY_DIES: u32 = 100;

/// Accelerated soft-error rate used by the soft-error job (matches the
/// standalone `table_soft_errors` binary).
const SOFT_ERROR_RATE: f64 = 3e-8;

// ---------------------------------------------------------------------
// Formatting helpers (shared with the hyvec_bench render layer)
// ---------------------------------------------------------------------

/// Renders one normalized EPI breakdown as a table row.
pub fn breakdown_row(label: &str, b: &EnergyBreakdown) -> String {
    format!(
        "{label:<24} {:>8.3} {:>8.3} {:>8.4} {:>8.3} {:>8.3}",
        b.l1_dynamic_pj,
        b.l1_leakage_pj,
        b.edc_pj,
        b.other_pj,
        b.total_pj()
    )
}

/// The header matching [`breakdown_row`].
pub fn breakdown_header() -> String {
    format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "L1 dyn", "L1 leak", "EDC", "other", "total"
    )
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

// ---------------------------------------------------------------------
// Job matrix
// ---------------------------------------------------------------------

/// One independent unit of the evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Sec. III-C sizing/yield methodology for one scenario.
    Methodology(Scenario),
    /// Figure 3: HP-mode EPI for one scenario.
    Fig3(Scenario),
    /// Figure 4: ULE-mode EPI breakdowns for one scenario.
    Fig4(Scenario),
    /// Sec. IV-B.2 execution-time overhead for one scenario.
    Performance(Scenario),
    /// L1 area comparison for one scenario.
    Area(Scenario),
    /// Yields + fault injection for one scenario.
    Reliability(Scenario),
    /// Hard faults + soft errors, DECTED vs SECDED (scenario B).
    SoftErrors,
    /// 7+1 vs 6+2 way split for one scenario.
    AblationWays(Scenario),
    /// Memory-latency sweep for one scenario.
    AblationMemoryLatency(Scenario),
    /// ULE-voltage sweep for one scenario.
    AblationVoltage(Scenario),
    /// Protection-granularity analysis (scenario A).
    AblationGranularity,
}

/// A scheduled job: what to run and the private seed it runs with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// The unit of work.
    pub kind: JobKind,
    /// Stable human-readable identifier (also the seed-derivation key).
    pub label: String,
    /// Run parameters with the job's derived private seed.
    pub params: ExperimentParams,
}

impl JobKind {
    /// Stable label of this job; doubles as its seed-derivation key,
    /// so renaming a job (and nothing else) is the only way to change
    /// its RNG stream.
    pub fn label(self) -> String {
        match self {
            JobKind::Methodology(s) => format!("methodology/{s}"),
            JobKind::Fig3(s) => format!("fig3/{s}"),
            JobKind::Fig4(s) => format!("fig4/{s}"),
            JobKind::Performance(s) => format!("performance/{s}"),
            JobKind::Area(s) => format!("area/{s}"),
            JobKind::Reliability(s) => format!("reliability/{s}"),
            JobKind::SoftErrors => "soft-errors/B".to_string(),
            JobKind::AblationWays(s) => format!("ablation-ways/{s}"),
            JobKind::AblationMemoryLatency(s) => format!("ablation-memlat/{s}"),
            JobKind::AblationVoltage(s) => format!("ablation-voltage/{s}"),
            JobKind::AblationGranularity => "ablation-granularity/A".to_string(),
        }
    }
}

/// Enumerates the full evaluation matrix in canonical report order.
pub fn full_matrix(params: ExperimentParams) -> Vec<SweepJob> {
    let mut kinds = Vec::new();
    for s in Scenario::ALL {
        kinds.push(JobKind::Methodology(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::Fig3(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::Fig4(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::Performance(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::Area(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::Reliability(s));
    }
    kinds.push(JobKind::SoftErrors);
    for s in Scenario::ALL {
        kinds.push(JobKind::AblationWays(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::AblationMemoryLatency(s));
    }
    for s in Scenario::ALL {
        kinds.push(JobKind::AblationVoltage(s));
    }
    kinds.push(JobKind::AblationGranularity);

    kinds
        .into_iter()
        .map(|kind| {
            let label = kind.label();
            let seed = derive_seed(params.seed, &label);
            SweepJob {
                kind,
                label,
                params: ExperimentParams {
                    instructions: params.instructions,
                    seed,
                },
            }
        })
        .collect()
}

/// Derives a job's private seed from the sweep base seed and the job's
/// stable label: FNV-1a over the label, then a SplitMix64 finalizer so
/// related base seeds still give unrelated streams.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = base ^ h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Parallel executor
// ---------------------------------------------------------------------

/// Applies `f` to every item on up to `jobs` scoped worker threads,
/// returning results in input order. A panicking worker propagates its
/// panic to the caller when the scope joins.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------
// Job execution and report rendering
// ---------------------------------------------------------------------

/// One rendered section of the sweep report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSection {
    /// The job's stable label.
    pub label: String,
    /// The seed the job ran with.
    pub seed: u64,
    /// Rendered body.
    pub body: String,
}

/// The full rendered evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Base parameters of the sweep (the seed is the *base* seed).
    pub params: ExperimentParams,
    /// Sections in canonical matrix order.
    pub sections: Vec<SweepSection>,
}

impl SweepReport {
    /// Renders the whole report as one deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "hyvec evaluation sweep: {} jobs, {} instructions/benchmark, base seed {}\n\n",
            self.sections.len(),
            self.params.instructions,
            self.params.seed
        ));
        for section in &self.sections {
            out.push_str(&format!(
                "== {} (seed {:#018x}) ==\n",
                section.label, section.seed
            ));
            out.push_str(&section.body);
            out.push('\n');
        }
        out
    }
}

/// Runs every job of the evaluation matrix on up to `jobs` worker
/// threads and returns the assembled report.
pub fn run_all(params: ExperimentParams, jobs: usize) -> SweepReport {
    run_filtered(params, jobs, |_| true)
}

/// Runs the subset of the evaluation matrix selected by `select`, in
/// canonical order, on up to `jobs` worker threads. Seeds are derived
/// per job label, so a job's result is identical whether it runs in a
/// full sweep or a filtered one.
pub fn run_filtered(
    params: ExperimentParams,
    jobs: usize,
    select: impl Fn(JobKind) -> bool,
) -> SweepReport {
    let matrix: Vec<SweepJob> = full_matrix(params)
        .into_iter()
        .filter(|job| select(job.kind))
        .collect();
    let sections = par_map(&matrix, jobs, |job| SweepSection {
        label: job.label.clone(),
        seed: job.params.seed,
        body: run_job(job),
    });
    SweepReport { params, sections }
}

/// Executes one job and renders its section body.
pub fn run_job(job: &SweepJob) -> String {
    let p = job.params;
    match job.kind {
        JobKind::Methodology(s) => {
            let d = design_ule_way(s, &FailureModel::default(), &MethodologyInputs::default())
                .expect("default methodology converges");
            format!(
                "Pf target {:.3e}; sizings: 6T x{:.2}, 10T x{:.2}, 8T x{:.2}\n\
                 yield {:.6} (baseline) -> {:.6} (proposal), {} sizing iterations\n",
                d.pf_target,
                d.sizing_6t,
                d.sizing_10t,
                d.sizing_8t,
                d.yield_baseline,
                d.yield_proposal,
                d.iterations
            )
        }
        JobKind::Fig3(s) => {
            let r = fig3_hp_epi(s, p);
            let mut out = format!("{}\n", breakdown_header());
            out.push_str(&format!("{}\n", breakdown_row("baseline", &r.baseline)));
            out.push_str(&format!("{}\n", breakdown_row("proposal", &r.proposal)));
            out.push_str(&format!(
                "HP EPI saving: {} (paper: ~14% A / ~12% B)\n",
                pct(r.saving)
            ));
            out
        }
        JobKind::Fig4(s) => {
            let r = fig4_ule_epi(s, p);
            let mut out = String::new();
            for row in &r.rows {
                out.push_str(&format!(
                    "{:<10} saving {}\n",
                    row.benchmark.to_string(),
                    pct(row.saving)
                ));
            }
            out.push_str(&format!(
                "average ULE saving: {} (paper: ~42% A / ~39% B)\n",
                pct(r.avg_saving)
            ));
            out
        }
        JobKind::Performance(s) => {
            let rows = ule_performance(s, p);
            let avg = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
            let mut out = String::new();
            for r in &rows {
                out.push_str(&format!(
                    "{:<10} {:>10} -> {:>10} cycles ({})\n",
                    r.benchmark.to_string(),
                    r.baseline_cycles,
                    r.proposal_cycles,
                    pct(r.overhead)
                ));
            }
            out.push_str(&format!("average overhead: {} (paper: ~3%)\n", pct(avg)));
            out
        }
        JobKind::Area(s) => {
            let r = area_comparison(s);
            format!(
                "L1 (IL1+DL1): {:.0} -> {:.0} um2 (saving {})\n\
                 ULE way alone: {:.0} -> {:.0} um2\n",
                r.baseline_um2,
                r.proposal_um2,
                pct(r.saving),
                r.ule_way_baseline_um2,
                r.ule_way_proposal_um2
            )
        }
        JobKind::Reliability(s) => {
            let r = reliability(s, RELIABILITY_DIES, p);
            format!(
                "analytic yield: {:.6} (baseline) / {:.6} (proposal); MC over {} dies: {:.3}\n\
                 fault injection: corrected {}, silent {} (must be 0), strawman silent {}\n",
                r.analytic_baseline,
                r.analytic_proposal,
                r.dies,
                r.mc_proposal,
                r.proposal_corrected,
                r.proposal_silent,
                r.strawman_silent
            )
        }
        JobKind::SoftErrors => {
            let r = soft_error_study(p, SOFT_ERROR_RATE);
            format!(
                "SECDED: corrected {}, uncorrectable {}\n\
                 DECTED: corrected {}, uncorrectable {}\n\
                 silent under either: {} (must be 0)\n",
                r.secded_corrected,
                r.secded_detected,
                r.dected_corrected,
                r.dected_detected,
                r.silent
            )
        }
        JobKind::AblationWays(s) => {
            let mut out = String::new();
            for r in ablation_ways(s, p) {
                out.push_str(&format!(
                    "{}+{}: HP {}, ULE {}\n",
                    r.hp_ways,
                    r.ule_ways,
                    pct(r.hp_saving),
                    pct(r.ule_saving)
                ));
            }
            out
        }
        JobKind::AblationMemoryLatency(s) => {
            let mut out = String::new();
            for r in ablation_memory_latency(s, p) {
                out.push_str(&format!(
                    "{:>3} cycles: HP {}\n",
                    r.latency,
                    pct(r.hp_saving)
                ));
            }
            out
        }
        JobKind::AblationVoltage(s) => {
            let mut out = String::new();
            for r in ablation_voltage(s, p) {
                out.push_str(&format!(
                    "{:.0} mV: 10T x{:.2}, 8T x{:.2}, ULE saving {}\n",
                    r.ule_vdd * 1000.0,
                    r.sizing_10t,
                    r.sizing_8t,
                    pct(r.ule_saving)
                ));
            }
            out
        }
        JobKind::AblationGranularity => {
            let mut out = String::new();
            for r in ablation_granularity() {
                out.push_str(&format!(
                    "{:>2}-bit words: overhead {}, 8T x{:.2}, bits x{:.3}\n",
                    r.word_bits,
                    pct(r.storage_overhead),
                    r.sizing_8t,
                    r.relative_bits
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_artifact_for_every_scenario() {
        let jobs = full_matrix(ExperimentParams::default());
        assert_eq!(jobs.len(), 20);
        for s in Scenario::ALL {
            for prefix in [
                "methodology",
                "fig3",
                "fig4",
                "performance",
                "area",
                "reliability",
                "ablation-ways",
                "ablation-memlat",
                "ablation-voltage",
            ] {
                let label = format!("{prefix}/{s}");
                assert!(
                    jobs.iter().any(|j| j.label == label),
                    "matrix is missing {label}"
                );
            }
        }
        assert!(jobs.iter().any(|j| j.label == "soft-errors/B"));
        assert!(jobs.iter().any(|j| j.label == "ablation-granularity/A"));
    }

    #[test]
    fn labels_are_unique_and_seeds_differ() {
        let jobs = full_matrix(ExperimentParams::default());
        let mut labels: Vec<_> = jobs.iter().map(|j| j.label.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), jobs.len(), "duplicate job labels");
        let mut seeds: Vec<_> = jobs.iter().map(|j| j.params.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len(), "derived seeds collide");
    }

    #[test]
    fn derived_seeds_are_stable_and_keyed_on_base_and_label() {
        assert_eq!(derive_seed(1, "fig3/A"), derive_seed(1, "fig3/A"));
        assert_ne!(derive_seed(1, "fig3/A"), derive_seed(2, "fig3/A"));
        assert_ne!(derive_seed(1, "fig3/A"), derive_seed(1, "fig3/B"));
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate worker counts.
        assert_eq!(par_map(&items, 1, |&x| x + 1)[96], 97);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        par_map(&items, 6, |&i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} ran a wrong number of times"
            );
        }
    }
}
