//! Developer probe: raw per-design-point EPI breakdowns used while
//! calibrating the technology constants. Not part of the documented
//! experiment set (see `hyvec-bench` for those).

use hyvec_cachesim::config::Mode;
use hyvec_cachesim::engine::System;
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_core::experiments::*;
use hyvec_mediabench::Benchmark;

fn main() {
    let p = ExperimentParams {
        instructions: 30_000,
        seed: 7,
    };
    for s in [Scenario::A, Scenario::B] {
        for point in [DesignPoint::Baseline, DesignPoint::Proposal] {
            let arch = Architecture::build(s, point).unwrap();
            println!(
                "--- {s}/{point}: {} (6T s={:.2} 10T s={:.2} 8T s={:.2} pf8={:.2e})",
                arch.composition(),
                arch.design.sizing_6t,
                arch.design.sizing_10t,
                arch.design.sizing_8t,
                arch.design.pf_8t
            );
            let mut sys = System::new(arch.config.clone());
            let hp = sys.run(Benchmark::GsmC.trace(p.instructions, p.seed), Mode::Hp);
            let ule = sys.run(Benchmark::AdpcmC.trace(p.instructions, p.seed), Mode::Ule);
            let n = p.instructions as f64;
            println!(
                "  HP : dyn={:.3} leak={:.3} edc={:.4} other={:.3} EPI={:.3} CPI={:.3}",
                hp.energy.l1_dynamic_pj / n,
                hp.energy.l1_leakage_pj / n,
                hp.energy.edc_pj / n,
                hp.energy.other_pj / n,
                hp.epi_pj(),
                hp.stats.cpi()
            );
            println!(
                "  ULE: dyn={:.4} leak={:.4} edc={:.4} other={:.4} EPI={:.4} CPI={:.3}",
                ule.energy.l1_dynamic_pj / n,
                ule.energy.l1_leakage_pj / n,
                ule.energy.edc_pj / n,
                ule.energy.other_pj / n,
                ule.epi_pj(),
                ule.stats.cpi()
            );
        }
    }
}
