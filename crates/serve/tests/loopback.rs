//! Loopback integration tests: a real daemon on an ephemeral port,
//! exercised through real sockets.
//!
//! The three properties the serve subsystem promises are all pinned
//! here: a served body is byte-identical to the CLI renderer's output
//! for the same parameters, repeated requests are answered from the
//! content-addressed cache, and concurrent identical requests compute
//! once (single-flight).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::registry::Registry;
use hyvec_core::render::{render, Format};
use hyvec_core::sweep::SweepBuilder;
use hyvec_serve::{ServeConfig, SweepServer};

/// Keeps the sweeps fast; every request in this file pins it
/// explicitly so the bytes are comparable across tests.
const INSTRUCTIONS: u64 = 2_000;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        read_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    }
}

/// Binds an ephemeral-port daemon and runs it on a background thread.
fn start(config: ServeConfig) -> (SweepServer, thread::JoinHandle<()>) {
    let server = SweepServer::bind(config).expect("bind 127.0.0.1:0");
    let runner = server.clone();
    let handle = thread::spawn(move || runner.run());
    (server, handle)
}

/// One `Connection: close` request; returns (status, head, body).
fn request(server: &SweepServer, method: &str, target: &str) -> (u16, String, Vec<u8>) {
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(
        format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
            .as_bytes(),
    )
    .expect("send");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("recv");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8(raw[..header_end].to_vec()).expect("ascii head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, raw[header_end + 4..].to_vec())
}

fn get(server: &SweepServer, target: &str) -> (u16, String, Vec<u8>) {
    request(server, "GET", target)
}

/// Like [`request`], but GET with extra request headers.
fn get_with_headers(
    server: &SweepServer,
    target: &str,
    extra: &[(&str, &str)],
) -> (u16, String, Vec<u8>) {
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut wire = format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in extra {
        wire.push_str(&format!("{name}: {value}\r\n"));
    }
    wire.push_str("\r\n");
    conn.write_all(wire.as_bytes()).expect("send");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("recv");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8(raw[..header_end].to_vec()).expect("ascii head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, raw[header_end + 4..].to_vec())
}

/// The value of the (case-sensitive, as-written) header in a head.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines()
        .find_map(|line| line.strip_prefix(&format!("{name}: ")))
        .map(str::to_string)
}

/// Pulls one integer counter out of the `/stats` JSON by key.
fn stat(stats_body: &[u8], key: &str) -> u64 {
    let text = String::from_utf8_lossy(stats_body);
    let needle = format!("\"{key}\": ");
    let at = text.find(&needle).unwrap_or_else(|| {
        panic!("counter {key:?} missing from stats:\n{text}");
    });
    text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// What the CLI renderer emits for the same (id, params, format).
fn cli_bytes(id: &str, params: ExperimentParams, format: Format) -> Vec<u8> {
    let outcome = SweepBuilder::new().params(params).jobs(1).filter(id).run();
    render(&outcome.report, format).into_bytes()
}

#[test]
fn served_reports_are_byte_identical_to_the_cli_renderer() {
    let (server, handle) = start(test_config());
    let params = ExperimentParams {
        instructions: INSTRUCTIONS,
        seed: 7,
    };
    for (format, format_name, content_type) in [
        (Format::Text, "text", "text/plain; charset=utf-8"),
        (Format::Json, "json", "application/json"),
        (Format::Csv, "csv", "text/csv; charset=utf-8"),
    ] {
        let target =
            format!("/report/fig3/A?seed=7&instructions={INSTRUCTIONS}&format={format_name}");
        let (status, head, body) = get(&server, &target);
        assert_eq!(status, 200, "{target}: {head}");
        assert!(
            head.contains(&format!("Content-Type: {content_type}")),
            "{target} content type:\n{head}"
        );
        assert_eq!(
            body,
            cli_bytes("fig3/A", params, format),
            "{target}: served bytes differ from the CLI renderer"
        );
    }
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn repeat_request_is_answered_from_the_cache() {
    let (server, handle) = start(test_config());
    let target = format!("/report/fig4/A?instructions={INSTRUCTIONS}&format=json");
    let (status, _, first) = get(&server, &target);
    assert_eq!(status, 200);
    let (status, _, second) = get(&server, &target);
    assert_eq!(status, 200);
    assert_eq!(first, second);

    let (status, _, stats) = get(&server, "/stats");
    assert_eq!(status, 200);
    assert_eq!(stat(&stats, "misses"), 1, "first request computes");
    assert_eq!(stat(&stats, "hits"), 1, "second request hits the cache");
    assert_eq!(stat(&stats, "entries"), 1);
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn concurrent_identical_requests_compute_once() {
    let (server, handle) = start(test_config());
    let target = format!("/report/area/A?instructions={INSTRUCTIONS}&format=text");
    let bodies: Vec<Vec<u8>> = thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let server = &server;
                let target = target.as_str();
                scope.spawn(move || {
                    let (status, _, body) = get(server, target);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client joins"))
            .collect()
    });
    assert!(bodies.windows(2).all(|pair| pair[0] == pair[1]));

    let (_, _, stats) = get(&server, "/stats");
    assert_eq!(
        stat(&stats, "misses"),
        1,
        "identical in-flight requests must coalesce onto one compute"
    );
    assert_eq!(stat(&stats, "hits") + stat(&stats, "coalesced"), 7);
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn experiments_endpoint_matches_the_registry_index() {
    let (server, handle) = start(test_config());
    let (status, head, body) = get(&server, "/experiments");
    assert_eq!(status, 200);
    assert!(head.contains("Content-Type: application/json"));
    assert_eq!(
        String::from_utf8(body).expect("utf-8 index"),
        Registry::standard().index_json(),
        "/experiments must serve the `hyvec list --format json` document verbatim"
    );
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn healthz_answers_ok() {
    let (server, handle) = start(test_config());
    let (status, _, body) = get(&server, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn errors_are_clean_http_responses() {
    let (server, handle) = start(test_config());

    // Unknown experiment id: 404 with a body naming the id.
    let (status, _, body) = get(&server, "/report/nonesuch/Z?format=text");
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("nonesuch/Z"));

    // Unknown path: 404.
    let (status, _, _) = get(&server, "/nope");
    assert_eq!(status, 404);

    // Bad query values and unknown parameters: 400.
    for target in [
        "/report/fig3/A?seed=banana",
        "/report/fig3/A?format=yaml",
        "/report/fig3/A?surprise=1",
    ] {
        let (status, _, _) = get(&server, target);
        assert_eq!(status, 400, "{target}");
    }

    // Wrong method on a GET route: 405 naming the allowed method.
    let (status, head, _) = request(&server, "POST", "/report/fig3/A");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: GET"), "405 must carry Allow:\n{head}");

    // A malformed request line: 400, connection closed.
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"definitely not http\r\n\r\n")
        .expect("send");
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).expect("recv");
    assert!(
        raw.starts_with(b"HTTP/1.1 400 "),
        "garbage gets a 400: {:?}",
        String::from_utf8_lossy(&raw)
    );

    // None of that perturbed the success counters.
    let (_, _, stats) = get(&server, "/stats");
    assert_eq!(stat(&stats, "status_404"), 2);
    assert_eq!(stat(&stats, "status_400"), 4);
    assert_eq!(stat(&stats, "status_405"), 1);
    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn conditional_requests_honor_the_report_etag() {
    let (server, handle) = start(test_config());
    let target = format!("/report/fig3/A?instructions={INSTRUCTIONS}&format=text");

    // First GET: a 200 carrying a strong, quoted ETag.
    let (status, head, body) = get(&server, &target);
    assert_eq!(status, 200, "{head}");
    let etag = header_value(&head, "ETag").expect("200 must carry an ETag");
    assert!(
        etag.starts_with('"') && etag.ends_with('"'),
        "ETag must be quoted: {etag}"
    );
    assert!(!body.is_empty());

    // Revalidation with the matching ETag: 304, no body, same ETag —
    // and it short-circuits before the cache, so no hit is recorded.
    let (status, head, body) = get_with_headers(&server, &target, &[("If-None-Match", &etag)]);
    assert_eq!(status, 304, "{head}");
    assert!(body.is_empty(), "a 304 must not carry a body");
    assert_eq!(header_value(&head, "ETag").as_ref(), Some(&etag));
    let (_, _, stats) = get(&server, "/stats");
    assert_eq!(stat(&stats, "hits"), 0, "a 304 bypasses the cache");

    // A stale validator gets the full 200 again.
    let (status, _, body) =
        get_with_headers(&server, &target, &[("If-None-Match", "\"0000-stale\"")]);
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    // `If-None-Match: *` matches any representation.
    let (status, _, body) = get_with_headers(&server, &target, &[("If-None-Match", "*")]);
    assert_eq!(status, 304);
    assert!(body.is_empty());

    // A different render format is a different representation: the
    // text validator must not suppress the JSON body, and the JSON
    // response advertises its own distinct ETag.
    let json_target = format!("/report/fig3/A?instructions={INSTRUCTIONS}&format=json");
    let (status, head, body) = get_with_headers(&server, &json_target, &[("If-None-Match", &etag)]);
    assert_eq!(status, 200, "{head}");
    assert!(!body.is_empty());
    let json_etag = header_value(&head, "ETag").expect("json 200 must carry an ETag");
    assert_ne!(json_etag, etag);

    server.stop();
    handle.join().expect("runner joins");
}

#[test]
fn a_restarted_daemon_serves_identical_bytes() {
    let target = format!("/report/reliability/A?instructions={INSTRUCTIONS}&format=csv");
    let mut bodies = Vec::new();
    for _ in 0..2 {
        let (server, handle) = start(test_config());
        let (status, _, body) = get(&server, &target);
        assert_eq!(status, 200);
        bodies.push(body);
        server.stop();
        handle.join().expect("runner joins");
    }
    assert_eq!(
        bodies[0], bodies[1],
        "reports are pure functions of (artifact, scenario, seed, config); \
         a restart must not change a byte"
    );
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let (server, handle) = start(test_config());
    let (status, _, body) = request(&server, "POST", "/shutdown");
    assert_eq!(status, 200);
    assert_eq!(body, b"shutting down\n");
    // The run() thread must come home on its own — no stop() here.
    handle.join().expect("daemon exits after POST /shutdown");

    // GET /shutdown must not kill the server; only POST does.
    let (server, handle) = start(test_config());
    let (status, head, _) = get(&server, "/shutdown");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"));
    let (status, _, _) = get(&server, "/healthz");
    assert_eq!(status, 200, "GET /shutdown left the daemon running");
    server.stop();
    handle.join().expect("runner joins");
}
