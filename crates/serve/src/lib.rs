//! # hyvec-serve — the HTTP sweep service
//!
//! Turns the batch CLI into a long-running daemon: a hand-rolled
//! HTTP/1.1 server over [`std::net::TcpListener`] (the build
//! environment is offline — same zero-dependency discipline as the
//! hand-rolled JSON/CSV renderers in `hyvec_core::render`) that
//! serves any registered experiment on demand in any render format,
//! backed by a content-addressed result cache.
//!
//! Every report is a pure function of (artifact, scenario, seed,
//! instructions, config), so a response is infinitely cacheable under
//! a stable fingerprint of those inputs and `run-all` becomes a
//! cache-warming pass (`--warm`). Concurrent identical requests
//! compute once (single-flight); the cache is byte-size-bounded with
//! LRU eviction; and a served body is byte-identical to the CLI
//! renderer's output for the same parameters — the loopback tests pin
//! all three properties.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /experiments` | machine-readable registry index (identical bytes to `hyvec list --format json`) |
//! | `GET /report/<artifact>/<scenario>?seed=&instructions=&format=` | one experiment's report, `text`/`json`/`csv` |
//! | `GET /healthz` | liveness probe |
//! | `GET /stats` | request/response/cache counters + uptime |
//! | `POST /shutdown` | graceful stop |
//!
//! Module map: [`http`] owns the wire format, [`cache`] the
//! content-addressed single-flight LRU store, [`stats`] the counters,
//! [`server`] the sockets, worker pool, and router.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod server;
pub mod stats;

pub use cache::{report_fingerprint, RenderSet, ResultCache, CONFIG_REVISION};
pub use server::{ServeConfig, ServeError, SweepServer, SERVE_USAGE};
