//! The `hyvec serve` daemon: socket handling, the worker pool, the
//! router, and the cache-warming pass.
//!
//! This module is the one place in the serve crate that touches the
//! wall clock (the `/stats` uptime instant and socket read timeouts),
//! and it carries a module-level `determinism` allow in `lint.toml`
//! for exactly that; the cache, HTTP, and stats modules stay fully
//! lint-strict. Nothing here feeds the clock into a report: response
//! bodies remain a pure function of (experiment id, seed,
//! instructions, config), which is what makes them cacheable at all.
//!
//! # Request pipeline
//!
//! The accept loop pushes connections onto a condvar-guarded queue
//! drained by a fixed pool of scoped worker threads (the same
//! hand-rolled discipline as `hyvec_core::sweep::par_map`, shaped for
//! an endless stream instead of a finite batch). Each worker speaks
//! keep-alive HTTP/1.1 via [`crate::http`] and answers from the
//! shared [`ResultCache`]; a report miss runs the *identical*
//! [`SweepBuilder`] pipeline the CLI uses, so a served body is
//! byte-for-byte the CLI renderer's output for the same parameters.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::registry::Registry;
use hyvec_core::render::{render, Format};
use hyvec_core::sweep::{default_jobs, par_map, SweepBuilder};

use crate::cache::{report_fingerprint, RenderSet, ResultCache};
use crate::http::{read_request, Request, RequestError, Response};
use crate::stats::{ServerCounters, StatsSnapshot};

/// The serve flag summary, shared by usage strings.
pub const SERVE_USAGE: &str =
    "[--addr HOST:PORT] [--threads N] [--warm] [--instructions N] [--seed S] [--cache-mb N]";

/// Configuration of one daemon instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address (`HOST:PORT`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads; defaults to the core count.
    pub threads: usize,
    /// Whether to run the full registry matrix into the cache before
    /// accepting traffic.
    pub warm: bool,
    /// The parameters the warm pass (and nothing else) runs with;
    /// requests always carry their own.
    pub warm_params: ExperimentParams,
    /// Byte budget of the result cache.
    pub max_cache_bytes: usize,
    /// Per-read socket timeout; an idle keep-alive connection is
    /// closed after this long.
    pub read_timeout: Duration,
    /// Most requests served on one keep-alive connection.
    pub max_requests_per_connection: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8013".to_string(),
            threads: default_jobs(),
            warm: false,
            warm_params: ExperimentParams::default(),
            max_cache_bytes: 64 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_requests_per_connection: 1000,
        }
    }
}

impl ServeConfig {
    /// Parses the `hyvec serve` flags (everything after the
    /// subcommand).
    pub fn from_args(args: impl Iterator<Item = String>) -> Result<ServeConfig, String> {
        let mut args = args.peekable();
        let mut config = ServeConfig::default();
        while let Some(flag) = args.next() {
            if flag == "--warm" {
                config.warm = true;
                continue;
            }
            let value = args
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            match flag.as_str() {
                "--addr" => config.addr = value,
                "--threads" => {
                    config.threads = value.parse().map_err(|e| format!("bad --threads: {e}"))?;
                    if config.threads == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                }
                "--instructions" | "-n" => {
                    config.warm_params.instructions = value
                        .parse()
                        .map_err(|e| format!("bad --instructions: {e}"))?;
                }
                "--seed" | "-s" => {
                    config.warm_params.seed =
                        value.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--cache-mb" => {
                    let mb: usize = value.parse().map_err(|e| format!("bad --cache-mb: {e}"))?;
                    if mb == 0 {
                        return Err("--cache-mb must be at least 1".to_string());
                    }
                    config.max_cache_bytes = mb * 1024 * 1024;
                }
                other => return Err(format!("unknown serve flag {other}")),
            }
        }
        Ok(config)
    }
}

/// Why the daemon could not start or run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind(String, std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(addr, e) => write!(f, "could not bind {addr}: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[derive(Debug, Default)]
struct ConnQueue {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

#[derive(Debug)]
struct ServerState {
    config: ServeConfig,
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Registry,
    index_json: String,
    cache: ResultCache,
    counters: ServerCounters,
    started: Instant,
    stop: AtomicBool,
    queue: Mutex<ConnQueue>,
    ready: Condvar,
}

/// A running (or ready-to-run) sweep service. Cloning yields another
/// handle onto the same instance, so tests and signal paths can call
/// [`SweepServer::stop`] from other threads while [`SweepServer::run`]
/// blocks.
#[derive(Debug, Clone)]
pub struct SweepServer {
    state: Arc<ServerState>,
}

impl SweepServer {
    /// Binds the listen address and prepares the service (registry,
    /// cache, counters). No connection is accepted until
    /// [`SweepServer::run`].
    pub fn bind(config: ServeConfig) -> Result<SweepServer, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind(config.addr.clone(), e))?;
        let registry = Registry::standard();
        let index_json = registry.index_json();
        let cache = ResultCache::new(config.max_cache_bytes);
        Ok(SweepServer {
            state: Arc::new(ServerState {
                config,
                listener,
                local_addr,
                registry,
                index_json,
                cache,
                counters: ServerCounters::default(),
                started: Instant::now(),
                stop: AtomicBool::new(false),
                queue: Mutex::new(ConnQueue::default()),
                ready: Condvar::new(),
            }),
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Runs the full registry matrix into the cache with the
    /// configured warm parameters, fanned across the worker count
    /// (each job is the same single-experiment pipeline a request
    /// miss runs, so warmed entries are byte-identical to on-demand
    /// ones). Returns the number of experiments warmed.
    pub fn warm(&self) -> usize {
        let ids: Vec<String> = self
            .state
            .registry
            .ids()
            .into_iter()
            .map(str::to_string)
            .collect();
        let params = self.state.config.warm_params;
        par_map(&ids, self.state.config.threads, |id| {
            let key = report_fingerprint(id, params);
            self.state
                .cache
                .get_or_compute(key, || compute_render_set(id, params));
        });
        ids.len()
    }

    /// Serves until [`SweepServer::stop`] (or `POST /shutdown`).
    /// Blocks the calling thread; workers are scoped inside.
    pub fn run(&self) {
        if self.state.config.warm {
            self.warm();
        }
        thread::scope(|scope| {
            for _ in 0..self.state.config.threads.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            self.accept_loop();
            // Unblock idle workers: the queue is closed for good.
            let mut queue = self.lock_queue();
            queue.closed = true;
            drop(queue);
            self.state.ready.notify_all();
        });
    }

    /// Requests shutdown: the accept loop exits (woken by a loopback
    /// poke), workers finish their current connection and drain.
    /// Idempotent and callable from any thread.
    pub fn stop(&self) {
        if !self.state.stop.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.state.local_addr);
        }
        self.state.ready.notify_all();
    }

    fn lock_queue(&self) -> MutexGuard<'_, ConnQueue> {
        self.state
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn accept_loop(&self) {
        loop {
            match self.state.listener.accept() {
                Ok((conn, _)) => {
                    if self.state.stop.load(Ordering::SeqCst) {
                        // The shutdown poke (or a late client) —
                        // dropped unanswered.
                        break;
                    }
                    let mut queue = self.lock_queue();
                    queue.conns.push_back(conn);
                    drop(queue);
                    self.state.ready.notify_one();
                }
                Err(_) if self.state.stop.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let conn = {
                let mut queue = self.lock_queue();
                loop {
                    if let Some(conn) = queue.conns.pop_front() {
                        break Some(conn);
                    }
                    if queue.closed || self.state.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = self
                        .state
                        .ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match conn {
                Some(conn) => self.handle_connection(conn),
                None => return,
            }
        }
    }

    fn handle_connection(&self, conn: TcpStream) {
        self.state
            .counters
            .connections
            .fetch_add(1, Ordering::Relaxed);
        let _ = conn.set_read_timeout(Some(self.state.config.read_timeout));
        let _ = conn.set_nodelay(true);
        let mut reader = BufReader::new(&conn);
        for _ in 0..self.state.config.max_requests_per_connection {
            match read_request(&mut reader) {
                Ok(request) => {
                    self.state.counters.requests.fetch_add(1, Ordering::Relaxed);
                    let (response, stop_after) = self.dispatch(&request);
                    self.state.counters.record_response(response.status);
                    let keep_alive = request.keep_alive && !stop_after;
                    if response.write_to(&mut (&conn), keep_alive).is_err() {
                        return;
                    }
                    if stop_after {
                        self.stop();
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
                Err(RequestError::Malformed(detail)) => {
                    // Framing is untrustworthy after a parse error:
                    // answer 400 and close.
                    self.state.counters.requests.fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(400, &detail);
                    self.state.counters.record_response(response.status);
                    let _ = response.write_to(&mut (&conn), false);
                    return;
                }
            }
        }
    }

    /// Routes one request. Returns the response plus whether the
    /// daemon should stop after writing it.
    fn dispatch(&self, request: &Request) -> (Response, bool) {
        let method = request.method.as_str();
        let path = request.path.as_str();
        match (method, path) {
            ("GET", "/healthz") => (
                Response::ok("text/plain; charset=utf-8", b"ok\n".to_vec()),
                false,
            ),
            ("GET", "/experiments") => (
                Response::ok(
                    "application/json",
                    self.state.index_json.clone().into_bytes(),
                ),
                false,
            ),
            ("GET", "/stats") => {
                let uptime_ms =
                    u64::try_from(self.state.started.elapsed().as_millis()).unwrap_or(u64::MAX);
                let snapshot = StatsSnapshot::capture(
                    uptime_ms,
                    &self.state.counters,
                    self.state.cache.counters(),
                );
                (
                    Response::ok("application/json", snapshot.to_json().into_bytes()),
                    false,
                )
            }
            ("POST", "/shutdown") => (
                Response::ok("text/plain; charset=utf-8", b"shutting down\n".to_vec()),
                true,
            ),
            (_, "/healthz" | "/experiments" | "/stats") => (method_not_allowed("GET"), false),
            (_, "/shutdown") => (method_not_allowed("POST"), false),
            ("GET", _) if path.starts_with("/report/") => (self.report_endpoint(request), false),
            (_, _) if path.starts_with("/report/") => (method_not_allowed("GET"), false),
            _ => (Response::error(404, &format!("no route for {path}")), false),
        }
    }

    /// `GET /report/<artifact>/<scenario>?seed=&instructions=&format=`
    fn report_endpoint(&self, request: &Request) -> Response {
        let id = &request.path["/report/".len()..];
        let mut params = ExperimentParams::default();
        let mut format = Format::Text;
        for (key, value) in &request.query {
            let parsed: Result<(), String> = match key.as_str() {
                "seed" => value
                    .parse()
                    .map(|s| params.seed = s)
                    .map_err(|e| format!("bad seed {value:?}: {e}")),
                "instructions" => value
                    .parse()
                    .map(|n| params.instructions = n)
                    .map_err(|e| format!("bad instructions {value:?}: {e}")),
                "format" => value.parse().map(|f| format = f),
                other => Err(format!(
                    "unknown query parameter {other:?} (expected seed, instructions, format)"
                )),
            };
            if let Err(detail) = parsed {
                return Response::error(400, &detail);
            }
        }
        if self.state.registry.get(id).is_none() {
            return Response::error(
                404,
                &format!("unknown experiment {id:?} (see /experiments for the index)"),
            );
        }
        let key = report_fingerprint(id, params);
        // The ETag is the report fingerprint plus the render backend:
        // same (id, params) in a different format is a different
        // representation, so it must not validate against the other
        // formats' cached copies.
        let (content_type, format_tag) = match format {
            Format::Text => ("text/plain; charset=utf-8", "text"),
            Format::Json => ("application/json", "json"),
            Format::Csv => ("text/csv; charset=utf-8", "csv"),
        };
        let etag = format!("\"{key:016x}-{format_tag}\"");
        if let Some(condition) = request.header("if-none-match") {
            let matches = condition
                .split(',')
                .any(|candidate| candidate.trim() == etag || candidate.trim() == "*");
            if matches {
                // Deterministic reports never change for a given
                // fingerprint, so a matching validator short-circuits
                // before touching the cache or the sweep engine.
                return Response {
                    status: 304,
                    content_type,
                    extra_headers: Vec::new(),
                    body: Vec::new(),
                }
                .with_header("ETag", etag);
            }
        }
        let rendered = self
            .state
            .cache
            .get_or_compute(key, || compute_render_set(id, params));
        Response::ok(content_type, rendered.body(format).to_vec()).with_header("ETag", etag)
    }
}

/// Runs one experiment through the exact CLI pipeline (filtered
/// [`SweepBuilder`] over the standard registry, then every render
/// backend). Serving the stored bytes is therefore byte-identical to
/// `hyvec run-all --filter <id> --format <f>` — the loopback
/// integration tests and the CI smoke diff both pin this.
fn compute_render_set(id: &str, params: ExperimentParams) -> RenderSet {
    let outcome = SweepBuilder::new().params(params).jobs(1).filter(id).run();
    RenderSet::new(
        render(&outcome.report, Format::Text),
        render(&outcome.report, Format::Json),
        render(&outcome.report, Format::Csv),
    )
}

fn method_not_allowed(allow: &'static str) -> Response {
    Response::error(405, &format!("use {allow}")).with_header("Allow", allow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_flags_parse() {
        let c = ServeConfig::from_args(std::iter::empty()).unwrap();
        assert_eq!(c, ServeConfig::default());
        let c = ServeConfig::from_args(
            [
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "3",
                "--warm",
                "--instructions",
                "2000",
                "--seed",
                "9",
                "--cache-mb",
                "8",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.threads, 3);
        assert!(c.warm);
        assert_eq!(c.warm_params.instructions, 2000);
        assert_eq!(c.warm_params.seed, 9);
        assert_eq!(c.max_cache_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn bad_serve_flags_are_reported() {
        for bad in [
            vec!["--threads", "0"],
            vec!["--cache-mb", "0"],
            vec!["--addr"],
            vec!["--wat", "1"],
            vec!["--instructions", "many"],
        ] {
            assert!(
                ServeConfig::from_args(bad.iter().map(|s| s.to_string())).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}
