//! Request/response counters and the `GET /stats` document.
//!
//! This file is a `counter-files` module in `lint.toml`, so the
//! `counter-hygiene` rule is armed here: every counter is an exact
//! `u64` end to end — no narrowing casts, no float accumulation.
//! Uptime is therefore reported as integer milliseconds (converted by
//! the caller, who owns the wall clock; this module never reads one).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheCounters;

/// Monotonic service counters, bumped lock-free by the worker pool.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Requests parsed (including ones answered with an error).
    pub requests: AtomicU64,
    /// 200 responses.
    pub status_200: AtomicU64,
    /// 400 responses.
    pub status_400: AtomicU64,
    /// 404 responses.
    pub status_404: AtomicU64,
    /// 405 responses.
    pub status_405: AtomicU64,
}

impl ServerCounters {
    /// Records one response with the given status code.
    pub fn record_response(&self, status: u16) {
        let counter = match status {
            200 => &self.status_200,
            400 => &self.status_400,
            404 => &self.status_404,
            405 => &self.status_405,
            _ => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of every counter the daemon exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Accepted connections.
    pub connections: u64,
    /// Requests parsed.
    pub requests: u64,
    /// 200 responses.
    pub status_200: u64,
    /// 400 responses.
    pub status_400: u64,
    /// 404 responses.
    pub status_404: u64,
    /// 405 responses.
    pub status_405: u64,
    /// The result-cache counters.
    pub cache: CacheCounters,
}

impl StatsSnapshot {
    /// Reads `counters` (relaxed; the snapshot is advisory, not a
    /// synchronization point) and attaches the cache counters.
    pub fn capture(uptime_ms: u64, counters: &ServerCounters, cache: CacheCounters) -> Self {
        StatsSnapshot {
            uptime_ms,
            connections: counters.connections.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            status_200: counters.status_200.load(Ordering::Relaxed),
            status_400: counters.status_400.load(Ordering::Relaxed),
            status_404: counters.status_404.load(Ordering::Relaxed),
            status_405: counters.status_405.load(Ordering::Relaxed),
            cache,
        }
    }

    /// Serializes the snapshot as the `GET /stats` JSON document
    /// (hand-rolled like every other renderer in the workspace;
    /// integer-only, so no reader ever sees a rounded counter).
    pub fn to_json(&self) -> String {
        let c = &self.cache;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-serve-stats/v1\",\n");
        out.push_str(&format!("  \"uptime_ms\": {},\n", self.uptime_ms));
        out.push_str(&format!("  \"connections\": {},\n", self.connections));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!(
            "  \"responses\": {{\"status_200\": {}, \"status_400\": {}, \"status_404\": {}, \"status_405\": {}}},\n",
            self.status_200, self.status_400, self.status_404, self.status_405
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \"oversize\": {}, \"entries\": {}, \"bytes\": {}, \"capacity_bytes\": {}}}\n",
            c.hits, c.misses, c.coalesced, c.evictions, c.oversize, c.entries, c.bytes, c.capacity_bytes
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_response_routes_by_status() {
        let counters = ServerCounters::default();
        counters.record_response(200);
        counters.record_response(200);
        counters.record_response(404);
        counters.record_response(405);
        counters.record_response(500); // untracked, ignored
        let snap = StatsSnapshot::capture(12, &counters, CacheCounters::default());
        assert_eq!(snap.status_200, 2);
        assert_eq!(snap.status_400, 0);
        assert_eq!(snap.status_404, 1);
        assert_eq!(snap.status_405, 1);
        assert_eq!(snap.uptime_ms, 12);
    }

    #[test]
    fn stats_json_carries_every_counter() {
        let counters = ServerCounters::default();
        counters.requests.fetch_add(3, Ordering::Relaxed);
        let cache = CacheCounters {
            hits: 2,
            misses: 1,
            capacity_bytes: 64,
            ..CacheCounters::default()
        };
        let json = StatsSnapshot::capture(7, &counters, cache).to_json();
        assert!(json.contains("\"schema\": \"hyvec-serve-stats/v1\""));
        assert!(json.contains("\"uptime_ms\": 7"));
        assert!(json.contains("\"requests\": 3"));
        assert!(json.contains("\"hits\": 2, \"misses\": 1"));
        assert!(json.contains("\"capacity_bytes\": 64"));
    }
}
