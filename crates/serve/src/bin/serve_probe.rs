//! `serve-probe` — a minimal `std::net::TcpStream` HTTP client for
//! smoking the daemon from CI and scripts.
//!
//! ```text
//! serve-probe [--method METHOD] [--expect STATUS] ADDR PATH
//! ```
//!
//! Sends one `Connection: close` HTTP/1.1 request to `ADDR`
//! (`host:port`), writes the response **body** to stdout, and exits
//! nonzero unless the status matches `--expect` (default 200). The
//! body passes through untouched, so CI can `cmp` it against CLI
//! renderer output byte for byte.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn run(args: Vec<String>) -> Result<(), String> {
    let mut method = "GET".to_string();
    let mut expect: u16 = 200;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--method" => {
                method = iter.next().ok_or("--method needs a value")?;
            }
            "--expect" => {
                expect = iter
                    .next()
                    .ok_or("--expect needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --expect: {e}"))?;
            }
            _ => positional.push(arg),
        }
    }
    let [addr, path] = positional.as_slice() else {
        return Err("usage: serve-probe [--method METHOD] [--expect STATUS] ADDR PATH".to_string());
    };

    let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = conn.set_read_timeout(Some(Duration::from_secs(60)));
    conn.write_all(
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send: {e}"))?;

    let mut raw = Vec::new();
    conn.read_to_end(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {:?}", head.lines().next().unwrap_or("")))?;
    let body = &raw[header_end + 4..];
    std::io::stdout()
        .write_all(body)
        .map_err(|e| format!("stdout: {e}"))?;
    if status != expect {
        return Err(format!(
            "{method} {path}: status {status}, expected {expect}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    // hyvec-lint: allow(determinism, "CLI argument intake for the probe binary; the probe only relays bytes")
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-probe: {e}");
            ExitCode::FAILURE
        }
    }
}
