//! The content-addressed result cache behind the serve router.
//!
//! Every report is a pure function of (experiment id — which embeds
//! artifact and scenario —, seed, instruction budget, config), so a
//! rendered report is infinitely cacheable under a stable fingerprint
//! of those inputs ([`report_fingerprint`], built on
//! [`ExperimentParams::fingerprint`]). The cache stores one
//! [`RenderSet`] — the text, JSON, and CSV renderings produced from a
//! single compute — per fingerprint, so any format of an already
//! computed report is a pure byte copy.
//!
//! Two service properties live here rather than in the router:
//!
//! * **Single-flight**: concurrent requests for the same fingerprint
//!   compute once. The first requester marks the key in flight and
//!   computes outside the lock; the rest block on a condvar and are
//!   handed the finished value (counted as `coalesced`, not `hits`).
//! * **Byte-bounded LRU**: total cached bytes never exceed the
//!   configured budget. Recency is a logical tick (bumped per lookup),
//!   not wall time — the cache stays deterministic and lint-clean
//!   (`hyvec-lint` bans `Instant` outside allowlisted modules).
//!
//! Poisoned locks are recovered (`PoisonError::into_inner`): a worker
//! that panicked mid-insert leaves counters intact and the in-flight
//! guard unwinds its marker, so other requests simply recompute.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::render::Format;
use hyvec_core::seed::fnv1a;

/// The config-revision component of every cache key. The serve
/// pipeline has no request-varying configuration beyond the
/// parameters themselves today; this constant is the slot where a
/// real config hash goes the day it does. Bumping it invalidates
/// every content-addressed entry at once.
pub const CONFIG_REVISION: &str = "standard-registry/v1";

/// The stable cache key of one report: FNV-1a over the canonical
/// encoding of (experiment id, [`ExperimentParams`], config
/// revision). The experiment id (`"artifact/scenario"`) carries both
/// the artifact and the scenario; the params fingerprint input uses
/// the same name-keyed canonical encoding that
/// [`ExperimentParams::fingerprint`] pins, so struct refactors cannot
/// silently re-key the cache.
pub fn report_fingerprint(experiment_id: &str, params: ExperimentParams) -> u64 {
    fnv1a(&format!(
        "experiment={};{};config={}",
        experiment_id,
        params.canonical_encoding(),
        CONFIG_REVISION
    ))
}

/// The three renderings of one computed report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderSet {
    text: String,
    json: String,
    csv: String,
}

impl RenderSet {
    /// Bundles the renderings of one report.
    pub fn new(text: String, json: String, csv: String) -> RenderSet {
        RenderSet { text, json, csv }
    }

    /// The body bytes for `format`.
    pub fn body(&self, format: Format) -> &[u8] {
        match format {
            Format::Text => self.text.as_bytes(),
            Format::Json => self.json.as_bytes(),
            Format::Csv => self.csv.as_bytes(),
        }
    }

    /// Total bytes across the three renderings (what the LRU budget
    /// accounts).
    pub fn size_bytes(&self) -> usize {
        self.text.len() + self.json.len() + self.csv.len()
    }
}

/// A point-in-time snapshot of the cache counters, surfaced by the
/// daemon's `GET /stats`. Every lookup lands in exactly one of
/// `hits`, `misses`, or `coalesced`, so the three sum to the lookup
/// count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from a cached entry without waiting.
    pub hits: u64,
    /// Lookups that led a compute (single-flight leaders).
    pub misses: u64,
    /// Lookups that waited on another request's in-flight compute
    /// instead of starting their own.
    pub coalesced: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Computed values too large to cache at all.
    pub oversize: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Bytes currently cached.
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<RenderSet>,
    size: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: BTreeMap<u64, Entry>,
    in_flight: BTreeSet<u64>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    oversize: u64,
}

/// The byte-bounded, single-flight, content-addressed result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    max_bytes: usize,
}

/// Removes the in-flight marker if the computing thread unwinds, so
/// coalesced waiters wake up and one of them recomputes instead of
/// blocking forever.
struct InFlightGuard<'a> {
    cache: &'a ResultCache,
    key: u64,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.lock();
            inner.in_flight.remove(&self.key);
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

impl ResultCache {
    /// A cache bounded to `max_bytes` of rendered output.
    pub fn new(max_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            max_bytes,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached value for `key`, computing it with
    /// `compute` on a miss. Concurrent callers with the same key
    /// compute once: the leader runs `compute` outside the lock, the
    /// rest block until the value lands (or the leader unwinds, in
    /// which case one of them takes over).
    pub fn get_or_compute<F>(&self, key: u64, compute: F) -> Arc<RenderSet>
    where
        F: FnOnce() -> RenderSet,
    {
        let mut counted_wait = false;
        let mut inner = self.lock();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let value = entry.value.clone();
                // A waiter that coalesced and then found the value is
                // already counted; each lookup lands in exactly one
                // of hits / misses / coalesced.
                if !counted_wait {
                    inner.hits += 1;
                }
                return value;
            }
            if inner.in_flight.contains(&key) {
                if !counted_wait {
                    inner.coalesced += 1;
                    counted_wait = true;
                }
                inner = self
                    .ready
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            inner.in_flight.insert(key);
            inner.misses += 1;
            break;
        }
        drop(inner);

        let mut guard = InFlightGuard {
            cache: self,
            key,
            armed: true,
        };
        let value = Arc::new(compute());
        self.insert_computed(key, value.clone());
        guard.armed = false;
        value
    }

    /// Installs a computed value, clears the in-flight marker, evicts
    /// to budget, and wakes waiters.
    fn insert_computed(&self, key: u64, value: Arc<RenderSet>) {
        let size = value.size_bytes();
        let mut inner = self.lock();
        inner.in_flight.remove(&key);
        if size > self.max_bytes {
            // Never cacheable: serve it to the caller (and to current
            // waiters, who recheck, miss, and recompute — correctness
            // over elegance for a pathological budget).
            inner.oversize += 1;
        } else {
            inner.tick += 1;
            let tick = inner.tick;
            let previous = inner.entries.insert(
                key,
                Entry {
                    value,
                    size,
                    last_used: tick,
                },
            );
            inner.bytes += size;
            if let Some(previous) = previous {
                inner.bytes -= previous.size;
            }
            // Evict least-recently-used entries (never the one just
            // inserted) until the budget holds again.
            while inner.bytes > self.max_bytes {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                match victim.and_then(|k| inner.entries.remove(&k)) {
                    Some(evicted) => {
                        inner.bytes -= evicted.size;
                        inner.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// A point-in-time snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.lock();
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            oversize: inner.oversize,
            entries: u64::try_from(inner.entries.len()).unwrap_or(u64::MAX),
            bytes: u64::try_from(inner.bytes).unwrap_or(u64::MAX),
            capacity_bytes: u64::try_from(self.max_bytes).unwrap_or(u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use std::thread;

    fn set(tag: &str, bytes: usize) -> RenderSet {
        // One rendering carries the payload; sizes stay predictable.
        RenderSet::new(
            tag.repeat(bytes / tag.len().max(1)),
            String::new(),
            String::new(),
        )
    }

    #[test]
    fn fingerprint_is_stable_and_keyed_on_every_input() {
        let params = ExperimentParams::default();
        let a = report_fingerprint("fig3/A", params);
        assert_eq!(a, report_fingerprint("fig3/A", params));
        assert_ne!(a, report_fingerprint("fig3/B", params));
        assert_ne!(a, report_fingerprint("fig3/A", params.with_seed(2)));
        assert_ne!(
            a,
            report_fingerprint(
                "fig3/A",
                ExperimentParams {
                    instructions: 1,
                    ..params
                }
            )
        );
        // Pinned: the key must survive releases, or every warm cache
        // silently empties.
        assert_eq!(
            a,
            fnv1a("experiment=fig3/A;instructions=100000;seed=1;config=standard-registry/v1")
        );
    }

    #[test]
    fn hit_after_miss_without_recompute() {
        let cache = ResultCache::new(1 << 20);
        let computes = AtomicU64::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                computes.fetch_add(1, Ordering::Relaxed);
                set("x", 10)
            });
            assert_eq!(v.body(Format::Text).len(), 10);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        let c = cache.counters();
        assert_eq!((c.misses, c.hits, c.entries), (1, 2, 1));
        assert_eq!(c.bytes, 10);
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let cache = ResultCache::new(25);
        cache.get_or_compute(1, || set("a", 10));
        cache.get_or_compute(2, || set("b", 10));
        // Touch 1 so 2 is the least recently used.
        cache.get_or_compute(1, || unreachable!("1 is cached"));
        cache.get_or_compute(3, || set("c", 10));
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
        assert!(c.bytes <= 25);
        // 2 was evicted; 1 and 3 still hit.
        let recomputed = AtomicU64::new(0);
        cache.get_or_compute(1, || unreachable!("1 survived"));
        cache.get_or_compute(3, || unreachable!("3 survived"));
        cache.get_or_compute(2, || {
            recomputed.fetch_add(1, Ordering::Relaxed);
            set("b", 10)
        });
        assert_eq!(recomputed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversize_values_are_served_but_not_cached() {
        let cache = ResultCache::new(8);
        let computes = AtomicU64::new(0);
        for _ in 0..2 {
            let v = cache.get_or_compute(9, || {
                computes.fetch_add(1, Ordering::Relaxed);
                set("y", 100)
            });
            assert_eq!(v.size_bytes(), 100);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 2, "oversize recomputes");
        let c = cache.counters();
        assert_eq!((c.entries, c.bytes, c.oversize), (0, 0, 2));
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache = ResultCache::new(1 << 20);
        let computes = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let v = cache.get_or_compute(42, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so waiters coalesce.
                        thread::sleep(std::time::Duration::from_millis(30));
                        set("z", 12)
                    });
                    assert_eq!(v.body(Format::Text).len(), 12);
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1, "single-flight");
        let c = cache.counters();
        assert_eq!(c.misses, 1);
        // Counters are mutually exclusive: each of the other seven
        // lookups is a hit or a coalesced wait, never both.
        assert_eq!(c.hits + c.coalesced, 7);
    }

    #[test]
    fn a_panicking_leader_does_not_wedge_waiters() {
        let cache = Arc::new(ResultCache::new(1 << 20));
        let barrier = Arc::new(Barrier::new(2));
        let (c2, b2) = (cache.clone(), barrier.clone());
        let leader = thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(5, || {
                    b2.wait();
                    thread::sleep(std::time::Duration::from_millis(30));
                    panic!("compute failed")
                })
            }));
            assert!(result.is_err());
        });
        barrier.wait();
        // This request arrives while the leader is in flight; after
        // the leader unwinds it must take over and compute.
        let v = cache.get_or_compute(5, || set("ok", 6));
        assert_eq!(v.body(Format::Text).len(), 6);
        leader.join().unwrap();
        assert_eq!(cache.counters().entries, 1);
    }
}
