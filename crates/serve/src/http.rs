//! Minimal hand-rolled HTTP/1.1 message layer.
//!
//! The build environment is offline, so the serve daemon speaks HTTP
//! the same way the render layer speaks JSON: over `std` alone, with
//! exactly the surface the service needs. This module owns the wire
//! format — request-line and header parsing with hard size limits,
//! percent-decoding, keep-alive semantics, and response serialization
//! with correct `Content-Type`/`Content-Length` framing. Routing and
//! socket handling live in [`crate::server`].
//!
//! Limits are deliberate and small: a request line over
//! [`MAX_REQUEST_LINE_BYTES`], more than [`MAX_HEADER_COUNT`]
//! headers, a header over [`MAX_HEADER_LINE_BYTES`], or a body over
//! [`MAX_BODY_BYTES`] is a [`RequestError::Malformed`] (a 400, and
//! the connection closes — framing is not trustworthy after a parse
//! error).

use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;
/// Longest accepted header line, bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADER_COUNT: usize = 64;
/// Largest accepted (and discarded) request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, decoded path, decoded query pairs in
/// wire order, lower-cased headers, and the keep-alive decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, as sent (e.g. `GET`).
    pub method: String,
    /// The percent-decoded path component of the target.
    pub path: String,
    /// Percent-decoded `key=value` query pairs, in wire order.
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercased-name, trimmed-value)`, in wire order.
    pub headers: Vec<(String, String)>,
    /// Whether the connection may serve another request afterwards
    /// (HTTP/1.1 defaults to yes, HTTP/1.0 to no; the `Connection`
    /// header overrides either way).
    pub keep_alive: bool,
}

impl Request {
    /// The first value of the (lowercase) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Clean EOF before the first request byte: the peer closed an
    /// idle keep-alive connection. Not an error to report.
    Closed,
    /// Socket-level failure (including read timeouts) mid-request.
    Io(io::Error),
    /// Syntactically invalid or over-limit request — answer 400 and
    /// close.
    Malformed(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Io(e) => write!(f, "socket error: {e}"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

/// Reads one line (terminated by `\n`, with an optional preceding
/// `\r`) enforcing `cap` bytes. `Ok(None)` means EOF before any byte.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> Result<Option<String>, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        };
        if available.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(RequestError::Malformed("unterminated line".to_string()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if line.len() + take > cap + 2 {
            // +2: allow the terminating \r\n itself on a full line.
            return Err(RequestError::Malformed(format!("line exceeds {cap} bytes")));
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(RequestError::Malformed("line is not UTF-8".to_string())),
    }
}

/// Percent-decodes `s`; in query context (`plus_is_space`) `+` also
/// decodes to a space.
fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, RequestError> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    let hi = (pair[0] as char).to_digit(16)?;
                    let lo = (pair[1] as char).to_digit(16)?;
                    u8::try_from(hi * 16 + lo).ok()
                });
                match hex {
                    Some(b) => out.push(b),
                    None => {
                        return Err(RequestError::Malformed(format!(
                            "bad percent escape in {s:?}"
                        )))
                    }
                }
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| RequestError::Malformed(format!("escape in {s:?} is not UTF-8")))
}

/// Splits a raw target into decoded path + query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), RequestError> {
    if !target.starts_with('/') {
        return Err(RequestError::Malformed(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    Ok((path, query))
}

/// Reads and parses one request from `reader`, discarding any body
/// (the service has no body-carrying endpoint; bodies are tolerated
/// up to [`MAX_BODY_BYTES`] so clients that send one anyway keep the
/// connection framed).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, RequestError> {
    let line = match read_line_limited(reader, MAX_REQUEST_LINE_BYTES)? {
        Some(line) => line,
        None => return Err(RequestError::Closed),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {line:?}"
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(RequestError::Malformed(format!("bad method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RequestError::Malformed(format!(
                "unsupported version {other:?}"
            )))
        }
    };
    let (path, query) = parse_target(target)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_limited(reader, MAX_HEADER_LINE_BYTES)? {
            Some(line) => line,
            None => return Err(RequestError::Malformed("EOF inside headers".to_string())),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADER_COUNT {
            return Err(RequestError::Malformed(format!(
                "more than {MAX_HEADER_COUNT} headers"
            )));
        }
        let (name, value) = match line.split_once(':') {
            Some((n, v)) if !n.is_empty() && !n.contains(' ') => (n, v),
            _ => return Err(RequestError::Malformed(format!("bad header {line:?}"))),
        };
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        keep_alive: http11,
    };
    match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => request.keep_alive = false,
        Some(c) if c == "keep-alive" => request.keep_alive = true,
        _ => {}
    }
    if request.header("transfer-encoding").is_some() {
        return Err(RequestError::Malformed(
            "chunked request bodies are unsupported".to_string(),
        ));
    }
    if let Some(raw_len) = request.header("content-length") {
        let len: usize = raw_len
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad content-length {raw_len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(RequestError::Malformed(format!(
                "body of {len} bytes exceeds {MAX_BODY_BYTES}"
            )));
        }
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body).map_err(RequestError::Io)?;
    }
    Ok(request)
}

/// A response ready to serialize: status, content type, extra
/// headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Allow` on a 405), written verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 with the given content type and body.
    pub fn ok(content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type,
            extra_headers: Vec::new(),
            body,
        }
    }

    /// An error response with a one-line plain-text body
    /// (`<status> <reason>: <detail>`).
    pub fn error(status: u16, detail: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: format!("{status} {}: {detail}\n", reason(status)).into_bytes(),
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serializes the response, framing the body with
    /// `Content-Length` and advertising the connection decision.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nServer: hyvec-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_request_with_query_and_headers() {
        let r = parse(
            "GET /report/fig3/A?seed=9&instructions=2000&format=json HTTP/1.1\r\n\
             Host: localhost\r\nAccept: */*\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/report/fig3/A");
        assert_eq!(
            r.query,
            vec![
                ("seed".to_string(), "9".to_string()),
                ("instructions".to_string(), "2000".to_string()),
                ("format".to_string(), "json".to_string()),
            ]
        );
        assert_eq!(r.header("host"), Some("localhost"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_defaults_and_overrides() {
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let r = parse("GET /report/fig3%2FA?note=a+b%21 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/report/fig3/A");
        assert_eq!(r.query, vec![("note".to_string(), "a b!".to_string())]);
        assert!(matches!(
            parse("GET /%zz HTTP/1.1\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            "NOT-HTTP\r\n\r\n",
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET noslash HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nbad header\r\n\r\n",
            "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn limits_are_enforced() {
        let long_target = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert!(matches!(
            parse(&long_target),
            Err(RequestError::Malformed(_))
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: v\r\n".repeat(MAX_HEADER_COUNT + 1)
        );
        assert!(matches!(
            parse(&many_headers),
            Err(RequestError::Malformed(_))
        ));
        let big_body = format!(
            "POST /shutdown HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&big_body), Err(RequestError::Malformed(_))));
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(""), Err(RequestError::Closed)));
        // EOF mid-headers is malformed, though.
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn small_bodies_are_discarded_and_keep_framing() {
        let raw = "POST /shutdown HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap();
        assert_eq!(first.method, "POST");
        let second = read_request(&mut reader).unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn responses_are_framed_with_length_and_connection() {
        let mut out = Vec::new();
        Response::ok("application/json", b"{}\n".to_vec())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));

        let mut out = Vec::new();
        Response::error(405, "use GET")
            .with_header("Allow", "GET")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("405 Method Not Allowed: use GET\n"));
    }
}
