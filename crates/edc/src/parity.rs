//! Bit-level parity helpers shared by the code implementations.

/// Parity of the set bits of `x`: `1` if odd, `0` if even.
///
/// ```
/// use hyvec_edc::parity::parity64;
/// assert_eq!(parity64(0b0111), 1);
/// assert_eq!(parity64(0b0101), 0);
/// ```
#[inline]
pub fn parity64(x: u64) -> u32 {
    x.count_ones() & 1
}

/// Number of two-input XOR gates in a balanced tree computing the parity
/// of `inputs` bits. A tree over `n` inputs needs exactly `n - 1` gates.
#[inline]
pub fn xor_tree_gates(inputs: usize) -> usize {
    inputs.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_basics() {
        assert_eq!(parity64(0), 0);
        assert_eq!(parity64(1), 1);
        assert_eq!(parity64(u64::MAX), 0);
        assert_eq!(parity64(u64::MAX >> 1), 1);
    }

    #[test]
    fn flipping_any_bit_flips_parity() {
        let x = 0x9E37_79B9_7F4A_7C15u64;
        let p = parity64(x);
        for bit in 0..64 {
            assert_eq!(parity64(x ^ (1 << bit)), p ^ 1, "bit {bit}");
        }
    }

    #[test]
    fn tree_gate_count() {
        assert_eq!(xor_tree_gates(0), 0);
        assert_eq!(xor_tree_gates(1), 0);
        assert_eq!(xor_tree_gates(2), 1);
        assert_eq!(xor_tree_gates(13), 12);
    }
}
