//! Loop-based reference decoders, retained for equivalence testing.
//!
//! The production decode paths in [`hsiao`](crate::hsiao) and
//! [`bch`](crate::bch) are table-driven: one syndrome computation over
//! precomputed u64 row masks followed by a lookup. This module keeps
//! the original per-bit implementations — a linear column scan for
//! Hsiao, per-set-bit GF(64) polynomial evaluation plus on-the-fly
//! key-equation arithmetic for DECTED — so the test suites can assert,
//! corruption pattern by corruption pattern, that the tables reproduce
//! the loops bit for bit.
//!
//! Nothing on the simulator's hot path calls into this module.

use crate::bch::{DectedCode, BCH_PARITY_BITS};
use crate::gf64::{Gf64, FIELD_SIZE};
use crate::hsiao::{HsiaoCode, CHECK_BITS as HSIAO_CHECK_BITS};
use crate::parity::parity64;
use crate::{mask_low, Decoded, EdcCode};

/// Decodes `word` with the original loop-based Hsiao SECDED decoder:
/// the syndrome is accumulated bit by bit from the `H`-matrix columns
/// and the error position located by a linear scan over the data
/// columns.
pub fn hsiao_decode(code: &HsiaoCode, word: u64) -> Decoded {
    let k = code.data_bits();
    let data = mask_low(word, k);
    // Per-bit syndrome accumulation: XOR the column of every set
    // codeword bit (data and check alike).
    let mut syndrome = 0u8;
    for i in 0..k + HSIAO_CHECK_BITS {
        if word & (1u64 << i) != 0 {
            syndrome ^= code.column(i);
        }
    }
    if syndrome == 0 {
        return Decoded::Clean { data };
    }
    if syndrome.count_ones() % 2 == 1 {
        // Odd-weight syndrome: single-bit error at the matching
        // column (possibly in the check bits, leaving data intact).
        if let Some(pos) = (0..k).find(|&i| code.column(i) == syndrome) {
            return Decoded::Corrected {
                data: data ^ (1u64 << pos),
                errors: 1,
            };
        }
        if syndrome.count_ones() == 1 {
            return Decoded::Corrected { data, errors: 1 };
        }
        // Odd syndrome matching no column: at least 3 errors.
        return Decoded::Detected { errors_at_least: 3 };
    }
    // Even-weight nonzero syndrome: double error, uncorrectable.
    Decoded::Detected { errors_at_least: 2 }
}

/// Evaluates the polynomial with GF(2) coefficients packed in `poly`
/// at `x`, looping over the set bits with one `pow` each — the
/// original syndrome computation.
fn eval_poly_loop(poly: u64, x: Gf64) -> Gf64 {
    let mut acc = Gf64::ZERO;
    let mut bits = poly;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        acc = acc + x.pow(i);
    }
    acc
}

/// Solves `y^2 + y = c` by brute force over the 64 field elements —
/// the original search the table-driven `Gf64::solve_quadratic`
/// replaced.
fn solve_quadratic_search(c: Gf64) -> Option<Gf64> {
    (0..FIELD_SIZE as u8)
        .map(Gf64::new)
        .find(|&y| y * y + y == c)
}

/// Locates two errors from syndromes `(s1, s3)` with on-the-fly field
/// arithmetic (key equation plus brute-force quadratic search).
fn locate_double_loop(code: &DectedCode, s1: Gf64, s3: Gf64) -> Option<(usize, usize)> {
    let bch_bits = BCH_PARITY_BITS + code.data_bits();
    if s1.is_zero() {
        // X1 + X2 = 0 would need X1 == X2: impossible for two
        // distinct positions.
        return None;
    }
    // Product of the locators: X1*X2 = (S3 + S1^3) / S1.
    let prod = (s3 + s1.pow(3)) / s1;
    if prod.is_zero() {
        return None;
    }
    // x^2 + S1 x + prod = 0; substitute x = S1 y: y^2 + y = prod/S1^2.
    let c = prod / (s1 * s1);
    let y0 = solve_quadratic_search(c)?;
    let x1 = s1 * y0;
    let x2 = s1 * (y0 + Gf64::ONE);
    if x1.is_zero() || x2.is_zero() || x1 == x2 {
        return None;
    }
    // hyvec-lint: allow(no-panic, "x1 and x2 are checked nonzero on the previous line, so log() is defined")
    let p1 = x1.log().expect("nonzero");
    // hyvec-lint: allow(no-panic, "x1 and x2 are checked nonzero on the previous line, so log() is defined")
    let p2 = x2.log().expect("nonzero");
    // Shortened code: positions beyond the transmitted length are
    // known-zero and cannot be in error.
    if p1 >= bch_bits || p2 >= bch_bits {
        return None;
    }
    Some((p1.min(p2), p1.max(p2)))
}

/// Decodes `word` with the original loop-based DECTED decoder: both
/// syndromes evaluated term by term, the double-error locator solved
/// with live GF(64) arithmetic instead of the precomputed
/// syndrome→locator table.
pub fn dected_decode(code: &DectedCode, word: u64) -> Decoded {
    let bch_len = BCH_PARITY_BITS + code.data_bits();
    let bch_rx = mask_low(word, bch_len);
    let parity_rx = (word >> bch_len) & 1;
    let parity_mismatch = u64::from(parity64(bch_rx)) != parity_rx;

    let s1 = eval_poly_loop(bch_rx, Gf64::ALPHA);
    let s3 = eval_poly_loop(bch_rx, Gf64::ALPHA.pow(3));

    let extract = |bch: u64| mask_low(bch >> BCH_PARITY_BITS, code.data_bits());

    if s1.is_zero() && s3.is_zero() {
        return if parity_mismatch {
            // The overall parity bit itself flipped.
            Decoded::Corrected {
                data: extract(bch_rx),
                errors: 1,
            }
        } else {
            Decoded::Clean {
                data: extract(bch_rx),
            }
        };
    }

    if parity_mismatch {
        // Odd number of errors: try single-error correction.
        if !s1.is_zero() && s3 == s1.pow(3) {
            // hyvec-lint: allow(no-panic, "guarded by the !s1.is_zero() check in the enclosing condition")
            let pos = s1.log().expect("nonzero");
            if pos < bch_len {
                return Decoded::Corrected {
                    data: extract(bch_rx ^ (1u64 << pos)),
                    errors: 1,
                };
            }
        }
        // Three (or more, odd) errors: detected, uncorrectable.
        return Decoded::Detected { errors_at_least: 3 };
    }

    // Even number of errors with nonzero syndrome.
    if !s1.is_zero() && s3 == s1.pow(3) {
        // One BCH error plus one flip of the overall parity bit.
        // hyvec-lint: allow(no-panic, "guarded by the !s1.is_zero() check in the enclosing condition")
        let pos = s1.log().expect("nonzero");
        if pos < bch_len {
            return Decoded::Corrected {
                data: extract(bch_rx ^ (1u64 << pos)),
                errors: 2,
            };
        }
        return Decoded::Detected { errors_at_least: 4 };
    }
    if let Some((p1, p2)) = locate_double_loop(code, s1, s3) {
        return Decoded::Corrected {
            data: extract(bch_rx ^ (1u64 << p1) ^ (1u64 << p2)),
            errors: 2,
        };
    }
    // Even, nonzero, not a valid double: at least four errors.
    Decoded::Detected { errors_at_least: 4 }
}
