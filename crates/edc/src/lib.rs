//! # hyvec-edc — Error Detection and Correction codes for SRAM words
//!
//! This crate implements the two code families used by the hybrid
//! high-performance / ultra-low-energy cache architecture of Maric et al.
//! (DATE 2013):
//!
//! * [`HsiaoCode`] — single-error-correcting, double-error-detecting
//!   (SECDED) odd-weight-column codes after Hsiao, with 7 check bits for
//!   data words up to 57 bits. The paper uses (39,32) for 32-bit data words
//!   and (33,26) for 26-bit tag words.
//! * [`DectedCode`] — double-error-correcting, triple-error-detecting
//!   (DECTED) codes built from a shortened binary BCH code with `t = 2`
//!   over GF(2^6) plus one overall parity bit, giving 13 check bits, again
//!   matching the paper.
//!
//! Both implement the [`EdcCode`] trait so cache datapaths can be generic
//! over the protection level; [`NoCode`] provides the unprotected baseline.
//!
//! # Example
//!
//! ```
//! use hyvec_edc::{EdcCode, HsiaoCode, Decoded};
//!
//! let code = HsiaoCode::secded32();
//! let word = code.encode(0xDEAD_BEEF);
//! // flip one bit in the stored codeword (a hard fault or soft error)
//! let faulty = word ^ (1 << 17);
//! match code.decode(faulty) {
//!     Decoded::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod bch;
pub mod gf64;
pub mod hsiao;
pub mod parity;
pub mod reference;

pub use bch::DectedCode;
pub use hsiao::HsiaoCode;

use std::error::Error;
use std::fmt;

/// Result of decoding a possibly-corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// The codeword carried no detectable error.
    Clean {
        /// The extracted data word.
        data: u64,
    },
    /// One or more errors were detected and corrected.
    Corrected {
        /// The corrected data word.
        data: u64,
        /// Number of bit errors corrected (1 for SECDED, 1–2 for DECTED).
        errors: u32,
    },
    /// An uncorrectable error was detected. The data cannot be trusted.
    Detected {
        /// Lower bound on the number of bit errors present.
        errors_at_least: u32,
    },
}

impl Decoded {
    /// Returns the recovered data word, or `None` if the error was
    /// uncorrectable.
    pub fn data(&self) -> Option<u64> {
        match *self {
            Decoded::Clean { data } | Decoded::Corrected { data, .. } => Some(data),
            Decoded::Detected { .. } => None,
        }
    }

    /// Returns `true` when the decoder could deliver trustworthy data.
    pub fn is_ok(&self) -> bool {
        self.data().is_some()
    }
}

/// Error returned when constructing a code with an unsupported data width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildCodeError {
    /// The requested number of data bits.
    pub data_bits: usize,
    /// The maximum supported by the code family.
    pub max_data_bits: usize,
}

impl fmt::Display for BuildCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "code does not support {} data bits (maximum {})",
            self.data_bits, self.max_data_bits
        )
    }
}

impl Error for BuildCodeError {}

/// A systematic error-detection-and-correction code over words of at most
/// 64 bits (data plus check bits).
///
/// Codewords are laid out with the data bits in positions
/// `0..data_bits()` and check bits above them, so a cache array can store
/// the value of [`encode`](EdcCode::encode) directly.
pub trait EdcCode: fmt::Debug + Send + Sync {
    /// Number of payload bits the code protects.
    fn data_bits(&self) -> usize;

    /// Number of redundant check bits added by the code.
    fn check_bits(&self) -> usize;

    /// Total codeword length, `data_bits() + check_bits()`.
    fn total_bits(&self) -> usize {
        self.data_bits() + self.check_bits()
    }

    /// Encodes `data` into a codeword.
    ///
    /// Bits of `data` above `data_bits()` are ignored.
    fn encode(&self, data: u64) -> u64;

    /// Decodes a received codeword, correcting errors up to the code's
    /// correction capability and flagging detectable uncorrectable errors.
    fn decode(&self, word: u64) -> Decoded;

    /// Number of two-input XOR gates in a tree-structured encoder.
    ///
    /// Used by the circuit-level energy model as a proxy for the switched
    /// capacitance of the encoder (the paper obtains this figure from
    /// HSPICE simulation of the synthesized encoder).
    fn encoder_xor_gates(&self) -> usize;

    /// Number of two-input XOR gates plus equivalent gates in the
    /// syndrome-compute + correct path of a decoder.
    fn decoder_xor_gates(&self) -> usize;
}

/// The identity "code": no check bits, no detection, no correction.
///
/// Used for the paper's scenario A baseline (6T+10T with no coding) and
/// for HP-mode operation when the EDC logic is turned off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoCode {
    data_bits: usize,
}

impl NoCode {
    /// Creates a pass-through code for `data_bits`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits > 64`.
    pub fn new(data_bits: usize) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): payloads are stored in one u64")
        assert!(data_bits <= 64, "NoCode supports at most 64 data bits");
        NoCode { data_bits }
    }
}

impl EdcCode for NoCode {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        0
    }

    #[inline]
    fn encode(&self, data: u64) -> u64 {
        mask_low(data, self.data_bits)
    }

    #[inline]
    fn decode(&self, word: u64) -> Decoded {
        Decoded::Clean {
            data: mask_low(word, self.data_bits),
        }
    }

    fn encoder_xor_gates(&self) -> usize {
        0
    }

    fn decoder_xor_gates(&self) -> usize {
        0
    }
}

/// Protection level of a cache way, in the vocabulary of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// No coding at all.
    #[default]
    None,
    /// Single error correction, double error detection (7 check bits).
    Secded,
    /// Double error correction, triple error detection (13 check bits).
    Dected,
}

impl Protection {
    /// Check bits added per protected word.
    pub fn check_bits(self) -> usize {
        match self {
            Protection::None => 0,
            Protection::Secded => hsiao::CHECK_BITS,
            Protection::Dected => bch::CHECK_BITS,
        }
    }

    /// Number of hard faulty bits per word the code can tolerate while
    /// still guaranteeing correct operation (the yield criterion of the
    /// paper's Eq. (1): SECDED tolerates 1, DECTED tolerates 1 hard fault
    /// *plus* a soft error, i.e. also `i <= 1` hard faults).
    pub fn correctable_hard_faults(self) -> usize {
        match self {
            Protection::None => 0,
            // SECDED corrects the single hard fault (scenario A: no soft
            // error budget needed); DECTED reserves one correction for a
            // soft error, leaving one for a hard fault (scenario B).
            Protection::Secded | Protection::Dected => 1,
        }
    }

    /// Total number of bit errors the code can correct in one word,
    /// regardless of their origin (1 for SECDED, 2 for DECTED).
    pub fn max_correctable(self) -> usize {
        match self {
            Protection::None => 0,
            Protection::Secded => 1,
            Protection::Dected => 2,
        }
    }

    /// The widest data word the family can protect (64 for
    /// [`Protection::None`]: a pass-through still stores its word in
    /// one `u64`).
    pub fn max_data_bits(self) -> usize {
        match self {
            Protection::None => 64,
            Protection::Secded => hsiao::MAX_DATA_BITS,
            Protection::Dected => bch::MAX_DATA_BITS,
        }
    }

    /// Whether the family can protect `data_bits`-bit words —
    /// constructing a code for a supported width never fails.
    pub fn supports(self, data_bits: usize) -> bool {
        (1..=self.max_data_bits()).contains(&data_bits)
    }

    /// Builds a boxed codec for `data_bits`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCodeError`] if the family cannot protect that width.
    pub fn build(self, data_bits: usize) -> Result<Box<dyn EdcCode>, BuildCodeError> {
        match self {
            Protection::None => Ok(Box::new(NoCode::new(data_bits))),
            Protection::Secded => Ok(Box::new(HsiaoCode::new(data_bits)?)),
            Protection::Dected => Ok(Box::new(DectedCode::new(data_bits)?)),
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protection::None => f.write_str("none"),
            Protection::Secded => f.write_str("SECDED"),
            Protection::Dected => f.write_str("DECTED"),
        }
    }
}

#[inline]
pub(crate) fn mask_low(value: u64, bits: usize) -> u64 {
    if bits >= 64 {
        value
    } else {
        value & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_code_roundtrip() {
        let code = NoCode::new(32);
        assert_eq!(code.encode(0xFFFF_FFFF_FFFF_FFFF), 0xFFFF_FFFF);
        assert_eq!(
            code.decode(0x1234_5678),
            Decoded::Clean { data: 0x1234_5678 }
        );
        assert_eq!(code.total_bits(), 32);
    }

    #[test]
    fn no_code_never_detects() {
        let code = NoCode::new(8);
        // Any corruption passes through silently — that is the point of
        // the unprotected baseline.
        assert_eq!(code.decode(0xAB), Decoded::Clean { data: 0xAB });
    }

    #[test]
    fn protection_check_bits_match_paper() {
        assert_eq!(Protection::None.check_bits(), 0);
        assert_eq!(Protection::Secded.check_bits(), 7);
        assert_eq!(Protection::Dected.check_bits(), 13);
    }

    #[test]
    fn protection_builds_codecs() {
        for prot in [Protection::None, Protection::Secded, Protection::Dected] {
            let code = prot.build(32).expect("32-bit words supported");
            assert_eq!(code.data_bits(), 32);
            assert_eq!(code.check_bits(), prot.check_bits());
            let tag = prot.build(26).expect("26-bit tags supported");
            assert_eq!(tag.data_bits(), 26);
        }
    }

    #[test]
    fn decoded_accessors() {
        assert_eq!(Decoded::Clean { data: 5 }.data(), Some(5));
        assert_eq!(Decoded::Corrected { data: 7, errors: 1 }.data(), Some(7));
        assert_eq!(Decoded::Detected { errors_at_least: 2 }.data(), None);
        assert!(Decoded::Clean { data: 0 }.is_ok());
        assert!(!Decoded::Detected { errors_at_least: 2 }.is_ok());
    }

    #[test]
    fn protection_display() {
        assert_eq!(Protection::None.to_string(), "none");
        assert_eq!(Protection::Secded.to_string(), "SECDED");
        assert_eq!(Protection::Dected.to_string(), "DECTED");
    }

    #[test]
    fn build_code_error_display() {
        let err = BuildCodeError {
            data_bits: 60,
            max_data_bits: 57,
        };
        assert_eq!(
            err.to_string(),
            "code does not support 60 data bits (maximum 57)"
        );
    }
}
