//! DECTED (double-error-correcting, triple-error-detecting) codes built
//! from a shortened binary BCH code with `t = 2` plus an overall parity
//! bit.
//!
//! The underlying code is the classic BCH(63,51) code over GF(2^6) with
//! generator `g(x) = m1(x) * m3(x)` (degree 12), shortened to the data
//! width, then extended with one overall parity bit. That gives minimum
//! distance 6: correct any 1–2 bit errors, detect any 3 bit errors,
//! using `12 + 1 = 13` check bits — exactly the figure the paper quotes
//! for DECTED protection of 32-bit data and 26-bit tag words.
//!
//! Codeword layout (LSB first):
//!
//! ```text
//! bits 0..12        BCH parity (remainder coefficients x^0..x^11)
//! bits 12..12+k     data (coefficients x^12..x^(11+k))
//! bit  12+k         overall parity over all previous bits
//! ```
//!
//! Decoding computes the syndromes `S1 = r(alpha)`, `S3 = r(alpha^3)`
//! and the overall-parity discrepancy, then:
//!
//! * clean when everything is consistent;
//! * single-error correction when the parity is odd and `S3 = S1^3`;
//! * double-error correction by solving the quadratic error-locator
//!   `x^2 + S1*x + (S3 + S1^3)/S1 = 0`;
//! * detection otherwise. Because the extended distance is 6, weight-3
//!   error patterns can never be mis-corrected, only detected.
//!
//! The decode path is fully table-driven: each syndrome is 6 parallel
//! parity trees over precomputed u64 column masks (12 [`parity64`]
//! calls total), and the double-error locator is one lookup in a
//! 4096-entry `(S1, S3)`→positions table built at construction from
//! the key-equation arithmetic. The original per-set-bit polynomial
//! evaluation and live GF(64) solve survive as
//! [`reference::dected_decode`](crate::reference::dected_decode), used
//! only by the equivalence test suites.

use crate::gf64::Gf64;
use crate::parity::{parity64, xor_tree_gates};
use crate::{mask_low, BuildCodeError, Decoded, EdcCode};

/// Check bits used by this DECTED family: 12 BCH parity bits plus one
/// overall parity bit.
pub const CHECK_BITS: usize = 13;

/// Degree of the BCH generator polynomial.
pub(crate) const BCH_PARITY_BITS: usize = 12;

/// Bits per GF(64) syndrome component.
const SYNDROME_BITS: usize = 6;

/// `double_table` sentinel: the syndrome pair matches no correctable
/// double-error pattern.
const NO_DOUBLE: u16 = u16::MAX;

/// Maximum supported data width: `63 - 12 = 51` bits.
pub const MAX_DATA_BITS: usize = 51;

/// A DECTED code for data words of `k <= 51` bits with 13 check bits.
///
/// # Example
///
/// ```
/// use hyvec_edc::{DectedCode, EdcCode, Decoded};
///
/// let code = DectedCode::dected32();
/// let cw = code.encode(0xCAFE_F00D);
/// // Two independent bit errors (e.g. a hard fault plus a soft error):
/// let faulty = cw ^ (1 << 3) ^ (1 << 30);
/// assert_eq!(
///     code.decode(faulty),
///     Decoded::Corrected { data: 0xCAFE_F00D, errors: 2 }
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DectedCode {
    data_bits: usize,
    /// Generator polynomial g(x) = m1(x) * m3(x), bit i = coeff of x^i.
    generator: u16,
    /// `column[i] = x^(12+i) mod g(x)` — the 12-bit BCH parity
    /// contribution of data bit `i` (a parallel-encoder column).
    columns: Vec<u16>,
    /// For check bit `j`, the mask of data bits feeding its XOR tree.
    row_data_masks: [u64; BCH_PARITY_BITS],
    /// For bit `j` of S1, the mask of codeword bits feeding its parity
    /// tree: bit `i` is set when `alpha^i` has bit `j` set.
    s1_masks: [u64; SYNDROME_BITS],
    /// Same for S3 with `alpha^(3i)` columns.
    s3_masks: [u64; SYNDROME_BITS],
    /// Double-error locator table: entry `(s1 << 6) | s3` packs the
    /// two codeword bit positions as `p1 | (p2 << 8)`, or
    /// [`NO_DOUBLE`] when the pair matches no valid double error.
    /// Precomputed at construction from the key-equation arithmetic.
    double_table: Vec<u16>,
}

impl DectedCode {
    /// Builds a DECTED code for `data_bits`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCodeError`] if `data_bits` is 0 or exceeds
    /// [`MAX_DATA_BITS`].
    pub fn new(data_bits: usize) -> Result<Self, BuildCodeError> {
        if data_bits == 0 || data_bits > MAX_DATA_BITS {
            return Err(BuildCodeError {
                data_bits,
                max_data_bits: MAX_DATA_BITS,
            });
        }
        let generator = generator_poly();
        let mut columns = Vec::with_capacity(data_bits);
        for i in 0..data_bits {
            let x_pow = 1u64 << (BCH_PARITY_BITS + i);
            columns.push(poly_mod(x_pow, u64::from(generator)) as u16);
        }
        let mut row_data_masks = [0u64; BCH_PARITY_BITS];
        for (i, &col) in columns.iter().enumerate() {
            for (j, mask) in row_data_masks.iter_mut().enumerate() {
                if col & (1 << j) != 0 {
                    *mask |= 1u64 << i;
                }
            }
        }
        let bch_bits = BCH_PARITY_BITS + data_bits;
        let mut s1_masks = [0u64; SYNDROME_BITS];
        let mut s3_masks = [0u64; SYNDROME_BITS];
        for i in 0..bch_bits {
            let c1 = Gf64::alpha_pow(i).value();
            let c3 = Gf64::alpha_pow(3 * i).value();
            for j in 0..SYNDROME_BITS {
                if c1 >> j & 1 == 1 {
                    s1_masks[j] |= 1u64 << i;
                }
                if c3 >> j & 1 == 1 {
                    s3_masks[j] |= 1u64 << i;
                }
            }
        }
        let mut double_table = vec![NO_DOUBLE; 64 * 64];
        for s1 in 0..64u8 {
            for s3 in 0..64u8 {
                if let Some((p1, p2)) = locate_double(bch_bits, Gf64::new(s1), Gf64::new(s3)) {
                    double_table[usize::from(s1) << SYNDROME_BITS | usize::from(s3)] =
                        p1 as u16 | (p2 as u16) << 8;
                }
            }
        }
        Ok(DectedCode {
            data_bits,
            generator,
            columns,
            row_data_masks,
            s1_masks,
            s3_masks,
            double_table,
        })
    }

    /// The DECTED code protecting 32-bit data words (45-bit codeword).
    pub fn dected32() -> Self {
        // hyvec-lint: allow(no-panic, "constant width 32 is within MAX_DATA_BITS = 51")
        DectedCode::new(32).expect("32 <= 51")
    }

    /// The DECTED code protecting 26-bit tag words (39-bit codeword).
    pub fn dected26() -> Self {
        // hyvec-lint: allow(no-panic, "constant width 26 is within MAX_DATA_BITS = 51")
        DectedCode::new(26).expect("26 <= 51")
    }

    /// The generator polynomial `g(x)` (degree 12), bit `i` holding the
    /// coefficient of `x^i`.
    pub fn generator(&self) -> u16 {
        self.generator
    }

    /// The parallel-encoder column of data bit `i`: the 12 BCH parity
    /// bits toggled when data bit `i` is set
    /// (`x^(12+i) mod g(x)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= data_bits()`.
    pub fn column(&self, i: usize) -> u16 {
        self.columns[i]
    }

    /// Number of bits in the BCH part of the codeword (excluding the
    /// overall parity bit).
    fn bch_bits(&self) -> usize {
        BCH_PARITY_BITS + self.data_bits
    }

    /// Computes the 12 BCH parity bits for `data` via the parallel
    /// encoder columns.
    fn bch_parity(&self, data: u64) -> u16 {
        let mut parity = 0u16;
        for (j, &mask) in self.row_data_masks.iter().enumerate() {
            parity |= (parity64(data & mask) as u16) << j;
        }
        parity
    }

    /// Computes both syndromes of a received BCH word as 12 parallel
    /// parity trees over the precomputed column masks.
    #[inline]
    fn syndromes(&self, bch_rx: u64) -> (Gf64, Gf64) {
        let mut s1 = 0u8;
        let mut s3 = 0u8;
        for j in 0..SYNDROME_BITS {
            s1 |= (parity64(bch_rx & self.s1_masks[j]) as u8) << j;
            s3 |= (parity64(bch_rx & self.s3_masks[j]) as u8) << j;
        }
        (Gf64::new(s1), Gf64::new(s3))
    }
}

/// Locates two errors from syndromes `(s1, s3)` on a code shortened
/// to `bch_bits` transmitted positions. Returns codeword bit
/// positions, or `None` when no valid double-error pattern matches.
/// Used at construction to fill the syndrome→locator table.
fn locate_double(bch_bits: usize, s1: Gf64, s3: Gf64) -> Option<(usize, usize)> {
    if s1.is_zero() {
        // X1 + X2 = 0 would need X1 == X2: impossible for two
        // distinct positions.
        return None;
    }
    // Product of the locators: X1*X2 = (S3 + S1^3) / S1.
    let prod = (s3 + s1.pow(3)) / s1;
    if prod.is_zero() {
        // Would imply one locator is zero: not a position.
        return None;
    }
    // x^2 + S1 x + prod = 0; substitute x = S1 y:
    // y^2 + y = prod / S1^2.
    let c = prod / (s1 * s1);
    let y0 = c.solve_quadratic()?;
    let x1 = s1 * y0;
    let x2 = s1 * (y0 + Gf64::ONE);
    if x1.is_zero() || x2.is_zero() || x1 == x2 {
        return None;
    }
    // hyvec-lint: allow(no-panic, "x1 and x2 are checked nonzero on the previous line, so log() is defined")
    let p1 = x1.log().expect("nonzero");
    // hyvec-lint: allow(no-panic, "x1 and x2 are checked nonzero on the previous line, so log() is defined")
    let p2 = x2.log().expect("nonzero");
    // Shortened code: positions beyond the transmitted length are
    // known-zero and cannot be in error.
    if p1 >= bch_bits || p2 >= bch_bits {
        return None;
    }
    Some((p1.min(p2), p1.max(p2)))
}

impl EdcCode for DectedCode {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        CHECK_BITS
    }

    #[inline]
    fn encode(&self, data: u64) -> u64 {
        let data = mask_low(data, self.data_bits);
        let bch = (data << BCH_PARITY_BITS) | u64::from(self.bch_parity(data));
        debug_assert_eq!(poly_mod(bch, u64::from(self.generator)), 0);
        bch | (u64::from(parity64(bch)) << self.bch_bits())
    }

    #[inline]
    fn decode(&self, word: u64) -> Decoded {
        let bch_len = self.bch_bits();
        let bch_rx = mask_low(word, bch_len);
        let parity_rx = (word >> bch_len) & 1;
        let parity_mismatch = parity64(bch_rx) as u64 != parity_rx;

        let (s1, s3) = self.syndromes(bch_rx);

        let extract = |bch: u64| mask_low(bch >> BCH_PARITY_BITS, self.data_bits);

        if s1.is_zero() && s3.is_zero() {
            return if parity_mismatch {
                // The overall parity bit itself flipped.
                Decoded::Corrected {
                    data: extract(bch_rx),
                    errors: 1,
                }
            } else {
                Decoded::Clean {
                    data: extract(bch_rx),
                }
            };
        }

        if parity_mismatch {
            // Odd number of errors: try single-error correction.
            if !s1.is_zero() && s3 == s1.pow(3) {
                // hyvec-lint: allow(no-panic, "guarded by the !s1.is_zero() check in the enclosing condition")
                let pos = s1.log().expect("nonzero");
                if pos < bch_len {
                    return Decoded::Corrected {
                        data: extract(bch_rx ^ (1u64 << pos)),
                        errors: 1,
                    };
                }
            }
            // Three (or more, odd) errors: detected, uncorrectable.
            return Decoded::Detected { errors_at_least: 3 };
        }

        // Even number of errors with nonzero syndrome.
        if !s1.is_zero() && s3 == s1.pow(3) {
            // One BCH error plus one flip of the overall parity bit.
            // hyvec-lint: allow(no-panic, "guarded by the !s1.is_zero() check in the enclosing condition")
            let pos = s1.log().expect("nonzero");
            if pos < bch_len {
                return Decoded::Corrected {
                    data: extract(bch_rx ^ (1u64 << pos)),
                    errors: 2,
                };
            }
            return Decoded::Detected { errors_at_least: 4 };
        }
        // Double-error correction is one lookup in the precomputed
        // syndrome→locator table.
        let packed =
            self.double_table[(usize::from(s1.value()) << SYNDROME_BITS) | usize::from(s3.value())];
        if packed != NO_DOUBLE {
            let (p1, p2) = (packed & 0xFF, packed >> 8);
            return Decoded::Corrected {
                data: extract(bch_rx ^ (1u64 << p1) ^ (1u64 << p2)),
                errors: 2,
            };
        }
        // Even, nonzero, not a valid double: at least four errors.
        Decoded::Detected { errors_at_least: 4 }
    }

    fn encoder_xor_gates(&self) -> usize {
        let bch: usize = self
            .row_data_masks
            .iter()
            .map(|m| xor_tree_gates(m.count_ones() as usize))
            .sum();
        // Plus the overall-parity tree across the BCH codeword.
        bch + xor_tree_gates(self.bch_bits())
    }

    fn decoder_xor_gates(&self) -> usize {
        // Syndrome computation (two GF(64) evaluations realized as 12
        // parallel XOR trees over the codeword) and the parity tree,
        // plus the correction logic, which dominates: a Chien-style
        // evaluation of the quadratic error locator at every codeword
        // position costs two GF(64) constant multiplications and a
        // comparison per position (~25 XOR-equivalents), plus the
        // key-equation arithmetic (inversion, multiply, trace —
        // ~300 gate-equivalents).
        let syndrome: usize = self
            .row_data_masks
            .iter()
            .map(|m| xor_tree_gates(m.count_ones() as usize + 1))
            .sum();
        syndrome + xor_tree_gates(self.total_bits()) + 25 * self.total_bits() + 300
    }
}

/// Remainder of the GF(2) polynomial `v` modulo `g` (bit `i` = coeff of
/// `x^i`).
fn poly_mod(mut v: u64, g: u64) -> u64 {
    let gdeg = 63 - g.leading_zeros() as usize;
    loop {
        if v == 0 {
            return 0;
        }
        let vdeg = 63 - v.leading_zeros() as usize;
        if vdeg < gdeg {
            return v;
        }
        v ^= g << (vdeg - gdeg);
    }
}

/// Product of two GF(2) polynomials.
fn poly_mul(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    let mut a = a;
    let mut shift = 0;
    while a != 0 {
        if a & 1 != 0 {
            out ^= b << shift;
        }
        a >>= 1;
        shift += 1;
    }
    out
}

/// Minimal polynomial over GF(2) of `alpha^e` in GF(64): the product of
/// `(x + alpha^(e * 2^i))` over the conjugacy class of `e`.
fn minimal_poly(e: usize) -> u64 {
    // Collect the conjugacy class {e, 2e, 4e, ...} mod 63.
    let mut class = Vec::new();
    let mut cur = e % 63;
    loop {
        class.push(cur);
        cur = (cur * 2) % 63;
        if cur == e % 63 {
            break;
        }
    }
    // Multiply out the linear factors with coefficients in GF(64).
    let mut coeffs: Vec<Gf64> = vec![Gf64::ONE]; // the polynomial "1"
    for &exp in &class {
        let root = Gf64::alpha_pow(exp);
        // coeffs * (x + root)
        let mut next = vec![Gf64::ZERO; coeffs.len() + 1];
        for (i, &c) in coeffs.iter().enumerate() {
            next[i + 1] = next[i + 1] + c; // times x
            next[i] = next[i] + c * root; // times root
        }
        coeffs = next;
    }
    // The result must have GF(2) coefficients; pack into bits.
    let mut packed = 0u64;
    for (i, &c) in coeffs.iter().enumerate() {
        match c.value() {
            0 => {}
            1 => packed |= 1u64 << i,
            // hyvec-lint: allow(no-panic, "conjugate products over GF(64) always collapse to GF(2) coefficients; anything else is a field-arithmetic bug")
            v => panic!("minimal polynomial coefficient {v} not in GF(2)"),
        }
    }
    packed
}

/// The BCH(63,51) generator polynomial `g(x) = m1(x) * m3(x)`.
fn generator_poly() -> u16 {
    let g = poly_mul(minimal_poly(1), minimal_poly(3));
    debug_assert_eq!(63 - g.leading_zeros() as usize, BCH_PARITY_BITS);
    g as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf64::eval_poly_bits;

    #[test]
    fn minimal_polys_match_the_literature() {
        // For p(x) = x^6 + x + 1: m1 = x^6+x+1, m3 = x^6+x^4+x^2+x+1.
        assert_eq!(minimal_poly(1), 0b100_0011);
        assert_eq!(minimal_poly(3), 0b101_0111);
    }

    #[test]
    fn generator_has_degree_12_and_roots_alpha_1_through_4() {
        let g = u64::from(generator_poly());
        assert_eq!(63 - g.leading_zeros() as usize, 12);
        // BCH bound: alpha^1..alpha^4 must all be roots (conjugates of
        // alpha and alpha^3 include alpha^2 and alpha^4).
        for e in 1..=4 {
            assert_eq!(
                eval_poly_bits(g, Gf64::alpha_pow(e)),
                Gf64::ZERO,
                "alpha^{e} must be a root of g"
            );
        }
    }

    #[test]
    fn rejects_unsupported_widths() {
        assert!(DectedCode::new(0).is_err());
        assert!(DectedCode::new(52).is_err());
        assert!(DectedCode::new(51).is_ok());
    }

    #[test]
    fn named_constructors_match_paper_geometry() {
        let data = DectedCode::dected32();
        assert_eq!(data.data_bits(), 32);
        assert_eq!(data.check_bits(), 13);
        assert_eq!(data.total_bits(), 45);
        let tag = DectedCode::dected26();
        assert_eq!(tag.total_bits(), 39);
    }

    #[test]
    fn encode_decode_clean_roundtrip() {
        for k in [1usize, 8, 26, 32, 51] {
            let code = DectedCode::new(k).unwrap();
            for data in [0u64, 1, 0x5555_5555_5555_5555, u64::MAX] {
                let cw = code.encode(data);
                let expect = mask_low(data, k);
                assert_eq!(code.decode(cw), Decoded::Clean { data: expect }, "k={k}");
            }
        }
    }

    #[test]
    fn every_codeword_is_divisible_by_generator() {
        let code = DectedCode::dected32();
        let g = u64::from(code.generator());
        for data in [0u64, 1, 0xDEAD_BEEF, 0xFFFF_FFFF, 0x8000_0001] {
            let cw = code.encode(data);
            let bch = mask_low(cw, 44);
            assert_eq!(poly_mod(bch, g), 0, "data {data:#x}");
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        for k in [26usize, 32] {
            let code = DectedCode::new(k).unwrap();
            let data = 0x9E37_79B9 & ((1u64 << k) - 1);
            let cw = code.encode(data);
            for bit in 0..code.total_bits() {
                let got = code.decode(cw ^ (1u64 << bit));
                assert_eq!(
                    got,
                    Decoded::Corrected { data, errors: 1 },
                    "bit {bit}, k={k}"
                );
            }
        }
    }

    #[test]
    fn corrects_every_double_bit_error() {
        for k in [26usize, 32] {
            let code = DectedCode::new(k).unwrap();
            let data = 0x0F0F_A5A5 & ((1u64 << k) - 1);
            let cw = code.encode(data);
            let n = code.total_bits();
            for a in 0..n {
                for b in (a + 1)..n {
                    let got = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
                    assert_eq!(
                        got,
                        Decoded::Corrected { data, errors: 2 },
                        "bits {a},{b}, k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn detects_every_triple_bit_error_without_miscorrection() {
        let code = DectedCode::dected32();
        let data = 0x1357_9BDF;
        let cw = code.encode(data);
        let n = code.total_bits();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let got = code.decode(cw ^ (1u64 << a) ^ (1u64 << b) ^ (1u64 << c));
                    assert_eq!(
                        got,
                        Decoded::Detected { errors_at_least: 3 },
                        "bits {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn gate_counts_are_plausible() {
        let code = DectedCode::dected32();
        let secded = crate::HsiaoCode::secded32();
        use crate::EdcCode as _;
        // DECTED logic is substantially larger than SECDED, in line with
        // the paper's premise that stronger codes cost more energy.
        assert!(code.encoder_xor_gates() > secded.encoder_xor_gates());
        assert!(code.decoder_xor_gates() > secded.decoder_xor_gates());
        assert!(code.encoder_xor_gates() < 600);
    }

    #[test]
    fn poly_mod_and_mul_basics() {
        // (x^3 + 1) * (x + 1) = x^4 + x^3 + x + 1
        assert_eq!(poly_mul(0b1001, 0b11), 0b11011);
        // x^4 + x^3 + x + 1 mod (x^3 + 1) = x^3+... compute: x^4+x^3+x+1
        // ^ (x^3+1)<<1 = x^4+x^3+x+1 ^ x^4+x = x^3+1; ^ (x^3+1) = 0.
        assert_eq!(poly_mod(0b11011, 0b1001), 0);
        assert_eq!(poly_mod(0b101, 0b1001), 0b101);
    }
}
