//! Hsiao single-error-correcting, double-error-detecting (SECDED) codes.
//!
//! Hsiao's optimal odd-weight-column construction (Chen & Hsiao, IBM JRD
//! 1984 — the paper's reference 5) builds the parity-check matrix `H`
//! from distinct odd-weight columns:
//!
//! * every single-bit error produces a nonzero, **odd**-weight syndrome
//!   equal to that bit's column, so it can be located and corrected;
//! * every double-bit error produces a nonzero, **even**-weight syndrome
//!   (the XOR of two odd-weight columns), so it is always detected and
//!   never mis-corrected.
//!
//! With 7 check bits there are `C(7,3) + C(7,5) + C(7,7) = 57` usable
//! odd-weight columns beyond the weight-1 identity columns reserved for
//! the check bits, so any data width up to 57 bits is supported — the
//! paper uses 32-bit data words (39,32) and 26-bit tag words (33,26),
//! both with 7 check bits.
//!
//! Columns are chosen lowest-weight-first and greedily balanced across
//! rows, which is Hsiao's optimization for minimizing the depth and
//! fan-in of the encoder/decoder XOR trees.
//!
//! Both directions are table-driven: encoding is 7 [`parity64`] calls
//! over precomputed u64 row masks, and decoding is one syndrome
//! computation plus a single lookup in a 128-entry syndrome→action
//! table built at construction. The original per-bit column-scan
//! decoder survives as [`reference::hsiao_decode`](crate::reference::hsiao_decode),
//! used only by the equivalence test suites.

use crate::parity::{parity64, xor_tree_gates};
use crate::{mask_low, BuildCodeError, Decoded, EdcCode};

/// Check bits used by this SECDED family (fixed at 7, as in the paper).
pub const CHECK_BITS: usize = 7;

/// Maximum supported data width: the number of odd-weight 7-bit columns
/// of weight ≥ 3.
pub const MAX_DATA_BITS: usize = 57;

/// A Hsiao SECDED code for data words of `k <= 57` bits with 7 check
/// bits.
///
/// Codeword layout: data bits in positions `0..k`, check bits in
/// positions `k..k+7`.
///
/// # Example
///
/// ```
/// use hyvec_edc::{EdcCode, HsiaoCode, Decoded};
///
/// let code = HsiaoCode::secded26(); // tag words
/// let cw = code.encode(0x3FF_FFFF);
/// assert_eq!(code.decode(cw), Decoded::Clean { data: 0x3FF_FFFF });
/// ```
#[derive(Debug, Clone)]
pub struct HsiaoCode {
    data_bits: usize,
    /// For each check bit `j`, the mask of *data* bits it covers.
    row_data_masks: [u64; CHECK_BITS],
    /// For each data bit `i`, its 7-bit column of `H` (the syndrome a
    /// single error at `i` produces).
    columns: Vec<u8>,
    /// Decode action for each of the 128 possible syndromes (see the
    /// `SYN_*` constants): a data-bit position to flip, a check-bit
    /// error leaving data intact, or a detected multi-bit error.
    syndrome_table: [u8; 1 << CHECK_BITS],
}

/// `syndrome_table` entry: the error is in a check bit — data intact.
const SYN_CHECK: u8 = 0x80;
/// `syndrome_table` entry: even-weight syndrome — double error.
const SYN_DOUBLE: u8 = 0x81;
/// `syndrome_table` entry: odd syndrome matching no column — at least
/// a triple error.
const SYN_TRIPLE: u8 = 0x82;

impl HsiaoCode {
    /// Builds a Hsiao SECDED code for `data_bits`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCodeError`] if `data_bits` is 0 or exceeds
    /// [`MAX_DATA_BITS`].
    pub fn new(data_bits: usize) -> Result<Self, BuildCodeError> {
        if data_bits == 0 || data_bits > MAX_DATA_BITS {
            return Err(BuildCodeError {
                data_bits,
                max_data_bits: MAX_DATA_BITS,
            });
        }
        let columns = select_columns(data_bits);
        let mut row_data_masks = [0u64; CHECK_BITS];
        for (i, &col) in columns.iter().enumerate() {
            for (j, mask) in row_data_masks.iter_mut().enumerate() {
                if col & (1 << j) != 0 {
                    *mask |= 1u64 << i;
                }
            }
        }
        let mut syndrome_table = [SYN_TRIPLE; 1 << CHECK_BITS];
        for (syndrome, entry) in syndrome_table.iter_mut().enumerate().skip(1) {
            if syndrome.count_ones() % 2 == 0 {
                *entry = SYN_DOUBLE;
            } else if let Some(pos) = columns.iter().position(|&c| c == syndrome as u8) {
                *entry = pos as u8;
            } else if syndrome.count_ones() == 1 {
                *entry = SYN_CHECK;
            }
        }
        Ok(HsiaoCode {
            data_bits,
            row_data_masks,
            columns,
            syndrome_table,
        })
    }

    /// The (39,32) code protecting 32-bit data words, as used for cache
    /// data in the paper.
    pub fn secded32() -> Self {
        // hyvec-lint: allow(no-panic, "constant width 32 is within MAX_DATA_BITS = 57")
        HsiaoCode::new(32).expect("32 <= 57")
    }

    /// The (33,26) code protecting 26-bit tag words, as used for cache
    /// tags in the paper.
    pub fn secded26() -> Self {
        // hyvec-lint: allow(no-panic, "constant width 26 is within MAX_DATA_BITS = 57")
        HsiaoCode::new(26).expect("26 <= 57")
    }

    /// Computes the 7 check bits for `data`.
    pub fn checks(&self, data: u64) -> u8 {
        let data = mask_low(data, self.data_bits);
        let mut checks = 0u8;
        for (j, &mask) in self.row_data_masks.iter().enumerate() {
            checks |= (parity64(data & mask) as u8) << j;
        }
        checks
    }

    /// Computes the syndrome of a received codeword: 0 when consistent.
    pub fn syndrome(&self, word: u64) -> u8 {
        let data = mask_low(word, self.data_bits);
        let received_checks = (word >> self.data_bits) as u8 & 0x7F;
        self.checks(data) ^ received_checks
    }

    /// The `H`-matrix column (syndrome signature) of codeword bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_bits()`.
    pub fn column(&self, i: usize) -> u8 {
        if i < self.data_bits {
            self.columns[i]
        } else if i < self.data_bits + CHECK_BITS {
            1 << (i - self.data_bits)
        } else {
            // hyvec-lint: allow(no-panic, "documented precondition: every caller iterates 0..total_bits(); an out-of-range index is a decoder bug")
            panic!(
                "bit index {i} out of range for {}-bit codeword",
                self.total_bits()
            );
        }
    }
}

impl EdcCode for HsiaoCode {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn check_bits(&self) -> usize {
        CHECK_BITS
    }

    #[inline]
    fn encode(&self, data: u64) -> u64 {
        let data = mask_low(data, self.data_bits);
        data | (u64::from(self.checks(data)) << self.data_bits)
    }

    #[inline]
    fn decode(&self, word: u64) -> Decoded {
        let syndrome = self.syndrome(word);
        let data = mask_low(word, self.data_bits);
        if syndrome == 0 {
            return Decoded::Clean { data };
        }
        // One table lookup classifies the syndrome: data-bit position
        // (odd weight, matching column), check-bit error (data
        // intact), double error, or ≥3 errors.
        match self.syndrome_table[syndrome as usize] {
            SYN_CHECK => Decoded::Corrected { data, errors: 1 },
            SYN_DOUBLE => Decoded::Detected { errors_at_least: 2 },
            SYN_TRIPLE => Decoded::Detected { errors_at_least: 3 },
            pos => Decoded::Corrected {
                data: data ^ (1u64 << pos),
                errors: 1,
            },
        }
    }

    fn encoder_xor_gates(&self) -> usize {
        self.row_data_masks
            .iter()
            .map(|m| xor_tree_gates(m.count_ones() as usize))
            .sum()
    }

    fn decoder_xor_gates(&self) -> usize {
        // Syndrome generation re-XORs the stored check bit into each
        // encoder tree, plus roughly one gate-equivalent per codeword bit
        // for the column-match correction logic.
        let syndrome: usize = self
            .row_data_masks
            .iter()
            .map(|m| xor_tree_gates(m.count_ones() as usize + 1))
            .sum();
        syndrome + self.total_bits()
    }
}

/// Selects `k` odd-weight 7-bit columns, lowest weight first, greedily
/// balancing the per-row load as in Hsiao's construction.
fn select_columns(k: usize) -> Vec<u8> {
    let mut chosen = Vec::with_capacity(k);
    let mut row_load = [0usize; CHECK_BITS];
    for weight in [3u32, 5, 7] {
        if chosen.len() == k {
            break;
        }
        // All columns of this weight, as candidates.
        let mut candidates: Vec<u8> = (1u8..0x80).filter(|c| c.count_ones() == weight).collect();
        while chosen.len() < k && !candidates.is_empty() {
            // Pick the candidate minimizing the resulting maximum row
            // load (ties broken by smallest numeric value for
            // determinism).
            let (best_idx, _) = candidates
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| {
                    let mut load = row_load;
                    for (j, l) in load.iter_mut().enumerate() {
                        if c & (1 << j) != 0 {
                            *l += 1;
                        }
                    }
                    // hyvec-lint: allow(no-panic, "load is a fixed [usize; 7] array, never empty")
                    let max = *load.iter().max().expect("7 rows");
                    let sum_sq: usize = load.iter().map(|&l| l * l).sum();
                    (max, sum_sq, c)
                })
                // hyvec-lint: allow(no-panic, "the loop runs while chosen.len() < k <= candidate count, checked by the assert below")
                .expect("candidates nonempty");
            let col = candidates.swap_remove(best_idx);
            for (j, l) in row_load.iter_mut().enumerate() {
                if col & (1 << j) != 0 {
                    *l += 1;
                }
            }
            chosen.push(col);
        }
    }
    // hyvec-lint: allow(no-panic, "construction guard: HsiaoCode::new bounds k by MAX_DATA_BITS, the odd-weight column count")
    assert_eq!(chosen.len(), k, "requested width exceeds available columns");
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_widths() -> impl Iterator<Item = usize> {
        [1usize, 2, 8, 16, 26, 32, 40, 57].into_iter()
    }

    #[test]
    fn rejects_unsupported_widths() {
        assert!(HsiaoCode::new(0).is_err());
        assert!(HsiaoCode::new(58).is_err());
        assert!(HsiaoCode::new(57).is_ok());
    }

    #[test]
    fn columns_are_distinct_and_odd_weight() {
        for k in all_widths() {
            let code = HsiaoCode::new(k).unwrap();
            let mut seen = std::collections::HashSet::new();
            for i in 0..code.total_bits() {
                let col = code.column(i);
                assert_eq!(col.count_ones() % 2, 1, "column {i} even weight");
                assert!(seen.insert(col), "column {i} duplicated");
            }
        }
    }

    #[test]
    fn row_loads_are_balanced() {
        let code = HsiaoCode::secded32();
        let loads: Vec<usize> = code
            .row_data_masks
            .iter()
            .map(|m| m.count_ones() as usize)
            .collect();
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        // 32 weight-3 columns spread 96 ones over 7 rows: 13.7 average;
        // Hsiao balancing keeps the spread tight.
        assert!(max - min <= 1, "unbalanced rows: {loads:?}");
    }

    #[test]
    fn encode_decode_clean_roundtrip() {
        for k in all_widths() {
            let code = HsiaoCode::new(k).unwrap();
            for data in [0u64, 1, 0xAAAA_AAAA_AAAA_AAAA, u64::MAX] {
                let cw = code.encode(data);
                let expect = mask_low(data, k);
                assert_eq!(code.decode(cw), Decoded::Clean { data: expect });
                assert_eq!(code.syndrome(cw), 0);
            }
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        for k in [26usize, 32] {
            let code = HsiaoCode::new(k).unwrap();
            let data = 0x5A5A_5A5A_5A5A_5A5A & ((1u64 << k) - 1);
            let cw = code.encode(data);
            for bit in 0..code.total_bits() {
                let got = code.decode(cw ^ (1u64 << bit));
                assert_eq!(
                    got,
                    Decoded::Corrected { data, errors: 1 },
                    "bit {bit} of {k}-bit code"
                );
            }
        }
    }

    #[test]
    fn detects_every_double_bit_error_without_miscorrection() {
        for k in [26usize, 32] {
            let code = HsiaoCode::new(k).unwrap();
            let data = 0x0123_4567_89AB_CDEF & ((1u64 << k) - 1);
            let cw = code.encode(data);
            let n = code.total_bits();
            for a in 0..n {
                for b in (a + 1)..n {
                    let got = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
                    assert_eq!(
                        got,
                        Decoded::Detected { errors_at_least: 2 },
                        "bits {a},{b} of {k}-bit code"
                    );
                }
            }
        }
    }

    #[test]
    fn named_constructors_match_paper_geometry() {
        let data = HsiaoCode::secded32();
        assert_eq!(data.data_bits(), 32);
        assert_eq!(data.check_bits(), 7);
        assert_eq!(data.total_bits(), 39);
        let tag = HsiaoCode::secded26();
        assert_eq!(tag.data_bits(), 26);
        assert_eq!(tag.total_bits(), 33);
    }

    #[test]
    fn gate_counts_are_plausible() {
        let code = HsiaoCode::secded32();
        // 32 weight-3 columns -> 96 ones -> 96 - 7 = 89 encoder gates.
        assert_eq!(code.encoder_xor_gates(), 96 - 7);
        assert!(code.decoder_xor_gates() > code.encoder_xor_gates());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_rejects_out_of_range() {
        let _ = HsiaoCode::secded32().column(39);
    }
}
