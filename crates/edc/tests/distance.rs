//! Brute-force verification of the codes' minimum distances — the
//! ground truth behind every correction/detection guarantee.
//!
//! For small data widths we enumerate the full codebook and check the
//! pairwise Hamming distances directly: a SECDED code needs minimum
//! distance 4, a DECTED code minimum distance 6.

use hyvec_edc::{DectedCode, EdcCode, HsiaoCode};

fn min_distance(code: &dyn EdcCode, data_bits: usize) -> u32 {
    let n = 1u64 << data_bits;
    let codewords: Vec<u64> = (0..n).map(|d| code.encode(d)).collect();
    let mut min = u32::MAX;
    for i in 0..codewords.len() {
        for j in (i + 1)..codewords.len() {
            let d = (codewords[i] ^ codewords[j]).count_ones();
            min = min.min(d);
        }
    }
    min
}

#[test]
fn hsiao_min_distance_is_exactly_four() {
    for k in [4usize, 8, 10] {
        let code = HsiaoCode::new(k).unwrap();
        let d = min_distance(&code, k);
        assert_eq!(d, 4, "Hsiao({},{k}) min distance", k + 7);
    }
}

#[test]
fn dected_min_distance_is_at_least_six() {
    for k in [4usize, 8, 10] {
        let code = DectedCode::new(k).unwrap();
        let d = min_distance(&code, k);
        assert!(d >= 6, "DECTED({},{k}) min distance {d} < 6", k + 13);
    }
}

#[test]
fn codes_are_linear() {
    // encode(a) ^ encode(b) == encode(a ^ b): both families are linear
    // codes, so the XOR of codewords is a codeword.
    let secded = HsiaoCode::secded32();
    let dected = DectedCode::dected32();
    let pairs = [
        (0x0000_0001u64, 0x8000_0000u64),
        (0xDEAD_BEEF, 0x1234_5678),
        (0xFFFF_FFFF, 0x0F0F_0F0F),
    ];
    for (a, b) in pairs {
        assert_eq!(
            secded.encode(a) ^ secded.encode(b),
            secded.encode(a ^ b),
            "Hsiao not linear at ({a:#x},{b:#x})"
        );
        assert_eq!(
            dected.encode(a) ^ dected.encode(b),
            dected.encode(a ^ b),
            "DECTED not linear at ({a:#x},{b:#x})"
        );
    }
}

#[test]
fn weight_distribution_has_no_light_codewords() {
    // Every nonzero codeword of the 32-bit codes sampled over random
    // data has weight >= the code's minimum distance.
    let secded = HsiaoCode::secded32();
    let dected = DectedCode::dected32();
    let mut x = 0x243F_6A88_85A3_08D3u64; // pi digits as a seed
    for _ in 0..20_000 {
        // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let data = x & 0xFFFF_FFFF;
        if data == 0 {
            continue;
        }
        let ws = secded.encode(data).count_ones();
        assert!(ws >= 4, "Hsiao codeword of weight {ws} for {data:#x}");
        let wd = dected.encode(data).count_ones();
        assert!(wd >= 6, "DECTED codeword of weight {wd} for {data:#x}");
    }
}
