//! Property-based tests over the EDC code families.
//!
//! These complement the exhaustive unit tests inside the crate by fuzzing
//! data words and error patterns across all supported widths.

use hyvec_edc::{Decoded, DectedCode, EdcCode, HsiaoCode, NoCode, Protection};
use proptest::prelude::*;

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

proptest! {
    #[test]
    fn hsiao_roundtrip_any_width(k in 1usize..=57, data: u64) {
        let code = HsiaoCode::new(k).unwrap();
        let cw = code.encode(data);
        prop_assert_eq!(code.decode(cw), Decoded::Clean { data: data & mask(k) });
    }

    #[test]
    fn hsiao_corrects_random_single_flips(k in 1usize..=57, data: u64, bit_sel: usize) {
        let code = HsiaoCode::new(k).unwrap();
        let cw = code.encode(data);
        let bit = bit_sel % code.total_bits();
        let out = code.decode(cw ^ (1u64 << bit));
        prop_assert_eq!(out, Decoded::Corrected { data: data & mask(k), errors: 1 });
    }

    #[test]
    fn hsiao_never_miscorrects_doubles(k in 1usize..=57, data: u64, a: usize, b: usize) {
        let code = HsiaoCode::new(k).unwrap();
        let n = code.total_bits();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let cw = code.encode(data);
        let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
        prop_assert_eq!(out, Decoded::Detected { errors_at_least: 2 });
    }

    #[test]
    fn dected_roundtrip_any_width(k in 1usize..=51, data: u64) {
        let code = DectedCode::new(k).unwrap();
        let cw = code.encode(data);
        prop_assert_eq!(code.decode(cw), Decoded::Clean { data: data & mask(k) });
    }

    #[test]
    fn dected_corrects_random_singles(k in 1usize..=51, data: u64, bit_sel: usize) {
        let code = DectedCode::new(k).unwrap();
        let cw = code.encode(data);
        let bit = bit_sel % code.total_bits();
        let out = code.decode(cw ^ (1u64 << bit));
        prop_assert_eq!(out, Decoded::Corrected { data: data & mask(k), errors: 1 });
    }

    #[test]
    fn dected_corrects_random_doubles(k in 1usize..=51, data: u64, a: usize, b: usize) {
        let code = DectedCode::new(k).unwrap();
        let n = code.total_bits();
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let cw = code.encode(data);
        let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b));
        prop_assert_eq!(out, Decoded::Corrected { data: data & mask(k), errors: 2 });
    }

    #[test]
    fn dected_detects_random_triples(k in 1usize..=51, data: u64, a: usize, b: usize, c: usize) {
        let code = DectedCode::new(k).unwrap();
        let n = code.total_bits();
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assume!(a != b && b != c && a != c);
        let cw = code.encode(data);
        let out = code.decode(cw ^ (1u64 << a) ^ (1u64 << b) ^ (1u64 << c));
        prop_assert_eq!(out, Decoded::Detected { errors_at_least: 3 });
    }

    #[test]
    fn no_code_is_transparent(k in 1usize..=64, data: u64) {
        let code = NoCode::new(k);
        prop_assert_eq!(code.encode(data), data & mask(k));
        prop_assert_eq!(code.decode(data), Decoded::Clean { data: data & mask(k) });
    }

    /// The `Protection` factory builds codes whose encode/decode agree
    /// with the concrete types.
    #[test]
    fn protection_factory_is_consistent(data: u64) {
        for prot in [Protection::None, Protection::Secded, Protection::Dected] {
            let code = prot.build(32).unwrap();
            let cw = code.encode(data);
            prop_assert_eq!(code.decode(cw).data(), Some(data & mask(32)));
            prop_assert_eq!(code.total_bits(), 32 + prot.check_bits());
        }
    }

    /// Any random corruption either decodes back to the original data or
    /// reports detection — but a detected word never silently yields
    /// wrong data (interface invariant, codes with >3 flips *may*
    /// miscorrect; here we only check the API contract that
    /// `data()`/`is_ok()` agree).
    #[test]
    fn decode_api_contract(data: u64, noise: u64) {
        let code = HsiaoCode::secded32();
        let out = code.decode(code.encode(data) ^ (noise & mask(39)));
        match out {
            Decoded::Clean { .. } | Decoded::Corrected { .. } => prop_assert!(out.is_ok()),
            Decoded::Detected { errors_at_least } => {
                prop_assert!(!out.is_ok());
                prop_assert!(errors_at_least >= 2);
            }
        }
    }
}
