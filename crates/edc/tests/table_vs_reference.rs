//! Table decode vs the retained loop-based reference decoders.
//!
//! The production decoders are table-driven (syndrome→action lookup
//! for Hsiao, syndrome-mask parities plus a syndrome→locator table for
//! DECTED); `hyvec_edc::reference` keeps the original per-bit loop
//! implementations. These tests pin the two bit-for-bit against each
//! other: exhaustively over every single- and double-bit corruption of
//! the paper's Hsiao geometries, and property-based over random words
//! and error patterns for BCH/DECTED.

use hyvec_edc::{reference, DectedCode, EdcCode, HsiaoCode};
use proptest::prelude::*;

/// Every single- and double-bit corruption of a (39,32) or (33,26)
/// Hsiao codeword decodes identically through the syndrome table and
/// the loop-based column scan — same variant, same data, same error
/// count.
#[test]
fn hsiao_tables_match_reference_on_every_single_and_double_corruption() {
    for k in [26usize, 32] {
        let code = HsiaoCode::new(k).unwrap();
        let n = code.total_bits();
        for data in [0u64, u64::MAX, 0x5A5A_5A5A_5A5A_5A5A, 0x0123_4567_89AB_CDEF] {
            let cw = code.encode(data);
            assert_eq!(code.decode(cw), reference::hsiao_decode(&code, cw));
            for a in 0..n {
                let single = cw ^ (1u64 << a);
                assert_eq!(
                    code.decode(single),
                    reference::hsiao_decode(&code, single),
                    "single flip at {a}, k={k}"
                );
                for b in (a + 1)..n {
                    let double = single ^ (1u64 << b);
                    assert_eq!(
                        code.decode(double),
                        reference::hsiao_decode(&code, double),
                        "double flip at {a},{b}, k={k}"
                    );
                }
            }
        }
    }
}

/// Beyond the SECDED guarantee the two implementations must still
/// agree — the table encodes the exact same no-column/triple-error
/// classification the scan performed. Exhaust all triples on the tag
/// geometry.
#[test]
fn hsiao_tables_match_reference_on_triple_corruptions() {
    let code = HsiaoCode::new(26).unwrap();
    let n = code.total_bits();
    let cw = code.encode(0x2BAD_F00D);
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                let word = cw ^ (1u64 << a) ^ (1u64 << b) ^ (1u64 << c);
                assert_eq!(
                    code.decode(word),
                    reference::hsiao_decode(&code, word),
                    "bits {a},{b},{c}"
                );
            }
        }
    }
}

/// Exhaustive DECTED agreement on the paper's two geometries: every
/// single and double corruption decodes identically through the
/// syndrome-mask/locator-table path and the loop/field-arithmetic
/// path.
#[test]
fn dected_tables_match_reference_on_every_single_and_double_corruption() {
    for k in [26usize, 32] {
        let code = DectedCode::new(k).unwrap();
        let n = code.total_bits();
        let cw = code.encode(0x9E37_79B9);
        assert_eq!(code.decode(cw), reference::dected_decode(&code, cw));
        for a in 0..n {
            let single = cw ^ (1u64 << a);
            assert_eq!(
                code.decode(single),
                reference::dected_decode(&code, single),
                "single flip at {a}, k={k}"
            );
            for b in (a + 1)..n {
                let double = single ^ (1u64 << b);
                assert_eq!(
                    code.decode(double),
                    reference::dected_decode(&code, double),
                    "double flip at {a},{b}, k={k}"
                );
            }
        }
    }
}

proptest! {
    /// Random words through both Hsiao decoders at every width — not
    /// just codewords with planted errors: arbitrary 64-bit garbage
    /// must classify identically too.
    #[test]
    fn hsiao_table_matches_reference_on_random_words(k in 1usize..=57, word: u64) {
        let code = HsiaoCode::new(k).unwrap();
        let total = code.total_bits();
        let word = word & if total >= 64 { u64::MAX } else { (1u64 << total) - 1 };
        prop_assert_eq!(code.decode(word), reference::hsiao_decode(&code, word));
    }

    /// Random words through both DECTED decoders at every width.
    #[test]
    fn dected_table_matches_reference_on_random_words(k in 1usize..=51, word: u64) {
        let code = DectedCode::new(k).unwrap();
        let total = code.total_bits();
        let word = word & if total >= 64 { u64::MAX } else { (1u64 << total) - 1 };
        prop_assert_eq!(code.decode(word), reference::dected_decode(&code, word));
    }

    /// Random encoded data with up to four planted flips: the table
    /// path reproduces the loop path through clean, corrected and
    /// detected outcomes alike.
    #[test]
    fn dected_table_matches_reference_on_planted_errors(
        k in 1usize..=51,
        data: u64,
        flips in prop::collection::vec(0usize..64, 0..=4),
    ) {
        let code = DectedCode::new(k).unwrap();
        let mut word = code.encode(data);
        for f in flips {
            word ^= 1u64 << (f % code.total_bits());
        }
        prop_assert_eq!(code.decode(word), reference::dected_decode(&code, word));
    }
}
