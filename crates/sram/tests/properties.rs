//! Property-based tests of the failure/yield models: monotonicity and
//! consistency invariants over the whole parameter space.

use hyvec_sram::cell::{CellKind, SizedCell};
use hyvec_sram::gauss::{q, q_inv};
use hyvec_sram::yield_model::{
    binomial, cache_yield, required_pf, required_pf_tolerant, word_ok_probability,
};
use hyvec_sram::FailureModel;
use proptest::prelude::*;

proptest! {
    /// Q is a valid decreasing CDF tail and q_inv inverts it (to the
    /// accuracy the nearly-flat far tail permits).
    #[test]
    // The lower limit is -6: for z below that, p = q(z) rounds to
    // within 1e-15 of 1.0 and the inverse is ill-conditioned in f64 —
    // a representation limit, not a solver defect. (The positive far
    // tail is fine: tiny probabilities are well-resolved.)
    fn gaussian_tail_properties(z in -6.0f64..8.0) {
        let p = q(z);
        prop_assert!(p > 0.0 && p < 1.0);
        prop_assert!(q(z + 0.1) < p);
        let back = q_inv(p);
        let tol = if z.abs() < 6.0 { 1e-6 } else { 1e-3 };
        prop_assert!((back - z).abs() < tol, "z {z} -> p {p} -> {back}");
    }

    /// Failure probability is monotone: lower voltage or smaller
    /// sizing never helps, for every cell family.
    #[test]
    fn pf_monotonicity(
        v in 0.2f64..1.2,
        s in 1.0f64..4.0,
        kind_sel in 0usize..3,
    ) {
        let kind = CellKind::ALL[kind_sel];
        let model = FailureModel::default();
        let pf = model.pf(&SizedCell::new(kind, s), v);
        prop_assert!((0.0..=1.0).contains(&pf));
        let pf_lower_v = model.pf(&SizedCell::new(kind, s), v - 0.05);
        prop_assert!(pf_lower_v >= pf, "{kind:?}: lower V must not help");
    }

    /// Above the half-failure voltage, the closed-form sizing always
    /// achieves its target.
    #[test]
    fn sizing_achieves_target(
        kind_sel in 0usize..3,
        exp in 2.0f64..9.0,
        dv in 0.06f64..0.5,
    ) {
        let kind = CellKind::ALL[kind_sel];
        let model = FailureModel::default();
        let v = model.params(kind).v_half + dv;
        let target = 10f64.powf(-exp);
        let s = model.sizing_for_pf(kind, v, target).unwrap();
        prop_assert!(s >= 1.0);
        if s <= 50.0 {
            let achieved = model.pf(&SizedCell::new(kind, s), v);
            prop_assert!(achieved <= target * 1.0001, "{kind:?}: {achieved} > {target}");
        }
    }

    /// Eq. (1) is a probability, monotone in pf and in tolerance.
    #[test]
    fn word_ok_probability_properties(
        pf in 0.0f64..0.2,
        bits in 1u32..64,
        tol in 0u32..3,
    ) {
        let p = word_ok_probability(pf, bits, tol);
        prop_assert!((0.0..=1.0).contains(&p));
        // Allow an ulp of slack: when tol >= bits both sides are
        // exactly 1 up to floating-point summation order.
        prop_assert!(word_ok_probability(pf, bits, tol + 1) >= p - 1e-12);
        if pf > 1e-9 {
            prop_assert!(word_ok_probability(pf * 0.5, bits, tol) >= p - 1e-12);
        }
    }

    /// Eq. (2) equals the independent product and shrinks with word
    /// count.
    #[test]
    fn cache_yield_properties(
        p_data in 0.9f64..1.0,
        p_tag in 0.9f64..1.0,
        dw in 1u64..2048,
        tw in 1u64..256,
    ) {
        let y = cache_yield(p_data, dw, p_tag, tw);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(cache_yield(p_data, dw + 1, p_tag, tw) <= y + 1e-12);
        let manual = p_data.powf(dw as f64) * p_tag.powf(tw as f64);
        prop_assert!((y - manual).abs() < 1e-9);
    }

    /// The inverse yield solvers roundtrip.
    #[test]
    fn required_pf_roundtrip(y in 0.5f64..0.9999, bits in 64u64..100_000) {
        let pf = required_pf(y, bits);
        prop_assert!(pf > 0.0 && pf < 1.0);
        let back = (1.0 - pf).powf(bits as f64);
        prop_assert!((back - y).abs() < 1e-6);
    }

    /// The tolerant inverse is consistent with the forward model.
    #[test]
    fn required_pf_tolerant_roundtrip(
        y in 0.9f64..0.9999,
        words in 16u64..2048,
        bits in 16u32..64,
        tol in 0u32..2,
    ) {
        let pf = required_pf_tolerant(y, words, bits, tol);
        let back = word_ok_probability(pf, bits, tol).powf(words as f64);
        prop_assert!((back - y).abs() < 1e-6, "y {y} back {back}");
    }

    /// Pascal's rule holds for the binomial helper.
    #[test]
    fn binomial_pascal(n in 1u32..60, k in 1u32..59) {
        prop_assume!(k <= n);
        let lhs = binomial(n + 1, k);
        let rhs = binomial(n, k) + binomial(n, k - 1);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.max(1.0));
    }

    /// Cell geometry scales consistently: area grows with sizing but
    /// sublinearly; leakage superlinearly; both positive.
    #[test]
    fn cell_scaling_laws(kind_sel in 0usize..3, s in 1.0f64..5.0) {
        let kind = CellKind::ALL[kind_sel];
        let small = SizedCell::new(kind, s);
        let big = SizedCell::new(kind, s * 1.5);
        prop_assert!(big.area_um2() > small.area_um2());
        prop_assert!(big.area_um2() < 1.5 * small.area_um2(), "sublinear area");
        let (ls, lb) = (small.leakage_na(0.35), big.leakage_na(0.35));
        prop_assert!(lb > 1.5 * ls, "superlinear leakage");
        prop_assert!(big.bitline_cap_ff() > small.bitline_cap_ff());
    }
}
