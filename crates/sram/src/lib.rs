//! # hyvec-sram — SRAM cell library, failure model and yield math
//!
//! This crate provides the device-level substrate of the hybrid-voltage
//! cache study of Maric et al. (DATE 2013):
//!
//! * [`cell`] — the three bitcell families used by the paper
//!   (differential 6T, read-port 8T after Morita et al., Schmitt-trigger
//!   10T after Kulkarni et al.) with their geometric and electrical
//!   characteristics at the 32nm node;
//! * [`failure`] — an analytic stand-in for the importance-sampling
//!   failure analysis of Chen et al. (ICCAD 2007): per-cell hard-failure
//!   probability as a function of supply voltage and transistor sizing,
//!   with sizing reducing threshold-voltage spread per Pelgrom's law;
//! * [`yield_model`] — the paper's Equations (1) and (2): probability of
//!   a fault-free (or correctable) tag/data word and whole-cache yield,
//!   plus the inverse problem (required bit-failure rate for a target
//!   yield) used for the paper's `Pf = 1.22e-6` example;
//! * [`gauss`] — high-accuracy Gaussian tail and quantile functions the
//!   failure model is built on.
//!
//! # Example: the paper's sizing anchor
//!
//! ```
//! use hyvec_sram::yield_model::required_pf;
//!
//! // "to have a 99% yield for an 8KB cache, faulty bit rate Pf must be
//! //  1.22e-6" (paper, Sec. III-C; computed over the 8192 data bits of
//! //  one 1KB ULE way).
//! let pf = required_pf(0.99, 8192);
//! assert!((pf - 1.22e-6).abs() < 0.01e-6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cell;
pub mod failure;
pub mod gauss;
pub mod yield_model;

pub use cell::{CellKind, SizedCell};
pub use failure::FailureModel;
