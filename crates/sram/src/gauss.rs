//! Gaussian tail probabilities and quantiles.
//!
//! The failure model expresses a cell's hard-failure probability as the
//! upper tail `Q(z)` of a standard normal — the probability that the
//! threshold-voltage deviation of a critical transistor exceeds the
//! cell's static margin. Failure rates of interest reach below 1e-9, so
//! the asymptotic regime matters: `erfc` is computed with a Taylor
//! series for small arguments and a Lentz continued fraction for large
//! ones, giving ~1e-13 relative accuracy across the whole range.

/// Complementary error function, accurate to ~1e-13 relative error.
///
/// ```
/// use hyvec_sram::gauss::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-14);
/// assert!(erfc(5.0) < 2e-11);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Error function via its Maclaurin series (converges quickly for
/// `|x| < 2`).
fn erf_series(x: f64) -> f64 {
    const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0usize;
    loop {
        n += 1;
        // term_{n} = term_{n-1} * (-x^2) / n, contributing /(2n+1).
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Continued-fraction expansion of `erfc` (modified Lentz), valid for
/// `x >= 2`:
/// `erfc(x) = exp(-x^2)/(x*sqrt(pi)) * 1/(1 + 1/(2x^2)/(1 + 2/(2x^2)/...))`
fn erfc_cf(x: f64) -> f64 {
    // sqrt(pi), to full f64 precision.
    #[allow(clippy::approx_constant)]
    const SQRT_PI: f64 = 1.772_453_850_905_516;
    let x2 = x * x;
    let tiny = 1e-300;
    let mut f = tiny;
    let mut c = f;
    let mut d = 0.0;
    // Continued fraction: b0 = 1, a_n = n/(2x^2), b_n = 1.
    for n in 0..300 {
        let a = if n == 0 { 1.0 } else { n as f64 / (2.0 * x2) };
        let b = 1.0;
        d = b + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((-x2).exp() / (x * SQRT_PI)) * f
}

/// Upper-tail probability of the standard normal:
/// `Q(z) = P(X > z) = erfc(z / sqrt(2)) / 2`.
///
/// ```
/// use hyvec_sram::gauss::q;
/// assert!((q(0.0) - 0.5).abs() < 1e-14);
/// // The classic 4.75-sigma point is about 1e-6.
/// assert!((q(4.753424) - 1.0e-6).abs() < 1e-8);
/// ```
pub fn q(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Inverse of [`q`]: the `z` with `Q(z) = p`, for `p in (0, 1)`.
///
/// Solved by bisection on the monotone tail; accurate to ~1e-12 in `z`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn q_inv(p: f64) -> f64 {
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): Q^-1 is only defined on (0,1)")
    assert!(p > 0.0 && p < 1.0, "q_inv requires p in (0,1), got {p}");
    let (mut lo, mut hi) = (-40.0f64, 40.0f64);
    // q is strictly decreasing: q(lo) ~ 1, q(hi) ~ 0.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables / mpmath.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.479_500_122_186_953_5),
            (1.0, 0.157_299_207_050_285_13),
            (2.0, 0.004_677_734_981_063_6),
            (3.0, 2.209_049_699_858_544e-5),
            (4.0, 1.541_725_790_028_002e-8),
            (5.0, 1.537_459_794_428_035e-12),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "erfc({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erfc_negative_symmetry() {
        for x in [0.1, 0.7, 1.5, 3.0] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-13);
        }
    }

    #[test]
    fn q_reference_values() {
        // Standard normal tail: Q(1.96) ~ 0.025, Q(3) ~ 1.35e-3,
        // Q(6) ~ 9.87e-10.
        assert!((q(1.959_963_984_540_054) - 0.025).abs() < 1e-12);
        assert!(((q(3.0) - 1.349_898_031_630_095e-3) / 1.35e-3).abs() < 1e-9);
        assert!(((q(6.0) - 9.865_876_450_376_946e-10) / 9.87e-10).abs() < 1e-8);
    }

    #[test]
    fn q_is_monotone_decreasing() {
        let mut prev = q(-8.0);
        let mut z = -8.0;
        while z <= 8.0 {
            z += 0.25;
            let cur = q(z);
            assert!(cur < prev, "q not decreasing at z={z}");
            prev = cur;
        }
    }

    #[test]
    fn q_inv_roundtrips() {
        for p in [0.4, 0.1, 1e-2, 1e-4, 1e-6, 1e-9, 1e-12] {
            let z = q_inv(p);
            let back = q(z);
            assert!(
                ((back - p) / p).abs() < 1e-9,
                "roundtrip failed: p={p}, z={z}, q(z)={back}"
            );
        }
    }

    #[test]
    fn q_inv_known_quantiles() {
        assert!((q_inv(0.5) - 0.0).abs() < 1e-10);
        assert!((q_inv(0.025) - 1.959_963_984_540_054).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn q_inv_rejects_out_of_range() {
        let _ = q_inv(1.5);
    }
}
