//! Cache yield mathematics — Equations (1) and (2) of the paper.
//!
//! A cache way is manufacturable ("yields") when every protected word
//! can still operate correctly: an unprotected word must be completely
//! fault-free, while an EDC-protected word may contain up to as many
//! hard-faulty bits as the code can dedicate to hard faults (1 for
//! SECDED in scenario A, 1 for DECTED in scenario B — DECTED's second
//! correction is reserved for a runtime soft error).
//!
//! Equation (1):
//! `P(word) = sum_{i=0}^{t} C(n+k, i) * Pf^i * (1-Pf)^(n+k-i)`
//!
//! Equation (2):
//! `Y = P(data)^DW * P(tag)^TW`

/// Probability that an `(n + k)`-bit word with per-bit hard-failure
/// probability `pf` has at most `tolerable` faulty bits — the paper's
/// Equation (1) generalized over the fault budget (`tolerable = 0` for
/// no coding, `1` for SECDED/DECTED as used in the paper).
///
/// # Panics
///
/// Panics if `pf` is outside `[0, 1]`.
///
/// ```
/// use hyvec_sram::yield_model::word_ok_probability;
///
/// // A fault-free 32-bit word with no coding:
/// let p = word_ok_probability(1e-3, 32, 0);
/// assert!((p - (1.0f64 - 1e-3).powi(32)).abs() < 1e-12);
/// // SECDED makes the same bit-failure rate far more survivable:
/// assert!(word_ok_probability(1e-3, 39, 1) > p);
/// ```
pub fn word_ok_probability(pf: f64, total_bits: u32, tolerable: u32) -> f64 {
    // hyvec-lint: allow(no-panic, "documented precondition: probabilities outside [0,1] are a caller bug")
    assert!((0.0..=1.0).contains(&pf), "pf must be in [0,1], got {pf}");
    let n = total_bits;
    let mut acc = 0.0f64;
    for i in 0..=tolerable.min(n) {
        acc += binomial(n, i) * pf.powi(i as i32) * (1.0 - pf).powi((n - i) as i32);
    }
    acc.min(1.0)
}

/// Whole-cache (or way) yield — the paper's Equation (2):
/// `Y = P(data)^DW * P(tag)^TW`.
///
/// `dw` and `tw` are the number of data and tag words in the protected
/// array.
pub fn cache_yield(p_data: f64, dw: u64, p_tag: f64, tw: u64) -> f64 {
    powi_u64(p_data, dw) * powi_u64(p_tag, tw)
}

/// The bit-failure rate that yields exactly `target_yield` over `bits`
/// unprotected bits: `Pf = 1 - Y^(1/bits)`.
///
/// This is the "elementary probability calculation" behind the paper's
/// example: `required_pf(0.99, 8192) = 1.22e-6`.
///
/// # Panics
///
/// Panics if `target_yield` is not in `(0, 1)` or `bits == 0`.
pub fn required_pf(target_yield: f64, bits: u64) -> f64 {
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): the closed form needs yield in (0,1)")
    assert!(
        target_yield > 0.0 && target_yield < 1.0,
        "yield must be in (0,1), got {target_yield}"
    );
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): a zero-bit array has no failure rate")
    assert!(bits > 0, "bits must be positive");
    1.0 - target_yield.powf(1.0 / bits as f64)
}

/// The bit-failure rate at which `words` words of `bits_per_word` bits,
/// each tolerating up to `tolerable` hard faults, reach exactly
/// `target_yield` — the generalization of [`required_pf`] to
/// EDC-protected baselines (scenario B's `6T+SECDED` anchor).
///
/// Solved by bisection on the monotone yield curve. With
/// `tolerable = 0` it agrees with the closed-form [`required_pf`].
///
/// # Panics
///
/// Panics if `target_yield` is not in `(0, 1)` or `words == 0` or
/// `bits_per_word == 0`.
pub fn required_pf_tolerant(
    target_yield: f64,
    words: u64,
    bits_per_word: u32,
    tolerable: u32,
) -> f64 {
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): bisection needs yield in (0,1)")
    assert!(
        target_yield > 0.0 && target_yield < 1.0,
        "yield must be in (0,1), got {target_yield}"
    );
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): an empty array has no yield curve")
    assert!(words > 0 && bits_per_word > 0, "geometry must be nonzero");
    let yield_at = |pf: f64| powi_u64(word_ok_probability(pf, bits_per_word, tolerable), words);
    let (mut lo, mut hi) = (0.0f64, 0.5f64);
    // yield_at is decreasing in pf: yield_at(lo) = 1 > target.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if yield_at(mid) > target_yield {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Binomial coefficient `C(n, k)` as `f64` (exact for the small `k`
/// used by Eq. (1)).
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

fn powi_u64(base: f64, mut exp: u64) -> f64 {
    let mut acc = 1.0f64;
    let mut b = base;
    while exp > 0 {
        if exp & 1 == 1 {
            acc *= b;
        }
        b *= b;
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_pf_for_99_percent_yield() {
        // Paper Sec. III-C: 99% yield over the 8K-bit example gives
        // Pf = 1.22e-6.
        let pf = required_pf(0.99, 8192);
        assert!(
            (pf - 1.2268e-6).abs() < 1e-9,
            "anchor mismatch: got {pf}, want ~1.2268e-6"
        );
    }

    #[test]
    fn required_pf_roundtrips_through_yield() {
        for (y, bits) in [(0.99, 8192u64), (0.95, 65536), (0.999, 1024)] {
            let pf = required_pf(y, bits);
            // Unprotected: every bit must work.
            let back = powi_u64(1.0 - pf, bits);
            assert!((back - y).abs() < 1e-9, "y={y}, bits={bits}");
        }
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(39, 0), 1.0);
        assert_eq!(binomial(39, 1), 39.0);
        assert_eq!(binomial(39, 2), 741.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 6), 0.0);
        assert_eq!(binomial(45, 2), 990.0);
    }

    #[test]
    fn word_ok_probability_limits() {
        assert_eq!(word_ok_probability(0.0, 39, 0), 1.0);
        assert_eq!(word_ok_probability(0.0, 39, 1), 1.0);
        assert!(word_ok_probability(1.0, 39, 1) < 1e-30);
        // tolerable >= bits means always OK.
        assert!((word_ok_probability(0.5, 4, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_strictly_helps() {
        let pf = 5e-4;
        let none = word_ok_probability(pf, 39, 0);
        let one = word_ok_probability(pf, 39, 1);
        let two = word_ok_probability(pf, 45, 2);
        assert!(one > none);
        assert!(two > word_ok_probability(pf, 45, 1));
    }

    #[test]
    fn eq1_matches_closed_form_for_secded() {
        // For tolerable = 1: P = (1-p)^n + n p (1-p)^(n-1).
        let (pf, n) = (1e-3, 39u32);
        let got = word_ok_probability(pf, n, 1);
        let want = (1.0 - pf).powi(39) + 39.0 * pf * (1.0 - pf).powi(38);
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn eq2_cache_yield_composition() {
        let y = cache_yield(0.999, 256, 0.9999, 32);
        let want = 0.999f64.powi(256) * 0.9999f64.powi(32);
        assert!((y - want).abs() < 1e-12);
        // More words -> lower yield.
        assert!(cache_yield(0.999, 512, 0.9999, 32) < y);
    }

    #[test]
    fn secded_rescues_marginal_bit_failure_rates() {
        // The crux of the proposal: a bit-failure rate catastrophic for
        // unprotected words is survivable at word granularity with one
        // correctable fault per word.
        let pf = 3e-4; // marginal 8T at NST after modest upsizing
        let dw = 256u64; // 1KB ULE way of 32-bit words
        let tw = 32u64;
        let unprotected = cache_yield(
            word_ok_probability(pf, 32, 0),
            dw,
            word_ok_probability(pf, 26, 0),
            tw,
        );
        let secded = cache_yield(
            word_ok_probability(pf, 39, 1),
            dw,
            word_ok_probability(pf, 33, 1),
            tw,
        );
        assert!(unprotected < 0.10, "unprotected should fail: {unprotected}");
        assert!(secded > 0.95, "SECDED should rescue: {secded}");
    }

    #[test]
    fn tolerant_inverse_agrees_with_closed_form_at_tol_zero() {
        // 8192 bits as 256 words of 32: identical to the flat formula.
        let flat = required_pf(0.99, 8192);
        let word = required_pf_tolerant(0.99, 256, 32, 0);
        assert!(
            ((flat - word) / flat).abs() < 1e-6,
            "flat {flat} vs word {word}"
        );
    }

    #[test]
    fn tolerant_inverse_roundtrips() {
        for (y, words, bits, tol) in [
            (0.99, 256u64, 39u32, 1u32),
            (0.95, 64, 45, 1),
            (0.999, 2048, 39, 1),
        ] {
            let pf = required_pf_tolerant(y, words, bits, tol);
            let back = powi_u64(word_ok_probability(pf, bits, tol), words);
            assert!((back - y).abs() < 1e-9, "y={y} words={words}");
        }
    }

    #[test]
    fn tolerance_relaxes_the_required_pf_by_orders_of_magnitude() {
        // The crux of scenario B's anchor: a SECDED-protected baseline
        // can live with a far higher bit-failure rate.
        let strict = required_pf_tolerant(0.99, 256, 32, 0);
        let relaxed = required_pf_tolerant(0.99, 256, 39, 1);
        assert!(relaxed > 30.0 * strict, "{relaxed} vs {strict}");
    }

    #[test]
    #[should_panic(expected = "pf must be in")]
    fn word_ok_rejects_bad_pf() {
        let _ = word_ok_probability(1.5, 39, 1);
    }

    #[test]
    #[should_panic(expected = "yield must be in")]
    fn required_pf_rejects_bad_yield() {
        let _ = required_pf(1.0, 100);
    }
}
