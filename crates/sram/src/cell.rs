//! The SRAM bitcell library: differential 6T, read-port 8T and
//! Schmitt-trigger 10T cells at the 32nm node.
//!
//! The numbers below are representative of published 32nm designs: the
//! 6T area follows foundry high-density cells (~0.15 µm²); the 8T cell
//! (Morita et al., VLSI'07) adds a two-transistor single-ended read port
//! (~1.3x area); the Schmitt-trigger 10T (Kulkarni et al., ISLPED'07)
//! adds four feedback devices for sub-threshold robustness (~1.9x at
//! minimum drawn size). What matters for the reproduction is not the
//! absolute values but the *ordering and scaling*: dynamic energy tracks
//! switched bitline capacitance (hence cell size and bitline count),
//! leakage tracks total device width, and robustness tracks both the
//! cell topology and the transistor sizing.

use std::fmt;

/// The bitcell families considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Differential six-transistor cell: smallest and fastest, only
    /// reliable at high voltage. Used for the HP ways.
    Sram6T,
    /// Eight-transistor cell with a decoupled single-ended read port:
    /// moderate area, robust to mid/low voltage. The paper's proposed
    /// replacement for the ULE ways (plus EDC).
    Sram8T,
    /// Schmitt-trigger ten-transistor cell: large, robust down to
    /// near-/sub-threshold. The baseline ULE-way cell.
    Sram10T,
}

impl CellKind {
    /// All cell kinds, in increasing transistor count.
    pub const ALL: [CellKind; 3] = [CellKind::Sram6T, CellKind::Sram8T, CellKind::Sram10T];

    /// Number of transistors in the cell.
    pub fn transistors(self) -> u32 {
        match self {
            CellKind::Sram6T => 6,
            CellKind::Sram8T => 8,
            CellKind::Sram10T => 10,
        }
    }

    /// Cell area in µm² at minimum drawn transistor sizes (32nm node).
    pub fn min_area_um2(self) -> f64 {
        match self {
            CellKind::Sram6T => 0.150,
            CellKind::Sram8T => 0.195,
            CellKind::Sram10T => 0.285,
        }
    }

    /// Number of bitlines switched on a read access.
    ///
    /// The 6T and 10T cells read differentially (two bitlines
    /// precharged and partially discharged); the 8T cell reads through
    /// its decoupled single-ended port (one bitline).
    pub fn read_bitlines(self) -> u32 {
        match self {
            CellKind::Sram6T | CellKind::Sram10T => 2,
            CellKind::Sram8T => 1,
        }
    }

    /// Number of bitlines driven full-swing on a write access (two for
    /// all three cells: writes go through the differential write port).
    pub fn write_bitlines(self) -> u32 {
        2
    }

    /// Fraction of the supply swing developed on the bitline during a
    /// read before the sensing circuit resolves.
    ///
    /// Differential reads (6T, 10T) resolve at a small sense-amp
    /// swing; the decoupled 8T read port discharges its single-ended
    /// bitline to a moderate swing before the skewed-inverter sense
    /// point trips.
    pub fn read_swing_fraction(self) -> f64 {
        match self {
            CellKind::Sram6T | CellKind::Sram10T => 0.18,
            CellKind::Sram8T => 0.22,
        }
    }

    /// Drain capacitance presented to the bitline per cell at minimum
    /// size, in femtofarads. Scales linearly with transistor sizing.
    pub fn bitline_cap_min_ff(self) -> f64 {
        match self {
            CellKind::Sram6T => 0.10,
            // The decoupled read stack presents a slightly larger drain.
            CellKind::Sram8T => 0.11,
            // The ST feedback devices load the bitline further.
            CellKind::Sram10T => 0.15,
        }
    }

    /// Nominal per-transistor subthreshold leakage at minimum size and
    /// the *high* supply (1.0V, 25C), in nanoamps.
    pub fn leak_na_per_transistor(self) -> f64 {
        match self {
            CellKind::Sram6T => 0.60,
            CellKind::Sram8T => 0.55,
            // Stacked ST devices leak slightly less per transistor.
            CellKind::Sram10T => 0.50,
        }
    }

    /// Human-readable short name as used in the paper ("6T", "8T",
    /// "10T").
    pub fn short_name(self) -> &'static str {
        match self {
            CellKind::Sram6T => "6T",
            CellKind::Sram8T => "8T",
            CellKind::Sram10T => "10T",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Layout model: fraction of the cell footprint that scales with
/// transistor sizing (diffusion and gates) versus fixed overhead
/// (contacts, well spacing, wiring pitch).
const AREA_SCALING_FRACTION: f64 = 0.6;

/// Cell aspect ratio (width / height) used to derive bitline wire
/// length per cell from the footprint.
const CELL_ASPECT: f64 = 2.0;

/// Effective leakage sizing exponent: upsizing a device by `s`
/// multiplies its leakage by `s^LEAK_SIZING_EXPONENT`.
///
/// Leakage grows slightly super-linearly with drawn width at 32nm
/// (inverse narrow-width effect lowers the threshold of wider devices).
/// This is the mechanism behind the paper's observation that the
/// *relative* leakage savings of the smaller 8T cells exceed the
/// dynamic-energy savings (Sec. IV-B.2).
const LEAK_SIZING_EXPONENT: f64 = 2.2;

/// DIBL-style supply sensitivity of subthreshold leakage: leakage
/// scales as `exp(LEAK_VDD_SENSITIVITY * (vdd - 1.0))`.
const LEAK_VDD_SENSITIVITY: f64 = 6.5;

/// A bitcell with a concrete transistor sizing factor.
///
/// `sizing = 1.0` is the minimum drawn size for the node; the design
/// methodology of the paper (Fig. 2) searches over this factor.
///
/// # Example
///
/// ```
/// use hyvec_sram::cell::{CellKind, SizedCell};
///
/// let min = SizedCell::new(CellKind::Sram10T, 1.0);
/// let sized = SizedCell::new(CellKind::Sram10T, 2.0);
/// assert!(sized.area_um2() > min.area_um2());
/// assert!(sized.leakage_na(0.35) > min.leakage_na(0.35));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedCell {
    kind: CellKind,
    sizing: f64,
}

impl SizedCell {
    /// Creates a sized cell.
    ///
    /// # Panics
    ///
    /// Panics if `sizing < 1.0` (below minimum drawn size) or is not
    /// finite.
    pub fn new(kind: CellKind, sizing: f64) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): below minimum drawn size is a caller bug")
        assert!(
            sizing.is_finite() && sizing >= 1.0,
            "sizing factor must be >= 1.0, got {sizing}"
        );
        SizedCell { kind, sizing }
    }

    /// The cell family.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The transistor sizing factor (1.0 = minimum size).
    pub fn sizing(&self) -> f64 {
        self.sizing
    }

    /// Cell footprint in µm², combining the sizing-dependent diffusion
    /// area with the fixed layout overhead.
    pub fn area_um2(&self) -> f64 {
        self.kind.min_area_um2()
            * ((1.0 - AREA_SCALING_FRACTION) + AREA_SCALING_FRACTION * self.sizing)
    }

    /// Cell height in µm (the direction bitlines run), from the
    /// footprint and the fixed aspect ratio.
    pub fn height_um(&self) -> f64 {
        (self.area_um2() / CELL_ASPECT).sqrt()
    }

    /// Cell width in µm (the direction wordlines run).
    pub fn width_um(&self) -> f64 {
        self.height_um() * CELL_ASPECT
    }

    /// Drain capacitance presented to one bitline, in fF.
    pub fn bitline_cap_ff(&self) -> f64 {
        self.kind.bitline_cap_min_ff() * self.sizing
    }

    /// Gate capacitance presented to the wordline, in fF (two access
    /// devices for the write port; the 8T read port adds one more).
    pub fn wordline_cap_ff(&self) -> f64 {
        let access_devices = match self.kind {
            CellKind::Sram6T => 2.0,
            CellKind::Sram8T => 3.0,
            CellKind::Sram10T => 2.0,
        };
        0.05 * access_devices * self.sizing
    }

    /// Total cell leakage current at supply `vdd` (volts), in nA.
    ///
    /// Scales with transistor count, super-linearly with sizing (the
    /// inverse-narrow-width effect, exponent 2.2) and exponentially
    /// with supply (DIBL).
    pub fn leakage_na(&self, vdd: f64) -> f64 {
        self.kind.leak_na_per_transistor()
            * f64::from(self.kind.transistors())
            * self.sizing.powf(LEAK_SIZING_EXPONENT)
            * (LEAK_VDD_SENSITIVITY * (vdd - 1.0)).exp()
    }

    /// Cell read-current delay factor relative to a minimum-size 6T at
    /// 1V: larger means slower. At near-threshold voltages the drive
    /// current collapses exponentially; upsizing claws some back
    /// linearly.
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        // Effective threshold of the read stack.
        let vt = match self.kind {
            CellKind::Sram6T => 0.32,
            CellKind::Sram8T => 0.30,
            // Two stacked devices in the ST read path.
            CellKind::Sram10T => 0.36,
        };
        // alpha-power-law-inspired on-current proxy with subthreshold
        // fallback below Vt.
        let drive = if vdd > vt + 0.05 {
            (vdd - vt).powf(1.3)
        } else {
            // Subthreshold conduction: exponential in (vdd - vt).
            0.05f64.powf(1.3) * ((vdd - vt - 0.05) / 0.055).exp()
        };
        let reference = (1.0f64 - 0.32).powf(1.3);
        (reference / drive) * (vdd / 1.0) / self.sizing.clamp(1.0, 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts() {
        assert_eq!(CellKind::Sram6T.transistors(), 6);
        assert_eq!(CellKind::Sram8T.transistors(), 8);
        assert_eq!(CellKind::Sram10T.transistors(), 10);
    }

    #[test]
    fn area_ordering_matches_topology() {
        // 6T < 8T < 10T at equal sizing — the premise of the paper.
        assert!(CellKind::Sram6T.min_area_um2() < CellKind::Sram8T.min_area_um2());
        assert!(CellKind::Sram8T.min_area_um2() < CellKind::Sram10T.min_area_um2());
    }

    #[test]
    fn eight_t_reads_single_ended() {
        assert_eq!(CellKind::Sram8T.read_bitlines(), 1);
        assert_eq!(CellKind::Sram6T.read_bitlines(), 2);
        assert_eq!(CellKind::Sram10T.read_bitlines(), 2);
    }

    #[test]
    fn area_grows_sublinearly_with_sizing() {
        let c1 = SizedCell::new(CellKind::Sram10T, 1.0);
        let c2 = SizedCell::new(CellKind::Sram10T, 2.0);
        assert!(c2.area_um2() > c1.area_um2());
        // Doubling transistor sizes must not double the full footprint
        // (fixed layout overhead).
        assert!(c2.area_um2() < 2.0 * c1.area_um2());
        assert!((c2.area_um2() / c1.area_um2() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn geometry_is_consistent() {
        let c = SizedCell::new(CellKind::Sram6T, 1.0);
        assert!((c.height_um() * c.width_um() - c.area_um2()).abs() < 1e-12);
        assert!(c.width_um() > c.height_um());
    }

    #[test]
    fn leakage_scales_superlinearly_with_sizing() {
        let c1 = SizedCell::new(CellKind::Sram8T, 1.0);
        let c2 = SizedCell::new(CellKind::Sram8T, 2.0);
        let ratio = c2.leakage_na(0.35) / c1.leakage_na(0.35);
        assert!(
            ratio > 4.0 && ratio < 5.2,
            "leakage sizing exponent out of range: ratio {ratio}"
        );
    }

    #[test]
    fn leakage_drops_steeply_with_vdd() {
        let c = SizedCell::new(CellKind::Sram10T, 1.0);
        let high = c.leakage_na(1.0);
        let low = c.leakage_na(0.35);
        assert!(low < high * 0.3, "DIBL reduction too weak: {low} vs {high}");
        assert!(low > 0.0);
    }

    #[test]
    fn delay_explodes_at_nst_voltage() {
        let c = SizedCell::new(CellKind::Sram6T, 1.0);
        let at_1v = c.delay_factor(1.0);
        let at_nst = c.delay_factor(0.35);
        assert!(
            (at_1v - 1.0).abs() < 1e-9,
            "1V min-size 6T is the reference"
        );
        // 1 GHz -> 5 MHz leaves huge timing slack; the cell itself must
        // still get dramatically slower at 350mV (order tens of x).
        assert!(at_nst > 10.0, "NST delay factor too small: {at_nst}");
    }

    #[test]
    fn upsizing_speeds_cells_up() {
        let slow = SizedCell::new(CellKind::Sram10T, 1.0);
        let fast = SizedCell::new(CellKind::Sram10T, 2.0);
        assert!(fast.delay_factor(0.35) < slow.delay_factor(0.35));
    }

    #[test]
    #[should_panic(expected = "sizing factor")]
    fn rejects_sub_minimum_sizing() {
        let _ = SizedCell::new(CellKind::Sram6T, 0.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Sram6T.to_string(), "6T");
        assert_eq!(CellKind::Sram8T.to_string(), "8T");
        assert_eq!(CellKind::Sram10T.to_string(), "10T");
    }
}
