//! Hard-failure probability of SRAM bitcells as a function of supply
//! voltage and transistor sizing.
//!
//! The paper sizes its cells using the importance-sampling analysis of
//! Chen et al. (ICCAD 2007), which estimates the probability that
//! process variation (dominated by random dopant fluctuation of the
//! threshold voltage) makes a cell unreadable/unwritable at a given
//! supply. That toolchain is not available, so this module provides an
//! analytic model with the same interface and the same structural
//! behaviour:
//!
//! * each cell family has a *half-failure voltage* `v_half` — the supply
//!   at which half of minimum-size cells fail — reflecting its intrinsic
//!   topology robustness (ST-10T < 8T << 6T), and a voltage-equivalent
//!   variability spread `sigma_v`;
//! * the hard-failure probability of a cell sized by factor `s` at
//!   supply `v` is the Gaussian tail
//!   `Pf = Q( s * (v - v_half) / sigma_v )` — upsizing narrows the
//!   spread linearly because `sigma_Vt ~ A_vt / sqrt(W*L)` (Pelgrom) and
//!   both dimensions grow with `s`.
//!
//! The default constants are calibrated so a minimum-size 6T at 1.0V
//! lands at the paper's anchor `Pf ~ 1.22e-6` (99% yield for the 8K-bit
//! example of Sec. III-C).

use crate::cell::{CellKind, SizedCell};
use crate::gauss::{q, q_inv};
use std::error::Error;
use std::fmt;

/// Reliability parameters of one cell family (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityParams {
    /// Supply voltage at which a minimum-size cell fails with
    /// probability 1/2.
    pub v_half: f64,
    /// Voltage-equivalent sigma of the failure margin at minimum size.
    pub sigma_v: f64,
}

/// Smallest transistor-sizing increment manufacturable at the target
/// node; the methodology of Fig. 2 increases sizes "by the minimal
/// amount possible for the targeted technology".
pub const SIZING_STEP: f64 = 0.05;

/// Error returned when a sizing request cannot be met.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizingError {
    /// The supply is at or below the cell family's half-failure voltage:
    /// no amount of upsizing reaches the target failure rate.
    VoltageTooLow {
        /// The requested operating voltage.
        vdd: f64,
        /// The cell family's half-failure voltage.
        v_half: f64,
    },
    /// The target failure probability is not in `(0, 1)`.
    InvalidTarget {
        /// The requested failure probability.
        target_pf: f64,
    },
}

impl fmt::Display for SizingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SizingError::VoltageTooLow { vdd, v_half } => write!(
                f,
                "supply {vdd} V is at or below the cell's half-failure voltage {v_half} V"
            ),
            SizingError::InvalidTarget { target_pf } => {
                write!(f, "target failure probability {target_pf} not in (0, 1)")
            }
        }
    }
}

impl Error for SizingError {}

/// The failure model: per-family reliability parameters plus the
/// Gaussian-tail evaluation.
///
/// # Example
///
/// ```
/// use hyvec_sram::{CellKind, FailureModel, SizedCell};
///
/// let model = FailureModel::default();
/// // A minimum-size 6T at nominal voltage is near the paper's anchor.
/// let pf = model.pf(&SizedCell::new(CellKind::Sram6T, 1.0), 1.0);
/// assert!(pf > 1e-7 && pf < 1e-5);
/// // The same cell at 350 mV is hopeless — that is why HP ways are
/// // turned off at ULE mode.
/// assert!(model.pf(&SizedCell::new(CellKind::Sram6T, 1.0), 0.35) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    p6t: ReliabilityParams,
    p8t: ReliabilityParams,
    p10t: ReliabilityParams,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            p6t: ReliabilityParams {
                v_half: 0.60,
                sigma_v: 0.085,
            },
            p8t: ReliabilityParams {
                v_half: 0.28,
                sigma_v: 0.034,
            },
            p10t: ReliabilityParams {
                v_half: 0.245,
                sigma_v: 0.058,
            },
        }
    }
}

impl FailureModel {
    /// Creates the default 32nm model (see module docs for calibration).
    pub fn new() -> Self {
        FailureModel::default()
    }

    /// The reliability parameters of `kind`.
    pub fn params(&self, kind: CellKind) -> ReliabilityParams {
        match kind {
            CellKind::Sram6T => self.p6t,
            CellKind::Sram8T => self.p8t,
            CellKind::Sram10T => self.p10t,
        }
    }

    /// Replaces the parameters of `kind` (for sensitivity studies).
    pub fn set_params(&mut self, kind: CellKind, params: ReliabilityParams) {
        match kind {
            CellKind::Sram6T => self.p6t = params,
            CellKind::Sram8T => self.p8t = params,
            CellKind::Sram10T => self.p10t = params,
        }
    }

    /// Hard-failure probability of `cell` operated at `vdd` volts.
    pub fn pf(&self, cell: &SizedCell, vdd: f64) -> f64 {
        let p = self.params(cell.kind());
        let z = cell.sizing() * (vdd - p.v_half) / p.sigma_v;
        q(z)
    }

    /// The minimum sizing factor (quantized up to [`SIZING_STEP`], and
    /// at least 1.0) for `kind` to reach `target_pf` at `vdd` volts.
    ///
    /// This is the closed-form inverse of [`pf`](FailureModel::pf); the
    /// iterative loop of the paper's Fig. 2 methodology converges to the
    /// same value and is implemented in `hyvec-core`.
    ///
    /// # Errors
    ///
    /// * [`SizingError::VoltageTooLow`] if `vdd <= v_half` for the
    ///   family — no sizing can help below the topology's limit;
    /// * [`SizingError::InvalidTarget`] if `target_pf` is not in (0,1).
    pub fn sizing_for_pf(
        &self,
        kind: CellKind,
        vdd: f64,
        target_pf: f64,
    ) -> Result<f64, SizingError> {
        if !(target_pf > 0.0 && target_pf < 1.0) {
            return Err(SizingError::InvalidTarget { target_pf });
        }
        let p = self.params(kind);
        if vdd <= p.v_half {
            return Err(SizingError::VoltageTooLow {
                vdd,
                v_half: p.v_half,
            });
        }
        let z_needed = q_inv(target_pf);
        let raw = z_needed * p.sigma_v / (vdd - p.v_half);
        Ok(quantize_sizing(raw))
    }
}

/// Rounds a sizing factor up to the next manufacturable step, with a
/// floor at the minimum size 1.0.
pub fn quantize_sizing(raw: f64) -> f64 {
    let clamped = raw.max(1.0);
    let steps = (clamped / SIZING_STEP).ceil();
    let quantized = steps * SIZING_STEP;
    // Guard against floating-point residue (e.g. 1.0000000000000002).
    (quantized * 1e9).round() / 1e9
}

/// Soft-error (single-event-upset) rate model.
///
/// Lowering the supply reduces the critical charge of a node roughly
/// linearly, which raises the upset rate roughly exponentially. Only
/// the *relative* behaviour matters for the reproduction: at ULE
/// voltage soft errors are common enough that scenario B insists on
/// correcting a soft error *on top of* a hard fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftErrorModel {
    /// Upsets per bit per second at the nominal 1.0V supply.
    pub rate_at_nominal: f64,
    /// Exponential sensitivity to supply reduction.
    pub vdd_sensitivity: f64,
}

impl Default for SoftErrorModel {
    fn default() -> Self {
        SoftErrorModel {
            // ~1e-4 FIT/bit, a typical terrestrial figure: 1e-4 upsets
            // per 1e9 device-hours = 2.8e-17 per bit-second.
            rate_at_nominal: 2.8e-17,
            vdd_sensitivity: 7.0,
        }
    }
}

impl SoftErrorModel {
    /// Upsets per bit per second at supply `vdd`.
    pub fn rate_per_bit_second(&self, vdd: f64) -> f64 {
        self.rate_at_nominal * (self.vdd_sensitivity * (1.0 - vdd)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_t_anchor_near_paper_value() {
        let model = FailureModel::default();
        let pf = model.pf(&SizedCell::new(CellKind::Sram6T, 1.0), 1.0);
        // The paper's Sec. III-C example: Pf = 1.22e-6.
        assert!(
            pf > 0.5e-6 && pf < 3e-6,
            "6T @1V min size should be near 1.22e-6, got {pf}"
        );
    }

    #[test]
    fn pf_monotone_in_voltage_and_sizing() {
        let model = FailureModel::default();
        for kind in CellKind::ALL {
            let mut prev = 1.0f64;
            for mv in (300..=1000).step_by(50) {
                let v = mv as f64 / 1000.0;
                let pf = model.pf(&SizedCell::new(kind, 1.0), v);
                assert!(pf <= prev, "{kind} pf not decreasing in V");
                prev = pf;
            }
            // Above every family's half-failure voltage, upsizing
            // tightens the margin distribution and reduces pf. (Below
            // v_half the margin is negative and upsizing makes failure
            // *more* certain — which is correct, and why HP ways are
            // gated off at ULE mode rather than upsized.)
            let lo = model.pf(&SizedCell::new(kind, 2.0), 0.8);
            let hi = model.pf(&SizedCell::new(kind, 1.0), 0.8);
            assert!(lo < hi, "{kind} upsizing must reduce pf above v_half");
        }
    }

    #[test]
    fn robustness_ordering_at_nst() {
        let model = FailureModel::default();
        // At the paper's 350mV ULE point: 6T unusable, 8T and 10T
        // marginal at minimum size (hence the sizing methodology).
        let v = 0.35;
        let pf6 = model.pf(&SizedCell::new(CellKind::Sram6T, 1.0), v);
        let pf8 = model.pf(&SizedCell::new(CellKind::Sram8T, 1.0), v);
        let pf10 = model.pf(&SizedCell::new(CellKind::Sram10T, 1.0), v);
        assert!(pf6 > 0.9, "6T must be unusable at NST, pf={pf6}");
        assert!(pf8 < 0.5 && pf8 > 1e-4, "8T must be marginal: {pf8}");
        assert!(pf10 < 0.5 && pf10 > 1e-4, "10T must be marginal: {pf10}");
        // The ST-10T's topology advantage is its lower operating
        // limit: deeper into sub-threshold it clearly beats the 8T
        // (and its v_half is strictly lower).
        let deep = 0.30;
        let pf8_deep = model.pf(&SizedCell::new(CellKind::Sram8T, 1.0), deep);
        let pf10_deep = model.pf(&SizedCell::new(CellKind::Sram10T, 1.0), deep);
        assert!(pf10_deep < pf8_deep, "10T must beat 8T deep in NST");
        assert!(model.params(CellKind::Sram10T).v_half < model.params(CellKind::Sram8T).v_half);
    }

    #[test]
    fn high_voltage_makes_8t_and_10t_bulletproof() {
        // "both 8T and 10T cells are more reliable (by some orders of
        //  magnitude) than 6T ones at high voltage" — paper Sec. III-B.
        let model = FailureModel::default();
        let pf6 = model.pf(&SizedCell::new(CellKind::Sram6T, 1.0), 1.0);
        let pf8 = model.pf(&SizedCell::new(CellKind::Sram8T, 1.0), 1.0);
        let pf10 = model.pf(&SizedCell::new(CellKind::Sram10T, 1.0), 1.0);
        assert!(pf8 < pf6 * 1e-3);
        assert!(pf10 < pf6 * 1e-3);
    }

    #[test]
    fn sizing_for_pf_inverts_pf() {
        let model = FailureModel::default();
        for (kind, vdd) in [
            (CellKind::Sram10T, 0.35),
            (CellKind::Sram8T, 0.35),
            (CellKind::Sram6T, 1.0),
        ] {
            for target in [1e-3, 1e-6, 1e-9] {
                let s = model.sizing_for_pf(kind, vdd, target).unwrap();
                let achieved = model.pf(&SizedCell::new(kind, s), vdd);
                assert!(
                    achieved <= target * 1.0001,
                    "{kind} at {vdd}V: sizing {s} gives {achieved} > {target}"
                );
                // One step smaller must miss the target (minimality),
                // unless we are already at the floor.
                if s > 1.0 + 1e-9 {
                    let under = model.pf(&SizedCell::new(kind, s - SIZING_STEP), vdd);
                    assert!(
                        under > target,
                        "{kind}: sizing not minimal ({s} vs target {target})"
                    );
                }
            }
        }
    }

    #[test]
    fn sizing_fails_below_v_half() {
        let model = FailureModel::default();
        let err = model
            .sizing_for_pf(CellKind::Sram6T, 0.35, 1e-6)
            .unwrap_err();
        assert!(matches!(err, SizingError::VoltageTooLow { .. }));
        assert!(err.to_string().contains("half-failure"));
    }

    #[test]
    fn sizing_rejects_invalid_targets() {
        let model = FailureModel::default();
        for bad in [0.0, 1.0, -0.5, 2.0] {
            assert!(matches!(
                model.sizing_for_pf(CellKind::Sram10T, 0.35, bad),
                Err(SizingError::InvalidTarget { .. })
            ));
        }
    }

    #[test]
    fn quantize_sizing_behaviour() {
        assert_eq!(quantize_sizing(0.3), 1.0);
        assert_eq!(quantize_sizing(1.0), 1.0);
        assert_eq!(quantize_sizing(1.01), 1.05);
        assert_eq!(quantize_sizing(2.1499), 2.15);
    }

    #[test]
    fn ten_t_needs_substantial_upsizing_at_nst() {
        // The core premise of the paper: matching the 6T HP failure
        // rate at 350mV forces the 10T cell well above minimum size,
        // which is what the 8T+EDC design then avoids paying.
        let model = FailureModel::default();
        let target = 1.22e-6;
        let s10 = model
            .sizing_for_pf(CellKind::Sram10T, 0.35, target)
            .unwrap();
        assert!(s10 > 1.5, "10T sizing at NST too small: {s10}");
        let s8 = model.sizing_for_pf(CellKind::Sram8T, 0.35, 1e-3).unwrap();
        assert!(s8 < s10, "relaxed-target 8T must stay smaller than 10T");
    }

    #[test]
    fn soft_error_rate_rises_at_low_voltage() {
        let ser = SoftErrorModel::default();
        let high = ser.rate_per_bit_second(1.0);
        let low = ser.rate_per_bit_second(0.35);
        assert!(low > 10.0 * high);
        assert!((ser.rate_per_bit_second(1.0) - ser.rate_at_nominal).abs() < 1e-25);
    }

    #[test]
    fn set_params_roundtrip() {
        let mut model = FailureModel::default();
        let custom = ReliabilityParams {
            v_half: 0.5,
            sigma_v: 0.1,
        };
        model.set_params(CellKind::Sram8T, custom);
        assert_eq!(model.params(CellKind::Sram8T), custom);
    }
}
