//! Epoch-parallel engine scaling: serial reference loop vs threaded
//! epoch merge, wall time per core count.
//!
//! The multi-core engine
//! ([`hyvec_cachesim::multicore::MultiCoreSystem`]) simulates the N
//! private L1 front ends on worker threads and replays each epoch's
//! chain-bound requests in canonical order at the merge barrier, with
//! counters bit-identical to the serial loop. This module measures
//! what that buys: the same multi-program workload is run once with
//! `sim_threads = 1` (the serial reference) and once threaded, per
//! core count, and the reports are asserted equal before any timing
//! is trusted — the artifact doubles as an equivalence smoke check,
//! exactly like the hot-path bench.
//!
//! The result serializes as the `BENCH_multicore.json` artifact
//! (schema `hyvec-bench-multicore/v1`), written by `hyvec run-all`
//! alongside `BENCH_hotpath.json` and by the `benches/multicore.rs`
//! harness. `merge_barrier_overhead_ms` is the threaded-minus-serial
//! wall time of the 1-core run — the pure cost of the epoch
//! machinery (barriers, logging, the merge walk) with zero
//! parallelism to pay for it, which is exactly the overhead a
//! speedup at N cores must first amortize.

use std::time::Instant;

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::multicore::MultiCoreSystem;
use hyvec_mediabench::{multiprogram_sources, Benchmark};

/// Instruction budget per core `hyvec run-all` uses for the artifact
/// it writes (fixed so BENCH_multicore.json trajectories are
/// comparable across runs regardless of `--instructions`).
pub const RUN_ALL_INSTRUCTIONS: u64 = 20_000;

/// Core counts measured, smallest first (the 1-core row calibrates
/// the merge-barrier overhead).
pub const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Shared-L2 capacity of the measured machine, KB — the ablation's
/// deliberately small L2, so the chain sees real miss traffic and the
/// merge phase does real work.
const L2_KB: u64 = 16;

/// The program mix, as in the core-count ablation: core `i` runs
/// program `i mod 6` in its own address window.
const PROGRAMS: [Benchmark; 6] = [
    Benchmark::Mpeg2C,
    Benchmark::Mpeg2D,
    Benchmark::GsmC,
    Benchmark::GsmD,
    Benchmark::G721C,
    Benchmark::G721D,
];

/// Trace seed of the measured runs (results are timing-only, but the
/// equivalence gate wants identical inputs on both paths).
const SEED: u64 = 0xEB0C;

/// Wall time of one core count on both engine paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreScalingResult {
    /// Number of cores simulated.
    pub cores: usize,
    /// Best wall time of the serial reference loop, milliseconds.
    pub serial_ms: f64,
    /// Best wall time of the epoch-parallel engine, milliseconds.
    pub threaded_ms: f64,
}

impl CoreScalingResult {
    /// Serial-over-threaded wall-time ratio (> 1 means the threaded
    /// engine won).
    pub fn speedup(&self) -> f64 {
        if self.threaded_ms > 0.0 {
            self.serial_ms / self.threaded_ms
        } else {
            0.0
        }
    }
}

/// The full scaling measurement: every core count, both paths.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreReport {
    /// Instructions per core per measured run.
    pub instructions_per_core: u64,
    /// Worker threads the threaded runs used.
    pub sim_threads: usize,
    /// Per-core-count wall times, in [`CORE_COUNTS`] order.
    pub rows: Vec<CoreScalingResult>,
    /// Threaded minus serial wall time of the 1-core run,
    /// milliseconds: the pure cost of the epoch machinery (may dip
    /// below zero within timing noise).
    pub merge_barrier_overhead_ms: f64,
}

impl MulticoreReport {
    /// Serializes as the `BENCH_multicore.json` artifact (hand-rolled
    /// JSON, like the other bench artifacts).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-bench-multicore/v1\",\n");
        out.push_str(&format!(
            "  \"instructions_per_core\": {},\n",
            self.instructions_per_core
        ));
        out.push_str(&format!("  \"sim_threads\": {},\n", self.sim_threads));
        out.push_str(&format!(
            "  \"merge_barrier_overhead_ms\": {:.3},\n",
            self.merge_barrier_overhead_ms
        ));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"cores\": {}, \"serial_ms\": {:.3}, \
                 \"threaded_ms\": {:.3}, \"speedup\": {:.3}}}",
                r.cores,
                r.serial_ms,
                r.threaded_ms,
                r.speedup()
            ));
        }
        if self.rows.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// A human-readable table of the same figures.
    pub fn text(&self) -> String {
        let mut out = format!(
            "epoch-parallel scaling ({} instructions/core, {} sim threads, \
             merge-barrier overhead {:.2} ms)\n{:>5} {:>12} {:>12} {:>9}\n",
            self.instructions_per_core,
            self.sim_threads,
            self.merge_barrier_overhead_ms,
            "cores",
            "serial ms",
            "threaded ms",
            "speedup"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>5} {:>12.2} {:>12.2} {:>8.2}x\n",
                r.cores,
                r.serial_ms,
                r.threaded_ms,
                r.speedup()
            ));
        }
        out
    }
}

fn build_machine(cores: usize) -> MultiCoreSystem {
    let l1s = SystemConfig::uniform_6t();
    System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .l2(L2Config::unified(L2_KB))
        .memory(MemoryConfig::with_latency(80))
        .build_multi(cores)
        // hyvec-lint: allow(no-panic, "the stock bench shape is a compile-time constant validated by every measurement run")
        .expect("stock bench machine shape is valid")
}

fn sources(cores: usize, instructions: u64) -> Vec<impl hyvec_mediabench::TraceSource + Send> {
    let benchmarks: Vec<Benchmark> = (0..cores).map(|i| PROGRAMS[i % PROGRAMS.len()]).collect();
    multiprogram_sources(&benchmarks, instructions, SEED)
}

/// Best-of-`samples` wall time of one configuration, milliseconds,
/// plus the report of the last run (for the equivalence gate).
fn time_path(
    cores: usize,
    instructions: u64,
    sim_threads: usize,
    samples: u32,
) -> (f64, hyvec_cachesim::multicore::MultiCoreReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let mut machine = build_machine(cores);
        machine.set_sim_threads(sim_threads);
        let start = Instant::now();
        let report = machine.run(sources(cores, instructions), Mode::Hp);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    // hyvec-lint: allow(no-panic, "samples >= 1 always; the loop body ran at least once")
    (best, last.expect("at least one sample"))
}

/// Measures every core count on both engine paths with `instructions`
/// per core, `threads` workers on the threaded path, asserting
/// serial/threaded report equivalence as it goes.
///
/// # Panics
///
/// Panics if the two paths ever disagree on a report — the epoch
/// merge would not be deterministic, and no timing should be trusted.
pub fn measure(instructions: u64, threads: usize) -> MulticoreReport {
    let samples = 2;
    let rows: Vec<CoreScalingResult> = CORE_COUNTS
        .iter()
        .map(|&cores| {
            let (serial_ms, serial_report) = time_path(cores, instructions, 1, samples);
            let (threaded_ms, threaded_report) = time_path(cores, instructions, threads, samples);
            // hyvec-lint: allow(no-panic, "the equivalence gate is the bench's whole point: a divergence must abort, not be reported as a timing")
            assert_eq!(
                serial_report, threaded_report,
                "{cores}-core reports diverged between sim-threads 1 and {threads}"
            );
            CoreScalingResult {
                cores,
                serial_ms,
                threaded_ms,
            }
        })
        .collect();
    let merge_barrier_overhead_ms = rows
        .first()
        .map(|r| r.threaded_ms - r.serial_ms)
        .unwrap_or(0.0);
    MulticoreReport {
        instructions_per_core: instructions,
        sim_threads: threads,
        rows,
        merge_barrier_overhead_ms,
    }
}

/// The worker-thread count `hyvec run-all` measures with: the
/// machine's available parallelism, capped at 8 (the scaling story is
/// told by then, and CI runners rarely have more) and floored at 2 so
/// the epoch-parallel engine — and its equivalence gate — is always
/// actually exercised, even on a single-CPU runner (where the
/// threaded figures measure the epoch machinery's overhead against
/// its locality win rather than real parallelism).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smoke_produces_all_rows_and_valid_json() {
        let report = measure(1_500, 2);
        assert_eq!(report.rows.len(), CORE_COUNTS.len());
        assert_eq!(
            report.rows.iter().map(|r| r.cores).collect::<Vec<_>>(),
            CORE_COUNTS
        );
        for r in &report.rows {
            assert!(r.serial_ms > 0.0, "{}-core serial time missing", r.cores);
            assert!(
                r.threaded_ms > 0.0,
                "{}-core threaded time missing",
                r.cores
            );
        }
        let json = report.json();
        assert!(json.contains("\"schema\": \"hyvec-bench-multicore/v1\""));
        assert!(json.contains("\"merge_barrier_overhead_ms\""));
        assert!(json.contains("\"cores\": 16"));
        let text = report.text();
        assert!(text.contains("speedup"));
        assert!(text.contains("16"));
    }

    #[test]
    fn default_threads_actually_engages_the_epoch_engine() {
        let t = default_threads();
        assert!((2..=8).contains(&t));
    }
}
