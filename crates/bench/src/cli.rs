//! Shared command-line plumbing for the `hyvec` front-end and the
//! per-artifact binaries.
//!
//! Every binary in `src/bin/` is a thin shell over the same pipeline:
//! parse the common flags, select experiments from the standard
//! [`Registry`](hyvec_core::registry::Registry) with a
//! [`SweepBuilder`], run, and hand the typed report to the requested
//! [`Format`] backend. A job's output is therefore byte-identical
//! whether it is produced by its standalone binary, by a `hyvec`
//! subcommand, or by `hyvec run-all`, serially or in parallel.

use std::process::ExitCode;

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::render::{render, Format};
use hyvec_core::sweep::{default_jobs, SweepBuilder};

/// Options shared by every front-end binary.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Run parameters (instruction budget + base seed).
    pub params: ExperimentParams,
    /// Worker threads; defaults to the core count.
    pub jobs: usize,
    /// Output format.
    pub format: Format,
    /// Glob filters over experiment ids (`--filter`, repeatable).
    pub globs: Vec<String>,
    /// Where to write the per-job wall-time artifact (`--bench-out`).
    /// Honored by every entry point; `hyvec run-all` additionally
    /// defaults it to `BENCH_sweep.json`.
    pub bench_out: Option<String>,
    /// Route every access through the full EDC slow path
    /// (`--force-slow-path`). Purely diagnostic: the report is
    /// byte-identical with or without it.
    pub force_slow_path: bool,
    /// Worker threads of the epoch-parallel multi-core engine
    /// (`--sim-threads`; default 1 = the serial reference loop).
    /// Orthogonal to `--jobs`, which parallelizes across experiments;
    /// the report is byte-identical at every value.
    pub sim_threads: usize,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            params: ExperimentParams::default(),
            jobs: default_jobs(),
            format: Format::Text,
            globs: Vec::new(),
            bench_out: None,
            force_slow_path: false,
            sim_threads: 1,
        }
    }
}

/// The flag summary shared by every usage string.
pub const FLAGS_USAGE: &str = "[--instructions N] [--seed S] [--jobs J] [--sim-threads T] [--format text|json|csv] [--filter GLOB] [--force-slow-path]";

/// Parses the common flags from an argument iterator (after any
/// subcommand has been consumed).
pub fn parse_flags(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut args = args.peekable();
    let mut options = CliOptions::default();
    while let Some(flag) = args.next() {
        // Boolean flags take no value.
        if flag == "--force-slow-path" {
            options.force_slow_path = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--instructions" | "-n" => {
                options.params.instructions = value
                    .parse()
                    .map_err(|e| format!("bad --instructions: {e}"))?;
            }
            "--seed" | "-s" => {
                options.params.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--jobs" | "-j" => {
                options.jobs = value.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--sim-threads" => {
                options.sim_threads = value
                    .parse()
                    .map_err(|e| format!("bad --sim-threads: {e}"))?;
                if options.sim_threads == 0 {
                    return Err("--sim-threads must be at least 1".to_string());
                }
            }
            "--format" | "-f" => {
                options.format = value.parse()?;
            }
            "--filter" => {
                options.globs.push(value);
            }
            "--bench-out" => {
                options.bench_out = Some(value);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

/// Builds the sweep for `options`, restricted to `artifacts` (empty =
/// everything).
pub fn sweep_for(options: &CliOptions, artifacts: &[&str]) -> SweepBuilder {
    let mut builder = SweepBuilder::new()
        .params(options.params)
        .jobs(options.jobs)
        .force_slow_path(options.force_slow_path)
        .sim_threads(options.sim_threads);
    if !artifacts.is_empty() {
        builder = builder.artifacts(artifacts.iter().copied());
    }
    for glob in &options.globs {
        builder = builder.filter(glob.clone());
    }
    builder
}

/// Writes the per-job wall-time artifact of `outcome` to `path`.
pub fn write_bench(outcome: &hyvec_core::sweep::SweepOutcome, path: &str) -> Result<(), String> {
    std::fs::write(path, outcome.bench_json()).map_err(|e| format!("could not write {path}: {e}"))
}

/// The whole body of a per-artifact binary: parse flags from the
/// process arguments, run the sweep restricted to `artifacts`, print
/// the rendered report (and honor `--bench-out`).
pub fn artifact_main(name: &str, artifacts: &[&str]) -> ExitCode {
    // hyvec-lint: allow(determinism, "CLI argument intake for artifact binaries; parsed flags are the only ambient input")
    let options = match parse_flags(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}\nusage: {name} {FLAGS_USAGE} [--bench-out PATH]");
            return ExitCode::FAILURE;
        }
    };
    let outcome = sweep_for(&options, artifacts).run();
    print!("{}", render(&outcome.report, options.format));
    if let Some(path) = &options.bench_out {
        if let Err(e) = write_bench(&outcome, path) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_flags(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags_parse() {
        let d = parse(&[]).unwrap();
        assert_eq!(d.format, Format::Text);
        assert_eq!(d.params.instructions, 100_000);
        let o = parse(&[
            "--instructions",
            "5000",
            "--seed",
            "9",
            "--jobs",
            "2",
            "--format",
            "json",
            "--filter",
            "fig3/*",
            "--filter",
            "area/*",
        ])
        .unwrap();
        assert_eq!(o.params.instructions, 5000);
        assert_eq!(o.params.seed, 9);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.format, Format::Json);
        assert_eq!(o.globs, vec!["fig3/*", "area/*"]);
    }

    #[test]
    fn force_slow_path_is_a_bare_flag() {
        assert!(!parse(&[]).unwrap().force_slow_path);
        // Takes no value, anywhere in the argument list.
        let o = parse(&["--force-slow-path", "--jobs", "2"]).unwrap();
        assert!(o.force_slow_path);
        assert_eq!(o.jobs, 2);
        let o = parse(&["--jobs", "2", "--force-slow-path"]).unwrap();
        assert!(o.force_slow_path);
    }

    #[test]
    fn sim_threads_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().sim_threads, 1);
        let o = parse(&["--sim-threads", "8", "--jobs", "2"]).unwrap();
        assert_eq!(o.sim_threads, 8);
        assert_eq!(o.jobs, 2);
        assert!(parse(&["--sim-threads", "0"]).is_err());
        assert!(parse(&["--sim-threads"]).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--format", "yaml"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--wat", "1"]).is_err());
    }

    #[test]
    fn sweep_for_applies_artifact_and_glob_filters() {
        let mut options = CliOptions::default();
        options.globs.push("*/A".to_string());
        let builder = sweep_for(&options, &["fig3", "fig4"]);
        assert!(builder.selects("fig3/A"));
        assert!(!builder.selects("fig3/B"));
        assert!(!builder.selects("area/A"));
        let unrestricted = sweep_for(&CliOptions::default(), &[]);
        assert!(unrestricted.selects("soft-errors/B"));
    }
}
