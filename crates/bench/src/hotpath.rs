//! Hot-path throughput measurement: simulated cache accesses per
//! wall-clock second, fast path vs forced slow path.
//!
//! The simulator's tiered dispatch (see
//! [`hyvec_cachesim::cache::HybridCache`]) skips all EDC
//! encode/decode and payload verification while a cache is
//! fault-free. This module quantifies that tier split on four
//! canonical workloads:
//!
//! | id | shape | where accesses land |
//! |---|---|---|
//! | `l1_hit` | flat memory | working set fits the L1s |
//! | `l2_hit` | 64KB unified L2 | overflows the L1s, fits the L2 |
//! | `memory_miss` | flat 80-cycle memory | streams past every cache |
//! | `faulty_line` | flat memory | `l1_hit` with stuck-at faults armed |
//!
//! Each workload runs twice: once as-is (the fast path engages
//! whenever the caches are fault-free) and once with
//! [`set_force_slow_path`](hyvec_cachesim::cache::HybridCache::set_force_slow_path)
//! routing every access through the full EDC machinery — the pre-PR
//! behavior. On `faulty_line` the two figures converge by design: an
//! armed fault map disables the fast path on its own.
//!
//! The result serializes as the `BENCH_hotpath.json` artifact
//! (schema `hyvec-bench-hotpath/v2`), written by `hyvec run-all`
//! alongside `BENCH_sweep.json` and by the `benches/hotpath.rs`
//! harness. v2 adds a per-workload `elapsed_wall_ms` field — the
//! total wall time the workload's measurement took (equivalence gate
//! plus every timed sample on both tiers), so artifact trajectories
//! expose measurement cost alongside throughput. Counters are
//! asserted identical between the two paths on every measurement run,
//! so the artifact doubles as an equivalence smoke check.

use std::time::Instant;

use hyvec_cachesim::cache::{StuckBits, WordSlot};
use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::stats::RunStats;
use hyvec_mediabench::{DataAccess, TraceEntry};

/// Instruction budget `hyvec run-all` uses for the artifact it writes
/// (kept fixed so BENCH_hotpath.json trajectories are comparable
/// across runs regardless of `--instructions`).
pub const RUN_ALL_INSTRUCTIONS: u64 = 120_000;

/// Measured throughput of one workload on both dispatch tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Stable workload id (`l1_hit`, `l2_hit`, `memory_miss`,
    /// `faulty_line`).
    pub id: &'static str,
    /// L1 accesses (IL1 + DL1) one run performs.
    pub accesses: u64,
    /// Accesses per second with tiered dispatch active.
    pub fast_accesses_per_sec: f64,
    /// Accesses per second with every access forced down the slow
    /// path.
    pub slow_accesses_per_sec: f64,
    /// Total wall time this workload's measurement took, in
    /// milliseconds: the equivalence gate plus every timed sample on
    /// both tiers.
    pub elapsed_wall_ms: f64,
}

impl WorkloadResult {
    /// Fast-path speedup over the forced slow path.
    pub fn speedup(&self) -> f64 {
        if self.slow_accesses_per_sec > 0.0 {
            self.fast_accesses_per_sec / self.slow_accesses_per_sec
        } else {
            0.0
        }
    }
}

/// The full hot-path measurement: every workload, both tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathReport {
    /// Instructions per measured run.
    pub instructions: u64,
    /// Per-workload throughput, in canonical order.
    pub workloads: Vec<WorkloadResult>,
}

impl HotpathReport {
    /// The fast-over-slow speedup of the fault-free L1-hit workload —
    /// the headline figure of the tiered dispatch.
    pub fn l1_hit_speedup(&self) -> Option<f64> {
        self.workloads
            .iter()
            .find(|w| w.id == "l1_hit")
            .map(WorkloadResult::speedup)
    }

    /// Serializes as the `BENCH_hotpath.json` artifact (hand-rolled
    /// JSON, like `BENCH_sweep.json`).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-bench-hotpath/v2\",\n");
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str("  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"accesses\": {}, \
                 \"fast_accesses_per_sec\": {:.1}, \
                 \"slow_accesses_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \
                 \"elapsed_wall_ms\": {:.3}}}",
                w.id,
                w.accesses,
                w.fast_accesses_per_sec,
                w.slow_accesses_per_sec,
                w.speedup(),
                w.elapsed_wall_ms
            ));
        }
        if self.workloads.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// A human-readable table of the same figures.
    pub fn text(&self) -> String {
        let mut out = format!(
            "hot-path throughput ({} instructions/run)\n{:<14} {:>16} {:>16} {:>9} {:>10}\n",
            self.instructions, "workload", "fast acc/s", "slow acc/s", "speedup", "wall ms"
        );
        for w in &self.workloads {
            out.push_str(&format!(
                "{:<14} {:>16.0} {:>16.0} {:>8.2}x {:>10.1}\n",
                w.id,
                w.fast_accesses_per_sec,
                w.slow_accesses_per_sec,
                w.speedup(),
                w.elapsed_wall_ms
            ));
        }
        out
    }
}

/// One synthetic workload: a system shape plus an address stream.
struct Workload {
    id: &'static str,
    /// Bytes of hot code the fetch stream cycles through.
    code_bytes: u64,
    /// Bytes of data the access stream cycles through.
    data_bytes: u64,
    /// Data stride between consecutive accesses.
    data_stride: u64,
    /// Insert a unified L2 of this many KB (0 = flat memory).
    l2_kb: u64,
    /// Arm stuck-at faults on a few lines before running.
    faulty: bool,
}

const WORKLOADS: [Workload; 4] = [
    Workload {
        id: "l1_hit",
        code_bytes: 2 * 1024,
        data_bytes: 4 * 1024,
        data_stride: 4,
        l2_kb: 0,
        faulty: false,
    },
    Workload {
        id: "l2_hit",
        code_bytes: 2 * 1024,
        data_bytes: 32 * 1024,
        data_stride: 32,
        l2_kb: 64,
        faulty: false,
    },
    Workload {
        id: "memory_miss",
        code_bytes: 2 * 1024,
        data_bytes: 4 * 1024 * 1024,
        data_stride: 32,
        l2_kb: 0,
        faulty: false,
    },
    Workload {
        id: "faulty_line",
        code_bytes: 2 * 1024,
        data_bytes: 4 * 1024,
        data_stride: 4,
        l2_kb: 0,
        faulty: true,
    },
];

fn build_system(w: &Workload) -> System {
    let l1s = SystemConfig::uniform_6t();
    let mut builder = System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .memory(MemoryConfig::with_latency(80));
    if w.l2_kb > 0 {
        builder = builder.l2(L2Config::unified(w.l2_kb));
    }
    // hyvec-lint: allow(no-panic, "stock workload shapes are compile-time constants validated by the equivalence gate on every bench run")
    let mut sys = builder.build().expect("stock workload shapes are valid");
    if w.faulty {
        // Stuck bits on a handful of hot data words: the armed fault
        // map forces the slow path on every DL1 access, and the
        // unprotected 6T baseline delivers the faults silently — the
        // costliest decode outcome.
        for set in 0..4 {
            for way in 0..2 {
                sys.dl1_mut().set_stuck_bits(
                    WordSlot { way, set, slot: 0 },
                    StuckBits {
                        mask: 1 << (set % 32),
                        value: 0,
                    },
                );
            }
        }
    }
    sys
}

/// The deterministic instruction stream of one workload: sequential
/// fetch over the hot code region, every other instruction touching
/// data (3:1 loads to stores) with the workload's stride.
fn trace(w: &Workload, instructions: u64) -> impl Iterator<Item = TraceEntry> {
    let code_bytes = w.code_bytes;
    let data_bytes = w.data_bytes;
    let stride = w.data_stride;
    (0..instructions).map(move |i| TraceEntry {
        pc: 0x1000 + (i * 4) % code_bytes,
        access: (i % 2 == 0).then(|| DataAccess {
            addr: 0x10_0000 + (i / 2 * stride) % data_bytes,
            size: 4,
            is_write: i % 8 == 6,
        }),
    })
}

fn accesses_of(stats: &RunStats) -> u64 {
    stats.il1.accesses + stats.dl1.accesses
}

/// Runs `w` once on a fresh system, returning `(accesses, seconds,
/// stats)`.
fn run_once(w: &Workload, instructions: u64, force_slow: bool) -> (u64, f64, RunStats) {
    let mut sys = build_system(w);
    if force_slow {
        sys.il1_mut().set_force_slow_path(true);
        sys.dl1_mut().set_force_slow_path(true);
    }
    let start = Instant::now();
    let report = sys.run(trace(w, instructions), Mode::Hp);
    let seconds = start.elapsed().as_secs_f64();
    (accesses_of(&report.stats), seconds, report.stats)
}

/// Best-of-`samples` throughput in accesses/sec.
fn measure_path(w: &Workload, instructions: u64, force_slow: bool, samples: u32) -> (u64, f64) {
    let mut best = 0.0f64;
    let mut accesses = 0;
    for _ in 0..samples {
        let (n, seconds, _) = run_once(w, instructions, force_slow);
        accesses = n;
        if seconds > 0.0 {
            best = best.max(n as f64 / seconds);
        }
    }
    (accesses, best)
}

/// Measures every workload on both tiers with `instructions` per run,
/// asserting fast/slow counter equivalence as it goes.
///
/// # Panics
///
/// Panics if the two dispatch tiers ever disagree on the run's
/// counters — that would mean the fast path is not semantics-
/// preserving, and no throughput number should be trusted.
pub fn measure(instructions: u64) -> HotpathReport {
    let samples = 3;
    let workloads = WORKLOADS
        .iter()
        .map(|w| {
            let workload_start = Instant::now();
            // Equivalence gate: one run per tier, counters compared.
            let (_, _, fast_stats) = run_once(w, instructions.min(20_000), false);
            let (_, _, slow_stats) = run_once(w, instructions.min(20_000), true);
            // hyvec-lint: allow(no-panic, "the equivalence gate is the bench's whole point: a divergence must abort, not be reported as a timing")
            assert_eq!(
                fast_stats, slow_stats,
                "{}: fast and slow paths diverged",
                w.id
            );
            let (accesses, fast) = measure_path(w, instructions, false, samples);
            let (_, slow) = measure_path(w, instructions, true, samples);
            WorkloadResult {
                id: w.id,
                accesses,
                fast_accesses_per_sec: fast,
                slow_accesses_per_sec: slow,
                elapsed_wall_ms: workload_start.elapsed().as_secs_f64() * 1e3,
            }
        })
        .collect();
    HotpathReport {
        instructions,
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_traces_are_deterministic_and_sized() {
        for w in &WORKLOADS {
            let a: Vec<_> = trace(w, 500).collect();
            let b: Vec<_> = trace(w, 500).collect();
            assert_eq!(a, b);
            assert_eq!(a.len(), 500);
            assert!(a.iter().any(|e| e.access.is_some()));
        }
    }

    #[test]
    fn measure_smoke_produces_all_workloads_and_valid_json() {
        let report = measure(2_000);
        assert_eq!(report.workloads.len(), 4);
        let json = report.json();
        assert!(json.contains("\"schema\": \"hyvec-bench-hotpath/v2\""));
        for id in ["l1_hit", "l2_hit", "memory_miss", "faulty_line"] {
            assert!(json.contains(id), "missing workload {id}");
        }
        assert!(json.contains("\"elapsed_wall_ms\""));
        for w in &report.workloads {
            assert!(
                w.elapsed_wall_ms > 0.0,
                "{}: measurement must take nonzero wall time",
                w.id
            );
        }
        assert!(report.l1_hit_speedup().is_some());
        assert!(report.text().contains("l1_hit"));
        assert!(report.text().contains("wall ms"));
    }

    #[test]
    fn faulty_workload_arms_the_slow_path() {
        let w = &WORKLOADS[3];
        assert!(w.faulty);
        let mut sys = build_system(w);
        // The armed fault map alone must disable the fast path.
        assert!(!sys.dl1_mut().is_fault_free());
        let (_, _, stats) = run_once(w, 5_000, false);
        assert!(
            stats.dl1.silent_corruptions > 0,
            "stuck bits on the unprotected baseline must corrupt"
        );
    }
}
