//! # hyvec-bench — figure/table regeneration and micro-benchmarks
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see the experiment index in `DESIGN.md`):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig3_hp_epi` | Figure 3 — normalized average EPI at HP mode |
//! | `fig4_ule_epi` | Figure 4 — normalized EPI breakdowns at ULE mode |
//! | `table_methodology` | Sec. III-C sizing/yield table |
//! | `table_performance` | Sec. IV-B.2 execution-time overhead |
//! | `table_area` | area comparison |
//! | `table_reliability` | reliability equivalence (yields + fault injection) |
//! | `table_soft_errors` | hard faults + soft errors, DECTED vs SECDED |
//! | `ablation_ways` | 7+1 vs 6+2 way split |
//! | `ablation_memlat` | memory-latency sweep |
//! | `ablation_voltage` | ULE-voltage sweep |
//! | `ablation_granularity` | protection-granularity analysis |
//!
//! Every binary — including the unified `hyvec` front-end — is a thin
//! shell over the [`cli`] module: experiments are selected from the
//! standard registry, run by the core sweep engine, and rendered by
//! the shared text/JSON/CSV backends (`--format`). The `benches/`
//! directory holds Criterion micro-benchmarks of the substrates (EDC
//! throughput, simulator speed, yield math, trace generation).
//!
//! The [`hotpath`], [`multicore`], and [`tracebench`] modules are
//! in-process bench harnesses with JSON artifacts of their own
//! (`BENCH_hotpath.json`, `BENCH_multicore.json`, `BENCH_trace.json`),
//! all written by `hyvec run-all`. The [`tracecmd`] module implements
//! the `hyvec trace` subcommand (generate/encode/decode/info/replay
//! over trace files).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cli;
pub mod hotpath;
pub mod multicore;
pub mod tracebench;
pub mod tracecmd;

// The render helpers live next to the sweep engine; re-exported here
// to keep the seed's public API.
pub use hyvec_core::sweep::{breakdown_header, breakdown_row, pct};

#[cfg(test)]
mod tests {
    use super::*;
    use hyvec_cachesim::EnergyBreakdown;

    #[test]
    fn rows_render() {
        let b = EnergyBreakdown {
            l1_dynamic_pj: 0.5,
            l1_leakage_pj: 0.3,
            edc_pj: 0.01,
            other_pj: 0.19,
        };
        let row = breakdown_row("baseline", &b);
        assert!(row.contains("baseline"));
        assert!(row.contains("1.000"));
        assert!(breakdown_header().contains("L1 dyn"));
        assert_eq!(pct(0.423), "42.3%");
    }
}
