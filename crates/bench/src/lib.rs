//! # hyvec-bench — figure/table regeneration and micro-benchmarks
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see the experiment index in `DESIGN.md`):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig3_hp_epi` | Figure 3 — normalized average EPI at HP mode |
//! | `fig4_ule_epi` | Figure 4 — normalized EPI breakdowns at ULE mode |
//! | `table_methodology` | Sec. III-C sizing/yield table |
//! | `table_performance` | Sec. IV-B.2 execution-time overhead |
//! | `table_area` | area comparison |
//! | `table_reliability` | reliability equivalence (yields + fault injection) |
//! | `ablation_ways` | 7+1 vs 6+2 way split |
//! | `ablation_memlat` | memory-latency sweep |
//! | `ablation_granularity` | protection-granularity analysis |
//!
//! The `benches/` directory holds Criterion micro-benchmarks of the
//! substrates (EDC throughput, simulator speed, yield math, trace
//! generation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyvec_cachesim::EnergyBreakdown;

/// Renders one normalized EPI breakdown as a table row.
pub fn breakdown_row(label: &str, b: &EnergyBreakdown) -> String {
    format!(
        "{label:<24} {:>8.3} {:>8.3} {:>8.4} {:>8.3} {:>8.3}",
        b.l1_dynamic_pj,
        b.l1_leakage_pj,
        b.edc_pj,
        b.other_pj,
        b.total_pj()
    )
}

/// The header matching [`breakdown_row`].
pub fn breakdown_header() -> String {
    format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "L1 dyn", "L1 leak", "EDC", "other", "total"
    )
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render() {
        let b = EnergyBreakdown {
            l1_dynamic_pj: 0.5,
            l1_leakage_pj: 0.3,
            edc_pj: 0.01,
            other_pj: 0.19,
        };
        let row = breakdown_row("baseline", &b);
        assert!(row.contains("baseline"));
        assert!(row.contains("1.000"));
        assert!(breakdown_header().contains("L1 dyn"));
        assert_eq!(pct(0.423), "42.3%");
    }
}
