//! Trace-format throughput: binary encode/decode/replay vs the text
//! path, plus the size ratio.
//!
//! The streaming trace layer's claim is that the binary format is
//! strictly cheaper than text — smaller on the wire and faster on
//! every leg (encode, decode, replay through the engine). This module
//! measures all four figures on one fixed trace, after asserting that
//! both replay paths produce the identical `RunReport` — the same
//! equivalence-gate-before-timing discipline as the [`crate::hotpath`]
//! and [`crate::multicore`] harnesses.
//!
//! The result serializes as the `BENCH_trace.json` artifact (schema
//! `hyvec-bench-trace/v1`), written by `hyvec run-all` alongside
//! `BENCH_hotpath.json` and `BENCH_multicore.json` and by the
//! `benches/traceformat.rs` harness.

use std::time::Instant;

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
use hyvec_cachesim::engine::System;
use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay, DEFAULT_CHUNK_ENTRIES};
use hyvec_mediabench::replay::{parse_trace, write_trace, Replay};
use hyvec_mediabench::Benchmark;

/// Trace length `hyvec run-all` uses for the artifact it writes
/// (fixed so BENCH_trace.json trajectories are comparable across runs
/// regardless of `--instructions`).
pub const RUN_ALL_INSTRUCTIONS: u64 = 200_000;

/// Trace seed of the measured runs (timing-only, but the equivalence
/// gate wants identical inputs on both paths).
const SEED: u64 = 0x7ACE;

/// The measured program: the biggest working set in the suite, so
/// the replay leg does real cache work.
const PROGRAM: Benchmark = Benchmark::Mpeg2D;

/// Throughput and size figures of one trace-format measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBenchReport {
    /// Entries in the measured trace.
    pub entries: u64,
    /// Text encoding size, bytes.
    pub text_bytes: u64,
    /// Binary encoding size, bytes.
    pub binary_bytes: u64,
    /// Binary encode throughput, entries/second.
    pub encode_eps: f64,
    /// Binary decode throughput, entries/second.
    pub decode_eps: f64,
    /// Text parse throughput, entries/second.
    pub text_parse_eps: f64,
    /// `System::run` replay throughput from the binary stream,
    /// entries/second.
    pub replay_binary_eps: f64,
    /// `System::run` replay throughput from eager text replay,
    /// entries/second.
    pub replay_text_eps: f64,
}

impl TraceBenchReport {
    /// Binary-over-text size ratio (< 1 means the binary format is
    /// smaller).
    pub fn size_ratio(&self) -> f64 {
        if self.text_bytes > 0 {
            self.binary_bytes as f64 / self.text_bytes as f64
        } else {
            0.0
        }
    }

    /// Serializes as the `BENCH_trace.json` artifact (hand-rolled
    /// JSON, like the other bench artifacts).
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"hyvec-bench-trace/v1\",\n");
        out.push_str(&format!("  \"entries\": {},\n", self.entries));
        out.push_str(&format!("  \"text_bytes\": {},\n", self.text_bytes));
        out.push_str(&format!("  \"binary_bytes\": {},\n", self.binary_bytes));
        out.push_str(&format!("  \"size_ratio\": {:.4},\n", self.size_ratio()));
        out.push_str(&format!("  \"encode_eps\": {:.0},\n", self.encode_eps));
        out.push_str(&format!("  \"decode_eps\": {:.0},\n", self.decode_eps));
        out.push_str(&format!(
            "  \"text_parse_eps\": {:.0},\n",
            self.text_parse_eps
        ));
        out.push_str(&format!(
            "  \"replay_binary_eps\": {:.0},\n",
            self.replay_binary_eps
        ));
        out.push_str(&format!(
            "  \"replay_text_eps\": {:.0}\n",
            self.replay_text_eps
        ));
        out.push_str("}\n");
        out
    }

    /// A human-readable table of the same figures.
    pub fn text(&self) -> String {
        format!(
            "trace format throughput ({} entries)\n\
             size: binary {} B vs text {} B (ratio {:.3})\n\
             encode {:.1} M entries/s, decode {:.1} M entries/s, text parse {:.1} M entries/s\n\
             replay: binary {:.1} M entries/s vs text {:.1} M entries/s\n",
            self.entries,
            self.binary_bytes,
            self.text_bytes,
            self.size_ratio(),
            self.encode_eps / 1e6,
            self.decode_eps / 1e6,
            self.text_parse_eps / 1e6,
            self.replay_binary_eps / 1e6,
            self.replay_text_eps / 1e6,
        )
    }
}

fn build_system() -> System {
    let l1s = SystemConfig::uniform_6t();
    System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .l2(L2Config::unified(16))
        .memory(MemoryConfig::with_latency(80))
        .build()
        // hyvec-lint: allow(no-panic, "the stock bench shape is a compile-time constant validated by every measurement run")
        .expect("stock bench machine shape is valid")
}

/// Best-of-`samples` wall time of `f`, seconds.
fn best_of<T>(samples: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(value);
    }
    // hyvec-lint: allow(no-panic, "samples >= 1 always; the loop body ran at least once")
    (best, last.expect("at least one sample"))
}

/// Measures encode/decode/parse/replay throughput on an
/// `instructions`-entry trace, asserting text/binary replay report
/// equivalence before trusting any timing.
///
/// # Panics
///
/// Panics if the binary and text replay paths disagree on a
/// `RunReport` — the formats would not be equivalent, and no timing
/// should be trusted.
pub fn measure(instructions: u64) -> TraceBenchReport {
    let samples = 2;
    let entries: Vec<_> = PROGRAM.trace(instructions, SEED).collect();

    let (encode_s, (bytes, _)) = best_of(samples, || {
        encode_entries(entries.iter().copied(), DEFAULT_CHUNK_ENTRIES)
    });
    let text = write_trace(entries.iter().copied());

    let (decode_s, decoded) = best_of(samples, || {
        let mut reader = BinaryReplay::from_bytes(bytes.clone())
            // hyvec-lint: allow(no-panic, "the header was just written by the encoder above")
            .expect("freshly encoded trace has a valid header");
        let out: Vec<_> = reader.by_ref().collect();
        // hyvec-lint: allow(no-panic, "an in-memory trace just produced by the encoder cannot be truncated")
        assert!(reader.error().is_none(), "freshly encoded trace corrupt");
        out
    });
    // hyvec-lint: allow(no-panic, "the round-trip gate is the bench's whole point: a mismatch must abort, not be reported as a timing")
    assert_eq!(decoded, entries, "binary round trip diverged");

    let (parse_s, parsed) = best_of(samples, || {
        // hyvec-lint: allow(no-panic, "the text was just written by write_trace above")
        parse_trace(&text).expect("freshly written text parses")
    });
    // hyvec-lint: allow(no-panic, "the round-trip gate is the bench's whole point: a mismatch must abort, not be reported as a timing")
    assert_eq!(parsed, entries, "text round trip diverged");

    let (replay_text_s, text_report) = best_of(samples, || {
        // hyvec-lint: allow(no-panic, "the text was just written by write_trace above")
        build_system().run(Replay::from_text(&text).expect("valid text"), Mode::Hp)
    });
    let (replay_binary_s, binary_report) = best_of(samples, || {
        let mut reader = BinaryReplay::from_bytes(bytes.clone())
            // hyvec-lint: allow(no-panic, "the header was just written by the encoder above")
            .expect("freshly encoded trace has a valid header");
        let report = build_system().run(&mut reader, Mode::Hp);
        // hyvec-lint: allow(no-panic, "an in-memory trace just produced by the encoder cannot be truncated")
        assert!(reader.error().is_none(), "freshly encoded trace corrupt");
        report
    });
    // hyvec-lint: allow(no-panic, "the equivalence gate is the bench's whole point: a divergence must abort, not be reported as a timing")
    assert_eq!(
        text_report, binary_report,
        "binary replay report diverged from text replay"
    );

    let n = entries.len() as f64;
    let eps = |s: f64| if s > 0.0 { n / s } else { 0.0 };
    TraceBenchReport {
        entries: entries.len() as u64,
        text_bytes: text.len() as u64,
        binary_bytes: bytes.len() as u64,
        encode_eps: eps(encode_s),
        decode_eps: eps(decode_s),
        text_parse_eps: eps(parse_s),
        replay_binary_eps: eps(replay_binary_s),
        replay_text_eps: eps(replay_text_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_smoke_produces_valid_figures_and_json() {
        let report = measure(3_000);
        assert_eq!(report.entries, 3_000);
        assert!(report.binary_bytes > 0 && report.text_bytes > 0);
        assert!(
            report.size_ratio() < 1.0,
            "binary ({} B) should be smaller than text ({} B)",
            report.binary_bytes,
            report.text_bytes
        );
        for (name, eps) in [
            ("encode", report.encode_eps),
            ("decode", report.decode_eps),
            ("text_parse", report.text_parse_eps),
            ("replay_binary", report.replay_binary_eps),
            ("replay_text", report.replay_text_eps),
        ] {
            assert!(eps > 0.0, "{name} throughput missing");
        }
        let json = report.json();
        assert!(json.contains("\"schema\": \"hyvec-bench-trace/v1\""));
        assert!(json.contains("\"size_ratio\""));
        assert!(json.contains("\"replay_binary_eps\""));
        let text = report.text();
        assert!(text.contains("ratio"));
        assert!(text.contains("replay"));
    }
}
