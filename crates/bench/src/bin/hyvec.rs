//! `hyvec` — unified command-line front-end for every experiment.
//!
//! ```text
//! hyvec <command> [--instructions N] [--seed S]
//!
//! commands:
//!   fig3          Figure 3: HP-mode EPI (scenarios A and B)
//!   fig4          Figure 4: ULE-mode EPI breakdowns
//!   methodology   Sec. III-C sizing/yield table
//!   performance   ULE execution-time overhead
//!   area          L1 area comparison
//!   reliability   yields + fault-injection runs
//!   soft-errors   hard faults + soft errors (DECTED vs SECDED)
//!   ablations     way split, memory latency, granularity, voltage
//!   all           everything above
//! ```

use hyvec_bench::{breakdown_header, breakdown_row, pct};
use hyvec_core::experiments::*;
use hyvec_core::Scenario;
use std::process::ExitCode;

fn parse_args() -> Result<(String, ExperimentParams), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut params = ExperimentParams::default();
    while let Some(flag) = args.next() {
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--instructions" | "-n" => {
                params.instructions = value
                    .parse()
                    .map_err(|e| format!("bad --instructions: {e}"))?;
            }
            "--seed" | "-s" => {
                params.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok((command, params))
}

fn usage() -> String {
    "usage: hyvec <fig3|fig4|methodology|performance|area|reliability|soft-errors|ablations|all> \
     [--instructions N] [--seed S]"
        .to_string()
}

fn fig3(params: ExperimentParams) {
    println!("== Figure 3: HP-mode EPI (paper: 14% / 12% savings) ==");
    for s in Scenario::ALL {
        let r = fig3_hp_epi(s, params);
        println!("scenario {s}:");
        println!("{}", breakdown_header());
        println!("{}", breakdown_row("  baseline", &r.baseline));
        println!("{}", breakdown_row("  proposal", &r.proposal));
        println!("  saving: {}", pct(r.saving));
    }
    println!();
}

fn fig4(params: ExperimentParams) {
    println!("== Figure 4: ULE-mode EPI (paper: 42% / 39% savings) ==");
    for s in Scenario::ALL {
        let r = fig4_ule_epi(s, params);
        println!("scenario {s}: average saving {}", pct(r.avg_saving));
        for row in &r.rows {
            println!(
                "  {:<10} saving {}",
                row.benchmark.to_string(),
                pct(row.saving)
            );
        }
    }
    println!();
}

fn methodology() {
    println!("== Methodology (Fig. 2): sizings and yields ==");
    for d in methodology_table() {
        println!(
            "scenario {:?}: Pf {:.3e}; 6T x{:.2}, 10T x{:.2}, 8T x{:.2}; \
             yield {:.6} -> {:.6} ({} iterations)",
            d.scenario,
            d.pf_target,
            d.sizing_6t,
            d.sizing_10t,
            d.sizing_8t,
            d.yield_baseline,
            d.yield_proposal,
            d.iterations
        );
    }
    println!();
}

fn performance(params: ExperimentParams) {
    println!("== ULE execution-time overhead (paper: ~3%) ==");
    for s in Scenario::ALL {
        let rows = ule_performance(s, params);
        let avg: f64 = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
        println!("scenario {s}: average {}", pct(avg));
        for r in rows {
            println!("  {:<10} {}", r.benchmark.to_string(), pct(r.overhead));
        }
    }
    println!();
}

fn area() {
    println!("== Area (IL1 + DL1) ==");
    for s in Scenario::ALL {
        let r = area_comparison(s);
        println!(
            "scenario {s}: {:.0} -> {:.0} um2 (saving {})",
            r.baseline_um2,
            r.proposal_um2,
            pct(r.saving)
        );
    }
    println!();
}

fn reliability_cmd(params: ExperimentParams) {
    println!("== Reliability ==");
    for s in Scenario::ALL {
        let r = reliability(s, 100, params);
        println!(
            "scenario {s}: yields {:.6} (baseline) / {:.6} (proposal), MC {:.3}; \
             corrected {}, silent {}, strawman silent {}",
            r.analytic_baseline,
            r.analytic_proposal,
            r.mc_proposal,
            r.proposal_corrected,
            r.proposal_silent,
            r.strawman_silent
        );
    }
    println!();
}

fn soft_errors(params: ExperimentParams) {
    println!("== Soft errors on hard faults (scenario B) ==");
    let r = soft_error_study(params, 3e-8);
    println!(
        "SECDED: corrected {}, uncorrectable {}",
        r.secded_corrected, r.secded_detected
    );
    println!(
        "DECTED: corrected {}, uncorrectable {}",
        r.dected_corrected, r.dected_detected
    );
    println!("silent under either: {}", r.silent);
    println!();
}

fn ablations(params: ExperimentParams) {
    println!("== Ablations ==");
    for s in Scenario::ALL {
        println!("scenario {s}: way splits");
        for r in ablation_ways(s, params) {
            println!(
                "  {}+{}: HP {}, ULE {}",
                r.hp_ways,
                r.ule_ways,
                pct(r.hp_saving),
                pct(r.ule_saving)
            );
        }
        println!("scenario {s}: memory latency");
        for r in ablation_memory_latency(s, params) {
            println!("  {} cycles: HP {}", r.latency, pct(r.hp_saving));
        }
        println!("scenario {s}: ULE voltage");
        for r in ablation_voltage(s, params) {
            println!(
                "  {:.0} mV: 10T x{:.2}, 8T x{:.2}, ULE {}",
                r.ule_vdd * 1000.0,
                r.sizing_10t,
                r.sizing_8t,
                pct(r.ule_saving)
            );
        }
    }
    println!("protection granularity (scenario A):");
    for r in ablation_granularity() {
        println!(
            "  {:>2}-bit words: overhead {}, 8T x{:.2}, bits x{:.3}",
            r.word_bits,
            pct(r.storage_overhead),
            r.sizing_8t,
            r.relative_bits
        );
    }
    println!();
}

fn main() -> ExitCode {
    let (command, params) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "fig3" => fig3(params),
        "fig4" => fig4(params),
        "methodology" => methodology(),
        "performance" => performance(params),
        "area" => area(),
        "reliability" => reliability_cmd(params),
        "soft-errors" => soft_errors(params),
        "ablations" => ablations(params),
        "all" => {
            methodology();
            fig3(params);
            fig4(params);
            performance(params);
            area();
            reliability_cmd(params);
            soft_errors(params);
            ablations(params);
        }
        other => {
            eprintln!("unknown command {other}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
