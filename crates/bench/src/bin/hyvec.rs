//! `hyvec` — unified command-line front-end for every experiment.
//!
//! ```text
//! hyvec <command> [--instructions N] [--seed S] [--jobs J]
//!                 [--sim-threads T] [--format text|json|csv]
//!                 [--filter GLOB] [--bench-out PATH] [--force-slow-path]
//!
//! commands:
//!   run-all       the full evaluation matrix, fanned across cores
//!                 with deterministic per-job seeds (the one entry
//!                 point that regenerates every table and figure);
//!                 also writes the BENCH_sweep.json perf artifact
//!   list          print the experiment ids the registry knows
//!   fig3          Figure 3: HP-mode EPI (scenarios A and B)
//!   fig4          Figure 4: ULE-mode EPI breakdowns
//!   methodology   Sec. III-C sizing/yield table
//!   performance   Sec. IV-B.2 execution-time overhead
//!   area          L1 area comparison
//!   reliability   yields + fault injection
//!   soft-errors   hard faults + soft errors (DECTED vs SECDED)
//!   ablations     way split, memory latency, voltage, L2, cores,
//!                 workload zoo, granularity
//!   all           alias of run-all
//!   serve         long-running HTTP daemon serving any experiment on
//!                 demand from a content-addressed result cache
//!                 (own flags: --addr, --threads, --warm, --cache-mb;
//!                 see the README "Serving" section)
//!   trace         generate, transcode, inspect, and replay trace
//!                 files (gen|encode|decode|info|replay; see the
//!                 README "Traces & workloads" section)
//! ```
//!
//! Every command is a filtered view of the same registry-driven sweep,
//! so a job's output is byte-identical whether it is produced by its
//! single-artifact command, by `run-all`, serially or in parallel.
//! `--filter` narrows any command by glob over experiment ids
//! (e.g. `--filter 'fig*/A'`); `--format` selects the render backend.
//! `--force-slow-path` routes every simulated access through the full
//! EDC decode path even while fault-free — a diagnostic knob; the
//! rendered report is byte-identical with or without it.
//! `--sim-threads` sets the worker-thread count of the epoch-parallel
//! multi-core engine (default 1 = the serial reference loop); like
//! `--jobs` and `--force-slow-path` it never changes a single byte of
//! the rendered report, only wall time.

use std::process::ExitCode;

use hyvec_bench::cli::{parse_flags, sweep_for, CliOptions, FLAGS_USAGE};
use hyvec_core::registry::Registry;
use hyvec_core::render::{csv_field as escape_csv, render, Format};

/// Artifact families of each named command; `None` = the full matrix.
fn command_artifacts(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "run-all" | "all" => &[],
        "methodology" => &["methodology"],
        "fig3" => &["fig3"],
        "fig4" => &["fig4"],
        "performance" => &["performance"],
        "area" => &["area"],
        "reliability" => &["reliability"],
        "soft-errors" => &["soft-errors"],
        "ablations" => &[
            "ablation-ways",
            "ablation-memlat",
            "ablation-voltage",
            "ablation-l2",
            "ablation-cores",
            "ablation-workloads",
            "ablation-granularity",
        ],
        _ => return None,
    })
}

fn usage() -> String {
    format!(
        "usage: hyvec <run-all|list|serve|trace|fig3|fig4|methodology|performance|area\
         |reliability|soft-errors|ablations|all> {FLAGS_USAGE} [--bench-out PATH]\n\
         \x20      hyvec serve {}\n\
         \x20      hyvec {}",
        hyvec_serve::SERVE_USAGE,
        hyvec_bench::tracecmd::TRACE_USAGE
    )
}

/// `hyvec list`: the registered experiment ids, optionally filtered.
/// `--format json` emits the machine-readable registry index — the
/// byte-identical document the serve daemon answers on
/// `GET /experiments`; `--format csv` the same index as one row per
/// experiment.
fn list(options: &CliOptions) -> ExitCode {
    let registry = Registry::standard();
    match options.format {
        Format::Text => {
            let builder = sweep_for(options, &[]);
            for id in registry.ids() {
                if builder.selects(id) {
                    println!("{id}");
                }
            }
        }
        Format::Json => print!("{}", registry.index_json()),
        Format::Csv => {
            println!("id,artifact,scenario,description");
            for e in registry.iter() {
                let id = e.id();
                let (artifact, scenario) = id.split_once('/').unwrap_or((id, ""));
                println!(
                    "{},{},{},{}",
                    escape_csv(id),
                    escape_csv(artifact),
                    escape_csv(scenario),
                    escape_csv(e.description())
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// `hyvec serve`: bind, optionally warm, then serve until shutdown.
fn serve(args: impl Iterator<Item = String>) -> ExitCode {
    let config = match hyvec_serve::ServeConfig::from_args(args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("{e}\nusage: hyvec serve {}", hyvec_serve::SERVE_USAGE);
            return ExitCode::FAILURE;
        }
    };
    let warm = config.warm;
    let warm_params = config.warm_params;
    let server = match hyvec_serve::SweepServer::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The resolved address goes to stdout first (and flushed by the
    // newline) so scripts can bind port 0 and scrape the real port
    // before the (possibly long) warm pass runs.
    println!("hyvec serve listening on {}", server.local_addr());
    if warm {
        eprintln!(
            "warming cache: full registry matrix at {} instructions, seed {}",
            warm_params.instructions, warm_params.seed
        );
    }
    server.run();
    eprintln!("hyvec serve: shut down cleanly");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // hyvec-lint: allow(determinism, "CLI argument intake in the runner binary; everything downstream is (artifact, scenario, seed)-keyed")
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if command == "serve" {
        return serve(args);
    }
    if command == "trace" {
        return match hyvec_bench::tracecmd::run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                ExitCode::FAILURE
            }
        };
    }
    let options = match parse_flags(args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if command == "list" {
        return list(&options);
    }
    let Some(artifacts) = command_artifacts(&command) else {
        eprintln!("unknown command {command}\n{}", usage());
        return ExitCode::FAILURE;
    };
    let outcome = sweep_for(&options, artifacts).run();
    print!("{}", render(&outcome.report, options.format));

    // Per-job wall times feed the perf trajectory; they are kept out
    // of the report so rendered output stays deterministic. run-all
    // always writes them; other commands only on explicit --bench-out.
    let run_all = command == "run-all" || command == "all";
    let default_bench = run_all.then(|| "BENCH_sweep.json".to_string());
    if let Some(path) = options.bench_out.clone().or(default_bench) {
        match hyvec_bench::cli::write_bench(&outcome, &path) {
            Ok(()) => eprintln!("wrote per-job wall times to {path}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // An unfiltered run-all also refreshes the hot-path throughput
    // artifact (fast vs forced-slow accesses/sec; see
    // hyvec_bench::hotpath). Like the wall times it goes to a file +
    // stderr, never the report; filtered runs skip the measurement so
    // quick single-experiment checks stay quick.
    if run_all && options.globs.is_empty() {
        let hot = hyvec_bench::hotpath::measure(hyvec_bench::hotpath::RUN_ALL_INSTRUCTIONS);
        let path = "BENCH_hotpath.json";
        match std::fs::write(path, hot.json()) {
            Ok(()) => eprintln!(
                "wrote hot-path throughput to {path} (L1-hit fast path {:.2}x)",
                hot.l1_hit_speedup().unwrap_or(0.0)
            ),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        // And the epoch-parallel scaling artifact: serial vs threaded
        // wall time per core count (the measurement asserts the two
        // paths' reports are identical before trusting any timing).
        let scaling = hyvec_bench::multicore::measure(
            hyvec_bench::multicore::RUN_ALL_INSTRUCTIONS,
            hyvec_bench::multicore::default_threads(),
        );
        let path = "BENCH_multicore.json";
        match std::fs::write(path, scaling.json()) {
            Ok(()) => {
                let best = scaling
                    .rows
                    .iter()
                    .map(|r| r.speedup())
                    .fold(0.0f64, f64::max);
                eprintln!(
                    "wrote epoch-parallel scaling to {path} (best speedup {best:.2}x at {} sim threads)",
                    scaling.sim_threads
                );
            }
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        // And the trace-format throughput artifact: binary vs text
        // encode/decode/replay rates and the size ratio (the
        // measurement asserts the two replay paths' reports are
        // identical before trusting any timing).
        let trace = hyvec_bench::tracebench::measure(hyvec_bench::tracebench::RUN_ALL_INSTRUCTIONS);
        let path = "BENCH_trace.json";
        match std::fs::write(path, trace.json()) {
            Ok(()) => eprintln!(
                "wrote trace-format throughput to {path} (binary/text size ratio {:.3})",
                trace.size_ratio()
            ),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
