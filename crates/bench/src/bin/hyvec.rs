//! `hyvec` — unified command-line front-end for every experiment.
//!
//! ```text
//! hyvec <command> [--instructions N] [--seed S] [--jobs J]
//!
//! commands:
//!   run-all       the full evaluation matrix, fanned across cores
//!                 with deterministic per-job seeds (the one entry
//!                 point that regenerates every table and figure)
//!   fig3          Figure 3: HP-mode EPI (scenarios A and B)
//!   fig4          Figure 4: ULE-mode EPI breakdowns
//!   methodology   Sec. III-C sizing/yield table
//!   performance   ULE execution-time overhead
//!   area          L1 area comparison
//!   reliability   yields + fault-injection runs
//!   soft-errors   hard faults + soft errors (DECTED vs SECDED)
//!   ablations     way split, memory latency, granularity, voltage
//!   all           alias of run-all
//! ```
//!
//! Every command is a filtered view of the same sweep matrix, so a
//! job's output is byte-identical whether it is produced by its
//! single-artifact command, by `run-all`, serially or in parallel.

use hyvec_core::experiments::ExperimentParams;
use hyvec_core::sweep::{self, JobKind};
use std::process::ExitCode;

struct CliOptions {
    params: ExperimentParams,
    /// Worker threads; defaults to the core count.
    jobs: usize,
}

fn parse_args() -> Result<(String, CliOptions), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut options = CliOptions {
        params: ExperimentParams::default(),
        jobs: sweep::default_jobs(),
    };
    while let Some(flag) = args.next() {
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--instructions" | "-n" => {
                options.params.instructions = value
                    .parse()
                    .map_err(|e| format!("bad --instructions: {e}"))?;
            }
            "--seed" | "-s" => {
                options.params.seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--jobs" | "-j" => {
                options.jobs = value.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok((command, options))
}

fn usage() -> String {
    "usage: hyvec <run-all|fig3|fig4|methodology|performance|area|reliability|soft-errors\
     |ablations|all> [--instructions N] [--seed S] [--jobs J]"
        .to_string()
}

/// Maps a command name to its job filter; `None` for unknown commands.
#[allow(clippy::type_complexity)]
fn job_filter(command: &str) -> Option<fn(JobKind) -> bool> {
    Some(match command {
        "run-all" | "all" => |_| true,
        "methodology" => |k| matches!(k, JobKind::Methodology(_)),
        "fig3" => |k| matches!(k, JobKind::Fig3(_)),
        "fig4" => |k| matches!(k, JobKind::Fig4(_)),
        "performance" => |k| matches!(k, JobKind::Performance(_)),
        "area" => |k| matches!(k, JobKind::Area(_)),
        "reliability" => |k| matches!(k, JobKind::Reliability(_)),
        "soft-errors" => |k| matches!(k, JobKind::SoftErrors),
        "ablations" => |k| {
            matches!(
                k,
                JobKind::AblationWays(_)
                    | JobKind::AblationMemoryLatency(_)
                    | JobKind::AblationVoltage(_)
                    | JobKind::AblationGranularity
            )
        },
        _ => return None,
    })
}

fn main() -> ExitCode {
    let (command, options) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match job_filter(&command) {
        Some(select) => {
            let report = sweep::run_filtered(options.params, options.jobs, select);
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown command {command}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
