//! Ablation A2: memory-latency sweep (paper Sec. IV-A: "other memory
//! latencies do not change the trends").
//!
//! Thin shell over the `ablation-memlat/*` experiments of the
//! registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_memlat", &["ablation-memlat"])
}
