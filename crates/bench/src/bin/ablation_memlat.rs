//! Ablation A2: memory-latency sweep (paper Sec. IV-A: "other memory
//! latencies do not change the trends").

use hyvec_bench::pct;
use hyvec_core::experiments::{ablation_memory_latency, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    for s in Scenario::ALL {
        println!("Scenario {s}: memory-latency ablation (HP mode)");
        println!("{:<10} {:>10}", "latency", "HP save");
        for r in ablation_memory_latency(s, params) {
            println!("{:<10} {:>10}", r.latency, pct(r.hp_saving));
        }
        println!();
    }
}
