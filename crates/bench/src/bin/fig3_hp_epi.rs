//! Regenerates Figure 3: normalized average EPI at HP mode for
//! scenarios A and B (BigBench, 1V/1GHz, all 8 ways active).

use hyvec_bench::{breakdown_header, breakdown_row, pct};
use hyvec_core::experiments::{fig3_hp_epi, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    println!("Figure 3 — normalized average EPI at HP mode (BigBench)");
    println!("paper: savings of 14% (scenario A) and 12% (scenario B)\n");
    for s in Scenario::ALL {
        let r = fig3_hp_epi(s, params);
        println!("Scenario {s}:");
        println!("{}", breakdown_header());
        println!("{}", breakdown_row("  baseline", &r.baseline));
        println!("{}", breakdown_row("  proposal", &r.proposal));
        println!("  average EPI saving: {}", pct(r.saving));
        println!("  per-benchmark normalized EPI (proposal/baseline):");
        for (b, ratio) in &r.per_benchmark {
            println!("    {:<10} {:.3}", b.to_string(), ratio);
        }
        println!();
    }
}
