//! Regenerates Figure 3: normalized average EPI at HP mode for
//! scenarios A and B (BigBench, 1V/1GHz, all 8 ways active). Paper:
//! savings of ~14% (scenario A) and ~12% (scenario B).
//!
//! Thin shell over the `fig3/*` experiments of the standard registry;
//! supports the shared flags (`--format json`, `--filter fig3/A`, ...).

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("fig3_hp_epi", &["fig3"])
}
