//! Ablation A3: protection granularity — SECDED over 8/16/32-bit
//! words. Finer words tolerate more total faults (smaller cells) but
//! pay proportionally more check-bit storage; 32-bit words balance
//! the two.
//!
//! Thin shell over the `ablation-granularity/A` experiment of the
//! registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_granularity", &["ablation-granularity"])
}
