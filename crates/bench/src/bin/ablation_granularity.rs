//! Ablation A3: protection granularity — SECDED over 8/16/32-bit
//! words (the paper protects 32-bit data words; this quantifies why).

use hyvec_bench::pct;
use hyvec_core::experiments::ablation_granularity;

fn main() {
    println!("Protection-granularity ablation (scenario A, SECDED, 7 check bits/word)\n");
    println!(
        "{:<10} {:>12} {:>9} {:>14}",
        "word bits", "overhead", "8T size", "relative bits"
    );
    for r in ablation_granularity() {
        println!(
            "{:<10} {:>12} {:>9.2} {:>14.3}",
            r.word_bits,
            pct(r.storage_overhead),
            r.sizing_8t,
            r.relative_bits
        );
    }
    println!("\nFiner words tolerate more total faults (smaller cells) but pay");
    println!("proportionally more check-bit storage; 32-bit words balance the two.");
}
