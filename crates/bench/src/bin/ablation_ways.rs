//! Ablation A1: 7+1 vs 6+2 way split (paper Sec. IV-A: "did not
//! provide further insights" — both splits preserve the savings).
//!
//! Thin shell over the `ablation-ways/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_ways", &["ablation-ways"])
}
