//! Ablation A1: 7+1 vs 6+2 way split (paper Sec. IV-A: "did not
//! provide further insights").

use hyvec_bench::pct;
use hyvec_core::experiments::{ablation_ways, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    for s in Scenario::ALL {
        println!("Scenario {s}: way-split ablation");
        println!("{:<8} {:>10} {:>10}", "split", "HP save", "ULE save");
        for r in ablation_ways(s, params) {
            println!(
                "{:<8} {:>10} {:>10}",
                format!("{}+{}", r.hp_ways, r.ule_ways),
                pct(r.hp_saving),
                pct(r.ule_saving)
            );
        }
        println!();
    }
    println!("Both splits preserve the savings — consistent with the paper's");
    println!("decision to report only the 7+1 configuration.");
}
