//! Regenerates the Sec. III-C design-methodology table: failure-rate
//! anchor, cell sizings and yields for both scenarios (Fig. 2 loop).
//! Paper anchor: Pf = 1.22e-6 for 99% yield over the 8K-bit example.
//!
//! Thin shell over the `methodology/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("table_methodology", &["methodology"])
}
