//! Regenerates the Sec. III-C design-methodology table: failure-rate
//! anchor, cell sizings and yields for both scenarios (Fig. 2 loop).

use hyvec_core::experiments::methodology_table;

fn main() {
    println!("Design methodology (paper Sec. III-C / Fig. 2)");
    println!("paper anchor: Pf = 1.22e-6 for 99% yield over the 8K-bit example\n");
    println!(
        "{:<9} {:>11} {:>8} {:>9} {:>11} {:>11} {:>8} {:>11} {:>11} {:>6}",
        "scenario",
        "Pf anchor",
        "6T size",
        "10T size",
        "Pf(10T)",
        "Y baseline",
        "8T size",
        "Pf(8T)",
        "Y proposal",
        "iters"
    );
    for d in methodology_table() {
        println!(
            "{:<9} {:>11.3e} {:>8.2} {:>9.2} {:>11.3e} {:>11.6} {:>8.2} {:>11.3e} {:>11.6} {:>6}",
            format!("{:?}", d.scenario),
            d.pf_target,
            d.sizing_6t,
            d.sizing_10t,
            d.pf_10t,
            d.yield_baseline,
            d.sizing_8t,
            d.pf_8t,
            d.yield_proposal,
            d.iterations
        );
    }
    println!("\nThe EDC-protected 8T cells stay far smaller than the 10T cells at");
    println!("equal (or better) yield — the premise of the paper's energy savings.");
}
