//! Regenerates Figure 4: normalized EPI breakdowns at ULE mode for
//! scenarios A and B (SmallBench, 350mV/5MHz, ULE way only).

use hyvec_bench::{breakdown_header, breakdown_row, pct};
use hyvec_core::experiments::{fig4_ule_epi, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    println!("Figure 4 — normalized EPI breakdowns at ULE mode (SmallBench)");
    println!("paper: average savings of 42% (scenario A) and 39% (scenario B)\n");
    for s in Scenario::ALL {
        let r = fig4_ule_epi(s, params);
        println!("Scenario {s}:");
        println!("{}", breakdown_header());
        for row in &r.rows {
            println!(
                "{}",
                breakdown_row(&format!("  {} baseline", row.benchmark), &row.baseline)
            );
            println!(
                "{}",
                breakdown_row(&format!("  {} proposal", row.benchmark), &row.proposal)
            );
        }
        println!("  average EPI saving: {}\n", pct(r.avg_saving));
    }
}
