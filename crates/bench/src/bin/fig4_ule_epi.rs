//! Regenerates Figure 4: normalized EPI breakdowns at ULE mode for
//! scenarios A and B (SmallBench, 350mV/5MHz, ULE way only). Paper:
//! average savings of ~42% (scenario A) and ~39% (scenario B).
//!
//! Thin shell over the `fig4/*` experiments of the standard registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("fig4_ule_epi", &["fig4"])
}
