//! Regenerates the area comparison (the paper claims energy *and*
//! area efficiency, Sec. I/V): replacing the heavily sized 10T ULE
//! way with modestly sized 8T cells saves area even after paying for
//! the EDC check-bit columns.
//!
//! Thin shell over the `area/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("table_area", &["area"])
}
