//! Regenerates the area comparison (the paper claims energy *and*
//! area efficiency, Sec. I/V).

use hyvec_bench::pct;
use hyvec_core::experiments::area_comparison;
use hyvec_core::Scenario;

fn main() {
    println!("L1 area comparison (IL1 + DL1, 8KB 7+1 each)\n");
    println!(
        "{:<9} {:>14} {:>14} {:>9} {:>16} {:>16}",
        "scenario",
        "baseline um2",
        "proposal um2",
        "saving",
        "ULE way base um2",
        "ULE way prop um2"
    );
    for s in Scenario::ALL {
        let r = area_comparison(s);
        println!(
            "{:<9} {:>14.0} {:>14.0} {:>9} {:>16.1} {:>16.1}",
            format!("{s}"),
            r.baseline_um2,
            r.proposal_um2,
            pct(r.saving),
            r.ule_way_baseline_um2,
            r.ule_way_proposal_um2
        );
    }
    println!("\nReplacing the heavily sized 10T ULE way with modestly sized 8T cells");
    println!("saves area even after paying for the EDC check-bit columns.");
}
