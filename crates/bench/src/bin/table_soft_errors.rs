//! E7: soft errors on top of hard faults — the functional case for
//! DECTED in scenario B. SECDED words already holding a hard fault
//! cannot absorb a soft error (detection only); DECTED keeps
//! correcting — the reliability argument for scenario B's code
//! upgrade.
//!
//! Thin shell over the `soft-errors/B` experiment of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("table_soft_errors", &["soft-errors"])
}
