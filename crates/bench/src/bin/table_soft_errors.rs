//! E7: soft errors on top of hard faults — the functional case for
//! DECTED in scenario B ("DECTED can correct both a soft error and a
//! hard faulty bit in the same word").

use hyvec_core::experiments::{soft_error_study, ExperimentParams};

fn main() {
    let params = ExperimentParams::default();
    // Accelerated upset rate so a short run observes many events.
    let r = soft_error_study(params, 3e-8);
    println!("Hard faults at the design rate + accelerated soft errors (ULE mode)\n");
    println!(
        "{:<28} {:>12} {:>12}",
        "protection on faulty 8T way", "corrected", "uncorrectable"
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "SECDED (scenario-B baseline)", r.secded_corrected, r.secded_detected
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "DECTED (scenario-B proposal)", r.dected_corrected, r.dected_detected
    );
    println!(
        "\nsilent corruptions under either code: {} (both at least detect)",
        r.silent
    );
    println!("\nSECDED words already holding a hard fault cannot absorb a soft");
    println!("error (detection only); DECTED keeps correcting — the reliability");
    println!("argument for scenario B's code upgrade.");
}
