//! Regenerates the reliability-equivalence evidence: analytic yields,
//! Monte-Carlo die sampling, and functional fault-injection runs.

use hyvec_core::experiments::{reliability, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    println!("Reliability equivalence (\"same guaranteed reliability levels\")\n");
    for s in Scenario::ALL {
        let r = reliability(s, 200, params);
        println!("Scenario {s}:");
        println!(
            "  analytic yield     baseline {:.6}  proposal {:.6}",
            r.analytic_baseline, r.analytic_proposal
        );
        println!(
            "  Monte-Carlo yield  proposal {:.4} over {} dies",
            r.mc_proposal, r.dies
        );
        println!(
            "  functional runs    corrected {}  silent corruptions {} (must be 0)",
            r.proposal_corrected, r.proposal_silent
        );
        println!(
            "  no-EDC strawman    silent corruptions {} (the failure EDC prevents)\n",
            r.strawman_silent
        );
    }
}
