//! Regenerates the reliability-equivalence evidence: analytic yields,
//! Monte-Carlo die sampling, and functional fault-injection runs
//! ("same guaranteed reliability levels").
//!
//! Thin shell over the `reliability/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("table_reliability", &["reliability"])
}
