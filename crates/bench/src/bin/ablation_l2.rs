//! Ablation A5: unified-L2 size/latency sweep over the composable
//! memory hierarchy (EPI + stall breakdown behind a slow memory).
//!
//! Thin shell over the `ablation-l2/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_l2", &["ablation-l2"])
}
