//! Ablation A6: multi-core scaling behind a fixed shared L2 (EPI,
//! per-core IPC, L2 hit ratio and contention-induced memory traffic
//! for 1/2/4/8 cores).
//!
//! Thin shell over the `ablation-cores/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_cores", &["ablation-cores"])
}
