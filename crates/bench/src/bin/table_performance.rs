//! Regenerates the Sec. IV-B.2 performance result: execution-time
//! overhead of the proposal at ULE mode ("around 3%... in all cases").

use hyvec_bench::pct;
use hyvec_core::experiments::{ule_performance, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    println!("ULE-mode execution time (SmallBench): proposal vs baseline");
    println!("paper: up to ~3% increase from the extra EDC cycle\n");
    for s in Scenario::ALL {
        println!("Scenario {s}:");
        println!(
            "{:<12} {:>14} {:>14} {:>9}",
            "benchmark", "baseline cyc", "proposal cyc", "overhead"
        );
        let rows = ule_performance(s, params);
        let mut sum = 0.0;
        for r in &rows {
            println!(
                "{:<12} {:>14} {:>14} {:>9}",
                r.benchmark.to_string(),
                r.baseline_cycles,
                r.proposal_cycles,
                pct(r.overhead)
            );
            sum += r.overhead;
        }
        println!("{:<12} {:>38}\n", "average", pct(sum / rows.len() as f64));
    }
}
