//! Regenerates the Sec. IV-B.2 performance result: execution-time
//! overhead of the proposal at ULE mode (paper: "around 3%... in all
//! cases", from the extra EDC cycle).
//!
//! Thin shell over the `performance/*` experiments of the registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("table_performance", &["performance"])
}
