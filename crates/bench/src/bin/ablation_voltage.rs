//! Ablation A4: ULE-voltage sweep — the proposal's advantage across
//! the NST range ("not limited to any particular Vcc level").

use hyvec_bench::pct;
use hyvec_core::experiments::{ablation_voltage, ExperimentParams};
use hyvec_core::Scenario;

fn main() {
    let params = ExperimentParams::default();
    for s in Scenario::ALL {
        println!("Scenario {s}: ULE-voltage sweep");
        println!(
            "{:>8} {:>9} {:>9} {:>10}",
            "Vcc(mV)", "10T size", "8T size", "ULE save"
        );
        for r in ablation_voltage(s, params) {
            println!(
                "{:>8.0} {:>9.2} {:>9.2} {:>10}",
                r.ule_vdd * 1000.0,
                r.sizing_10t,
                r.sizing_8t,
                pct(r.ule_saving)
            );
        }
        println!();
    }
}
