//! Ablation A4: ULE-voltage sweep — the proposal's advantage across
//! the NST range ("not limited to any particular Vcc level").
//!
//! Thin shell over the `ablation-voltage/*` experiments of the
//! registry.

use std::process::ExitCode;

fn main() -> ExitCode {
    hyvec_bench::cli::artifact_main("ablation_voltage", &["ablation-voltage"])
}
