//! `hyvec trace` — generate, transcode, inspect, and replay trace
//! files from the command line.
//!
//! ```text
//! hyvec trace gen <workload> <out.txt> [--instructions N] [--seed S]
//! hyvec trace encode <in.txt> <out.bin> [--chunk-entries N]
//! hyvec trace decode <in.bin> <out.txt>
//! hyvec trace info <in.bin>
//! hyvec trace replay <in.txt|in.bin> [--mode hp|ule]
//! ```
//!
//! `gen` accepts any MediaBench program (`mpeg2_d`, `adpcm_c`, ...)
//! or zoo workload (`zipf`, `ptrchase`, `stencil`, `webburst`) and
//! writes the text format. `encode`/`decode` transcode between the
//! text and binary formats streaming — constant memory in the trace
//! length on the binary side. `info` validates a binary trace and
//! prints its shape. `replay` runs a trace file through the standard
//! single-core machine (hybrid L1, 16KB L2, latency-80 memory) and
//! prints the deterministic counters; the container format is sniffed
//! from the file's magic, so the output is byte-identical for a text
//! trace and its binary encoding — the property CI `cmp`-gates.

use std::fs::File;
use std::io::{BufWriter, Write};

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
use hyvec_cachesim::engine::{RunReport, System};
use hyvec_mediabench::binfmt::{
    summarize, BinaryReplay, TraceWriter, DEFAULT_CHUNK_ENTRIES, MAGIC,
};
use hyvec_mediabench::replay::{parse_trace_line, write_entry_line, Replay};
use hyvec_mediabench::zoo::Workload;
use hyvec_mediabench::{Benchmark, TraceEntry};

/// One-line usage, shown by `hyvec` on a bad `trace` invocation.
pub const TRACE_USAGE: &str = "trace <gen|encode|decode|info|replay> <args> \
     (gen <workload> <out.txt> [--instructions N] [--seed S]; \
     encode <in.txt> <out.bin> [--chunk-entries N]; \
     decode <in.bin> <out.txt>; info <in.bin>; \
     replay <in.txt|in.bin> [--mode hp|ule])";

/// Runs the `trace` subcommand. The output (file contents and the
/// stdout of `info`/`replay`) is fully determined by the arguments.
///
/// # Errors
///
/// Returns a human-readable message on bad arguments, unreadable or
/// malformed inputs, or write failures.
pub fn run(args: impl Iterator<Item = String>) -> Result<(), String> {
    let args: Vec<String> = args.collect();
    let (sub, rest) = args
        .split_first()
        .ok_or_else(|| "trace: missing subcommand".to_string())?;
    match sub.as_str() {
        "gen" => gen(rest),
        "encode" => encode(rest),
        "decode" => decode(rest),
        "info" => info(rest),
        "replay" => replay(rest),
        other => Err(format!("trace: unknown subcommand {other:?}")),
    }
}

/// Positional arguments plus `--flag value` pairs, borrowed from argv.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits `rest` into positional arguments and `--flag value` pairs.
fn split_args(rest: &[String]) -> Result<SplitArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("trace: flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
        } else {
            positional.push(a.as_str());
        }
    }
    Ok((positional, flags))
}

fn parse_u64(name: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|e| format!("trace: bad --{name} {value:?}: {e}"))
}

/// Resolves a workload name against both generator families.
fn source_for(
    name: &str,
    instructions: u64,
    seed: u64,
) -> Option<Box<dyn Iterator<Item = TraceEntry>>> {
    if let Some(w) = Workload::from_name(name) {
        return Some(Box::new(w.trace(instructions, seed)));
    }
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .map(|b| Box::new(b.trace(instructions, seed)) as Box<dyn Iterator<Item = TraceEntry>>)
}

fn gen(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(rest)?;
    let [name, out_path] = pos.as_slice() else {
        return Err("trace gen: want <workload> <out.txt>".to_string());
    };
    let mut instructions = 100_000u64;
    let mut seed = 1u64;
    for (flag, value) in flags {
        match flag {
            "instructions" => instructions = parse_u64(flag, value)?,
            "seed" => seed = parse_u64(flag, value)?,
            other => return Err(format!("trace gen: unknown flag --{other}")),
        }
    }
    let entries = source_for(name, instructions, seed).ok_or_else(|| {
        let zoo: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
        let media: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        format!(
            "trace gen: unknown workload {name:?} (zoo: {}; mediabench: {})",
            zoo.join(", "),
            media.join(", ")
        )
    })?;
    let mut out = BufWriter::new(open_out(out_path)?);
    let mut line = String::new();
    let mut count = 0u64;
    for e in entries {
        line.clear();
        write_entry_line(&mut line, e);
        out.write_all(line.as_bytes())
            .map_err(|e| format!("trace gen: write {out_path}: {e}"))?;
        count += 1;
    }
    out.flush()
        .map_err(|e| format!("trace gen: write {out_path}: {e}"))?;
    eprintln!("wrote {count} entries to {out_path}");
    Ok(())
}

fn encode(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(rest)?;
    let [in_path, out_path] = pos.as_slice() else {
        return Err("trace encode: want <in.txt> <out.bin>".to_string());
    };
    let mut chunk_entries = DEFAULT_CHUNK_ENTRIES;
    for (flag, value) in flags {
        match flag {
            "chunk-entries" => chunk_entries = parse_u64(flag, value)? as usize,
            other => return Err(format!("trace encode: unknown flag --{other}")),
        }
    }
    let text = std::fs::read_to_string(in_path)
        .map_err(|e| format!("trace encode: read {in_path}: {e}"))?;
    let mut writer =
        TraceWriter::with_chunk_entries(BufWriter::new(open_out(out_path)?), chunk_entries);
    for (i, raw) in text.lines().enumerate() {
        if let Some(entry) =
            parse_trace_line(i + 1, raw).map_err(|e| format!("trace encode: {in_path}: {e}"))?
        {
            writer
                .push(entry)
                .map_err(|e| format!("trace encode: write {out_path}: {e}"))?;
        }
    }
    let (_, stats) = writer
        .finish()
        .map_err(|e| format!("trace encode: write {out_path}: {e}"))?;
    eprintln!(
        "encoded {} entries into {} chunks, {} bytes, to {out_path}",
        stats.entries, stats.chunks, stats.bytes
    );
    Ok(())
}

fn decode(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(rest)?;
    let [in_path, out_path] = pos.as_slice() else {
        return Err("trace decode: want <in.bin> <out.txt>".to_string());
    };
    if let Some((flag, _)) = flags.first() {
        return Err(format!("trace decode: unknown flag --{flag}"));
    }
    let mut reader =
        BinaryReplay::from_file(in_path).map_err(|e| format!("trace decode: {in_path}: {e}"))?;
    let mut out = BufWriter::new(open_out(out_path)?);
    let mut line = String::new();
    for e in reader.by_ref() {
        line.clear();
        write_entry_line(&mut line, e);
        out.write_all(line.as_bytes())
            .map_err(|e| format!("trace decode: write {out_path}: {e}"))?;
    }
    if let Some(e) = reader.take_error() {
        return Err(format!("trace decode: {in_path}: {e}"));
    }
    out.flush()
        .map_err(|e| format!("trace decode: write {out_path}: {e}"))?;
    eprintln!("decoded {} entries to {out_path}", reader.entries_read());
    Ok(())
}

fn info(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(rest)?;
    let [in_path] = pos.as_slice() else {
        return Err("trace info: want <in.bin>".to_string());
    };
    if let Some((flag, _)) = flags.first() {
        return Err(format!("trace info: unknown flag --{flag}"));
    }
    let file = File::open(in_path).map_err(|e| format!("trace info: open {in_path}: {e}"))?;
    let s = summarize(std::io::BufReader::new(file))
        .map_err(|e| format!("trace info: {in_path}: {e}"))?;
    println!("format version: {}", s.version);
    println!("entries: {}", s.entries);
    println!("chunks: {}", s.chunks);
    println!("bytes: {}", s.bytes);
    println!("max chunk entries: {}", s.max_chunk_entries);
    if s.entries > 0 {
        println!("bytes/entry: {:.3}", s.bytes as f64 / s.entries as f64);
    }
    Ok(())
}

fn replay(rest: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(rest)?;
    let [in_path] = pos.as_slice() else {
        return Err("trace replay: want <in.txt|in.bin>".to_string());
    };
    let mut mode = Mode::Hp;
    for (flag, value) in flags {
        match (flag, value) {
            ("mode", "hp") => mode = Mode::Hp,
            ("mode", "ule") => mode = Mode::Ule,
            ("mode", other) => return Err(format!("trace replay: bad --mode {other:?}")),
            (other, _) => return Err(format!("trace replay: unknown flag --{other}")),
        }
    }
    let mut system = build_standard_machine()?;
    let report = if is_binary(in_path)? {
        let mut reader = BinaryReplay::from_file(in_path)
            .map_err(|e| format!("trace replay: {in_path}: {e}"))?;
        let report = system.run(&mut reader, mode);
        if let Some(e) = reader.take_error() {
            return Err(format!("trace replay: {in_path}: {e}"));
        }
        report
    } else {
        let replay =
            Replay::from_file(in_path).map_err(|e| format!("trace replay: {in_path}: {e}"))?;
        system.run(replay, mode)
    };
    print!("{}", render_report(&report));
    Ok(())
}

/// Whether the file opens with the binary trace magic.
fn is_binary(path: &str) -> Result<bool, String> {
    use std::io::Read;
    let mut file = File::open(path).map_err(|e| format!("trace replay: open {path}: {e}"))?;
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match file.read(&mut magic[got..]) {
            Ok(0) => return Ok(false),
            Ok(n) => got += n,
            Err(e) => return Err(format!("trace replay: read {path}: {e}")),
        }
    }
    Ok(magic == MAGIC)
}

/// The standard single-core replay machine: hybrid L1 geometry, a
/// 16KB unified L2, latency-80 memory — the same shape as the bench
/// harnesses, so replay figures line up with BENCH_trace.json.
fn build_standard_machine() -> Result<System, String> {
    let l1s = SystemConfig::uniform_6t();
    System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .l2(L2Config::unified(16))
        .memory(MemoryConfig::with_latency(80))
        .build()
        .map_err(|e| format!("trace replay: {e}"))
}

/// The deterministic counter dump CI `cmp`-gates between a text trace
/// and its binary encoding: pure counters and derived ratios, no wall
/// times.
fn render_report(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("mode: {:?}\n", r.mode));
    out.push_str(&format!("instructions: {}\n", r.stats.instructions));
    out.push_str(&format!("cycles: {}\n", r.stats.cycles));
    out.push_str(&format!(
        "cpi: {:.6}\n",
        r.stats.cycles as f64 / r.stats.instructions.max(1) as f64
    ));
    out.push_str(&format!("epi_pj: {:.6}\n", r.epi_pj()));
    for (name, c) in [("il1", &r.stats.il1), ("dl1", &r.stats.dl1)] {
        out.push_str(&format!(
            "{name}: accesses {} hits {} misses {} writebacks {}\n",
            c.accesses, c.hits, c.misses, c.writebacks
        ));
    }
    if let Some(l2) = &r.stats.l2 {
        out.push_str(&format!(
            "l2: accesses {} hits {} misses {} writebacks {}\n",
            l2.accesses, l2.hits, l2.misses, l2.writebacks
        ));
    }
    out.push_str(&format!("memory_accesses: {}\n", r.stats.memory_accesses));
    out.push_str(&format!(
        "stalls: il1 {} dl1 {} edc {}\n",
        r.stats.il1_stall_cycles, r.stats.dl1_stall_cycles, r.stats.edc_stall_cycles
    ));
    out
}

fn open_out(path: &str) -> Result<File, String> {
    File::create(path).map_err(|e| format!("trace: create {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hyvec-tracecmd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<(), String> {
        run(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn gen_encode_decode_round_trip_is_byte_exact() {
        let txt = tmp("rt.txt");
        let bin = tmp("rt.bin");
        let back = tmp("rt_back.txt");
        run_args(&["gen", "zipf", &txt, "--instructions", "5000", "--seed", "3"]).unwrap();
        run_args(&["encode", &txt, &bin, "--chunk-entries", "512"]).unwrap();
        run_args(&["decode", &bin, &back]).unwrap();
        let original = std::fs::read(&txt).unwrap();
        let round_tripped = std::fs::read(&back).unwrap();
        assert_eq!(original, round_tripped, "text -> binary -> text diverged");
        assert!(std::fs::read(&bin).unwrap().len() < original.len());
        run_args(&["info", &bin]).unwrap();
    }

    #[test]
    fn gen_accepts_both_generator_families() {
        let txt = tmp("fam.txt");
        run_args(&["gen", "mpeg2_d", &txt, "--instructions", "100"]).unwrap();
        run_args(&["gen", "ptrchase", &txt, "--instructions", "100"]).unwrap();
        let err = run_args(&["gen", "nope", &txt]).unwrap_err();
        assert!(err.contains("unknown workload"));
        assert!(err.contains("zipf"), "error should list valid names: {err}");
    }

    #[test]
    fn replay_sniffs_the_container_format() {
        let txt = tmp("replay.txt");
        let bin = tmp("replay.bin");
        run_args(&["gen", "gsm_c", &txt, "--instructions", "3000"]).unwrap();
        run_args(&["encode", &txt, &bin]).unwrap();
        assert!(!is_binary(&txt).unwrap());
        assert!(is_binary(&bin).unwrap());
        run_args(&["replay", &txt]).unwrap();
        run_args(&["replay", &bin, "--mode", "ule"]).unwrap();
    }

    #[test]
    fn errors_are_typed_and_named() {
        assert!(run_args(&[]).unwrap_err().contains("missing subcommand"));
        assert!(run_args(&["bogus"]).unwrap_err().contains("bogus"));
        assert!(run_args(&["gen", "zipf"]).unwrap_err().contains("want"));
        assert!(run_args(&["info", "/nonexistent.bin"])
            .unwrap_err()
            .contains("nonexistent"));
        let txt = tmp("errs.txt");
        std::fs::write(&txt, "1000\nnot-hex\n").unwrap();
        let bin = tmp("errs.bin");
        let err = run_args(&["encode", &txt, &bin]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("not-hex"), "{err}");
        // info on a text file reports bad magic, not garbage.
        let err = run_args(&["info", &txt]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn replay_counters_match_between_text_and_binary() {
        let txt = tmp("eq.txt");
        let bin = tmp("eq.bin");
        run_args(&["gen", "webburst", &txt, "--instructions", "8000"]).unwrap();
        run_args(&["encode", &txt, &bin]).unwrap();
        let mut sys_a = build_standard_machine().unwrap();
        let a = sys_a.run(Replay::from_file(&txt).unwrap(), Mode::Hp);
        let mut reader = BinaryReplay::from_file(&bin).unwrap();
        let mut sys_b = build_standard_machine().unwrap();
        let b = sys_b.run(&mut reader, Mode::Hp);
        assert!(reader.error().is_none());
        assert_eq!(render_report(&a), render_report(&b));
    }
}
