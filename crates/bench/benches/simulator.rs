//! Criterion benchmarks of the cache/processor simulator: instructions
//! simulated per wall-clock second on both design points and modes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hyvec_cachesim::{Mode, System};
use hyvec_core::architecture::{Architecture, DesignPoint, Scenario};
use hyvec_mediabench::Benchmark;

fn bench_simulator(c: &mut Criterion) {
    let n = 10_000u64;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(n));
    for (label, point, mode, bench) in [
        (
            "baseline_hp",
            DesignPoint::Baseline,
            Mode::Hp,
            Benchmark::GsmC,
        ),
        (
            "proposal_hp",
            DesignPoint::Proposal,
            Mode::Hp,
            Benchmark::GsmC,
        ),
        (
            "proposal_ule",
            DesignPoint::Proposal,
            Mode::Ule,
            Benchmark::AdpcmC,
        ),
    ] {
        let arch = Architecture::build(Scenario::A, point).expect("arch");
        group.bench_function(label, |b| {
            let mut sys = System::new(arch.config.clone());
            b.iter(|| sys.run(bench.trace(n, 1), mode));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
