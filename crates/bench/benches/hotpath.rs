//! Hot-path throughput harness: measures simulated accesses/sec on
//! the canonical workloads (L1-hit, L2-hit, memory-miss, faulty-line)
//! with the tiered fast path engaged vs the slow path forced, and
//! writes the `BENCH_hotpath.json` artifact.
//!
//! ```text
//! cargo bench --bench hotpath                 # full measurement
//! cargo bench --bench hotpath -- --smoke      # CI smoke mode
//! cargo bench --bench hotpath -- --out P.json # artifact path
//! ```
//!
//! `--test` (what `cargo test --benches` passes) behaves like
//! `--smoke`, so the harness doubles as a fast/slow equivalence smoke
//! test. The default artifact path is relative to the working
//! directory cargo gives the bench (the `hyvec-bench` package root).
//! The measurement core lives in [`hyvec_bench::hotpath`], shared
//! with `hyvec run-all`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut path = "BENCH_hotpath.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--test" => smoke = true,
            "--out" => match args.next() {
                Some(p) => path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            // Ignore the harness flags cargo itself appends
            // (`--bench`, `--nocapture`, ...).
            _ => {}
        }
    }
    let instructions = if smoke { 20_000 } else { 400_000 };
    let report = hyvec_bench::hotpath::measure(instructions);
    print!("{}", report.text());
    if let Err(e) = std::fs::write(&path, report.json()) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote hot-path throughput to {path}");
    ExitCode::SUCCESS
}
