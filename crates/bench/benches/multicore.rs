//! Epoch-parallel scaling harness: measures the multi-core engine's
//! serial reference loop vs the threaded epoch merge per core count,
//! and writes the `BENCH_multicore.json` artifact.
//!
//! ```text
//! cargo bench --bench multicore                 # full measurement
//! cargo bench --bench multicore -- --smoke      # CI smoke mode
//! cargo bench --bench multicore -- --out P.json # artifact path
//! ```
//!
//! `--test` (what `cargo test --benches` passes) behaves like
//! `--smoke`, so the harness doubles as a serial/threaded equivalence
//! smoke test: the measurement asserts the two paths' reports are
//! identical before trusting any timing. The measurement core lives
//! in [`hyvec_bench::multicore`], shared with `hyvec run-all`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut path = "BENCH_multicore.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--test" => smoke = true,
            "--out" => match args.next() {
                Some(p) => path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            // Ignore the harness flags cargo itself appends
            // (`--bench`, `--nocapture`, ...).
            _ => {}
        }
    }
    let instructions = if smoke {
        2_000
    } else {
        hyvec_bench::multicore::RUN_ALL_INSTRUCTIONS
    };
    let report =
        hyvec_bench::multicore::measure(instructions, hyvec_bench::multicore::default_threads());
    print!("{}", report.text());
    if let Err(e) = std::fs::write(&path, report.json()) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote epoch-parallel scaling to {path}");
    ExitCode::SUCCESS
}
