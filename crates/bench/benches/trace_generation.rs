//! Criterion benchmarks of the synthetic MediaBench trace generators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hyvec_mediabench::Benchmark;

fn bench_traces(c: &mut Criterion) {
    let n = 10_000u64;
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(n));
    for b in [Benchmark::AdpcmC, Benchmark::GsmC, Benchmark::Mpeg2D] {
        group.bench_function(b.name(), |bench| bench.iter(|| b.trace(n, 1).count()));
    }
    group.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
