//! Criterion micro-benchmarks of the EDC substrate: encode/decode
//! throughput of the Hsiao SECDED and BCH DECTED codes used by the
//! cache datapath.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyvec_edc::{DectedCode, EdcCode, HsiaoCode};

fn bench_edc(c: &mut Criterion) {
    let secded = HsiaoCode::secded32();
    let dected = DectedCode::dected32();
    let data = 0xDEAD_BEEFu64;
    let secded_cw = secded.encode(data);
    let dected_cw = dected.encode(data);

    let mut group = c.benchmark_group("edc");
    group.bench_function("secded32_encode", |b| {
        b.iter(|| secded.encode(black_box(data)))
    });
    group.bench_function("secded32_decode_clean", |b| {
        b.iter(|| secded.decode(black_box(secded_cw)))
    });
    group.bench_function("secded32_decode_correct1", |b| {
        b.iter(|| secded.decode(black_box(secded_cw ^ 0x10)))
    });
    group.bench_function("dected32_encode", |b| {
        b.iter(|| dected.encode(black_box(data)))
    });
    group.bench_function("dected32_decode_clean", |b| {
        b.iter(|| dected.decode(black_box(dected_cw)))
    });
    group.bench_function("dected32_decode_correct2", |b| {
        b.iter(|| dected.decode(black_box(dected_cw ^ 0x140)))
    });
    group.finish();
}

criterion_group!(benches, bench_edc);
criterion_main!(benches);
