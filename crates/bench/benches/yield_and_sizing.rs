//! Criterion benchmarks of the reliability math: yield equations and
//! the full Fig. 2 sizing methodology.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hyvec_core::methodology::{design_ule_way, MethodologyInputs};
use hyvec_core::Scenario;
use hyvec_sram::yield_model::{cache_yield, required_pf, word_ok_probability};
use hyvec_sram::FailureModel;

fn bench_yield(c: &mut Criterion) {
    let mut group = c.benchmark_group("yield");
    group.bench_function("word_ok_probability", |b| {
        b.iter(|| word_ok_probability(black_box(1.6e-4), 39, 1))
    });
    group.bench_function("cache_yield_eq2", |b| {
        b.iter(|| cache_yield(black_box(0.99997), 256, black_box(0.99998), 32))
    });
    group.bench_function("required_pf", |b| {
        b.iter(|| required_pf(black_box(0.99), 8192))
    });
    let model = FailureModel::default();
    let inputs = MethodologyInputs::default();
    group.bench_function("methodology_scenario_a", |b| {
        b.iter(|| design_ule_way(Scenario::A, &model, &inputs).unwrap())
    });
    group.bench_function("methodology_scenario_b", |b| {
        b.iter(|| design_ule_way(Scenario::B, &model, &inputs).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_yield);
criterion_main!(benches);
