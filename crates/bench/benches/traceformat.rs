//! Trace-format throughput harness: measures binary vs text
//! encode/decode/replay rates and the size ratio, and writes the
//! `BENCH_trace.json` artifact.
//!
//! ```text
//! cargo bench --bench traceformat                 # full measurement
//! cargo bench --bench traceformat -- --smoke      # CI smoke mode
//! cargo bench --bench traceformat -- --out P.json # artifact path
//! ```
//!
//! `--test` (what `cargo test --benches` passes) behaves like
//! `--smoke`, so the harness doubles as a binary/text replay
//! equivalence smoke test: the measurement asserts both replay paths
//! produce the identical report before trusting any timing. The
//! measurement core lives in [`hyvec_bench::tracebench`], shared with
//! `hyvec run-all`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut path = "BENCH_trace.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--test" => smoke = true,
            "--out" => match args.next() {
                Some(p) => path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            // Ignore the harness flags cargo itself appends
            // (`--bench`, `--nocapture`, ...).
            _ => {}
        }
    }
    let instructions = if smoke {
        3_000
    } else {
        hyvec_bench::tracebench::RUN_ALL_INSTRUCTIONS
    };
    let report = hyvec_bench::tracebench::measure(instructions);
    print!("{}", report.text());
    if let Err(e) = std::fs::write(&path, report.json()) {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote trace-format throughput to {path}");
    ExitCode::SUCCESS
}
