//! Technology constants and operating points.

/// Per-node electrical constants feeding the array model.
///
/// The defaults ([`TechnologyParams::nm32`]) are representative of the
/// 32nm node the paper evaluates (CACTI 6.5 with 32nm ITRS parameters,
/// PTM transistors for the EDC circuits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    /// Wire capacitance along bitlines/wordlines, fF per µm.
    pub wire_cap_ff_per_um: f64,
    /// Effective switched capacitance of one sense amplifier firing, fF.
    pub sense_amp_ff: f64,
    /// Decoder switched capacitance per decoded row, fF.
    pub decoder_cap_per_row_ff: f64,
    /// Fixed decoder/driver overhead per access, fF.
    pub decoder_base_ff: f64,
    /// Precharge driver capacitance per column, fF.
    pub precharge_ff_per_col: f64,
    /// Output driver capacitance per delivered bit, fF.
    pub output_driver_ff: f64,
    /// Effective switched capacitance of one 2-input XOR gate per
    /// operation, fF (includes average activity factor and local
    /// wiring) — the HSPICE-derived figure of the paper.
    pub xor_gate_ff: f64,
    /// Layout area of one XOR-equivalent gate, µm².
    pub xor_gate_area_um2: f64,
    /// Fraction of the array macro occupied by bitcells (the rest is
    /// periphery: decoders, sense amps, drivers).
    pub array_efficiency: f64,
    /// Base access delay of a 64-row minimum-size 6T array at 1.0V, ns.
    pub base_delay_ns: f64,
}

impl TechnologyParams {
    /// The 32nm parameter set used throughout the reproduction.
    pub fn nm32() -> Self {
        TechnologyParams {
            wire_cap_ff_per_um: 0.20,
            sense_amp_ff: 1.2,
            decoder_cap_per_row_ff: 0.08,
            decoder_base_ff: 4.0,
            precharge_ff_per_col: 0.25,
            output_driver_ff: 0.8,
            xor_gate_ff: 0.06,
            xor_gate_area_um2: 0.35,
            array_efficiency: 0.72,
            base_delay_ns: 0.45,
        }
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        TechnologyParams::nm32()
    }
}

/// A supply-voltage / clock-frequency operating point.
///
/// The paper's two modes: HP at 1.0V / 1GHz and ULE at 350mV / 5MHz
/// (in line with the Intel wide-operating-range IA-32 processor, Jain
/// et al., ISSCC 2012).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Clock frequency, hertz.
    pub freq_hz: f64,
}

impl OperatingPoint {
    /// High-performance mode: 1.0V, 1GHz.
    pub fn hp() -> Self {
        OperatingPoint {
            vdd: 1.0,
            freq_hz: 1.0e9,
        }
    }

    /// Ultra-low-energy mode: 350mV, 5MHz.
    pub fn ule() -> Self {
        OperatingPoint {
            vdd: 0.35,
            freq_hz: 5.0e6,
        }
    }

    /// Creates a custom operating point.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` or `freq_hz` is not positive and finite.
    pub fn new(vdd: f64, freq_hz: f64) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): a non-positive supply voltage is physically meaningless")
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): a non-positive clock frequency is physically meaningless")
        assert!(
            freq_hz.is_finite() && freq_hz > 0.0,
            "frequency must be positive"
        );
        OperatingPoint { vdd, freq_hz }
    }

    /// Clock period in seconds.
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.freq_hz
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0e9 / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_points() {
        let hp = OperatingPoint::hp();
        assert_eq!(hp.vdd, 1.0);
        assert_eq!(hp.cycle_ns(), 1.0);
        let ule = OperatingPoint::ule();
        assert_eq!(ule.vdd, 0.35);
        assert_eq!(ule.cycle_ns(), 200.0);
    }

    #[test]
    fn cycle_conversions() {
        let op = OperatingPoint::new(0.5, 2.0e8);
        assert!((op.cycle_s() - 5e-9).abs() < 1e-18);
        assert!((op.cycle_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn rejects_bad_vdd() {
        let _ = OperatingPoint::new(0.0, 1e9);
    }

    #[test]
    fn default_is_32nm() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::nm32());
    }
}
