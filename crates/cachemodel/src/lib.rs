//! # hyvec-cachemodel — CACTI-style energy / delay / area models
//!
//! The paper models its caches with a custom-extended CACTI 6.5 plus
//! HSPICE simulations of the EDC circuits. This crate is the stand-in:
//! a parametric, structural model of SRAM arrays built from the
//! [`hyvec_sram`] cell library, with the same dependency chain CACTI
//! captures:
//!
//! * **dynamic energy** tracks switched capacitance — bitlines (scaling
//!   with row count, cell size and cell height), wordlines, decoders,
//!   sense amplifiers;
//! * **leakage power** tracks the total device width of the array and
//!   the supply voltage;
//! * **area** tracks cell footprint over an array-efficiency factor;
//! * **delay** tracks the cell drive strength at the operating voltage.
//!
//! [`EdcCircuit`] models the encoder/decoder logic of the EDC codes
//! (the paper's HSPICE part) from synthesized gate counts.
//!
//! # Example
//!
//! ```
//! use hyvec_cachemodel::{OperatingPoint, SramArray, TechnologyParams};
//! use hyvec_sram::{CellKind, SizedCell};
//!
//! let tech = TechnologyParams::nm32();
//! // One 1KB cache way of 10T cells sized 2.15x, 64x128 bits.
//! let way = SramArray::new(SizedCell::new(CellKind::Sram10T, 2.15), 64, 128, 39, tech);
//! let hp = OperatingPoint::hp();
//! let ule = OperatingPoint::ule();
//! assert!(way.read_energy_pj(ule.vdd) < way.read_energy_pj(hp.vdd));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod array;
pub mod edc_circuit;
pub mod params;

pub use array::SramArray;
pub use edc_circuit::EdcCircuit;
pub use params::{OperatingPoint, TechnologyParams};
