//! Energy/area model of EDC encoder and decoder circuits.
//!
//! The paper obtains encoder/decoder energy from HSPICE simulations of
//! the synthesized circuits (32nm PTM, 10% Vt variation). Here the
//! circuits are characterized by their two-input-XOR-equivalent gate
//! counts — reported exactly by the code implementations in
//! [`hyvec_edc`] — times an effective per-gate switched capacitance.
//! That preserves the figure that matters to the evaluation: DECTED
//! logic costs a small integer multiple of SECDED logic, and both are
//! small relative to an array access.

use crate::params::TechnologyParams;
use hyvec_edc::EdcCode;

/// Energy/area model for the encode and decode logic of one EDC code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdcCircuit {
    encoder_gates: usize,
    decoder_gates: usize,
    latency_cycles: u32,
    tech: TechnologyParams,
}

impl EdcCircuit {
    /// Characterizes the circuits of `code`.
    ///
    /// The paper charges one clock cycle for SECDED/DECTED encoding and
    /// decoding; pass-through codes cost nothing.
    pub fn for_code(code: &dyn EdcCode, tech: TechnologyParams) -> Self {
        let latency = if code.check_bits() == 0 { 0 } else { 1 };
        EdcCircuit {
            encoder_gates: code.encoder_xor_gates(),
            decoder_gates: code.decoder_xor_gates(),
            latency_cycles: latency,
            tech,
        }
    }

    /// A zero-cost circuit (no coding).
    pub fn none(tech: TechnologyParams) -> Self {
        EdcCircuit {
            encoder_gates: 0,
            decoder_gates: 0,
            latency_cycles: 0,
            tech,
        }
    }

    /// Energy of one encode operation at supply `vdd`, pJ.
    pub fn encode_energy_pj(&self, vdd: f64) -> f64 {
        self.encoder_gates as f64 * self.tech.xor_gate_ff * vdd * vdd / 1000.0
    }

    /// Energy of one decode (syndrome + correct) operation at supply
    /// `vdd`, pJ.
    pub fn decode_energy_pj(&self, vdd: f64) -> f64 {
        self.decoder_gates as f64 * self.tech.xor_gate_ff * vdd * vdd / 1000.0
    }

    /// Pipeline latency added to an access when the code is active,
    /// clock cycles (1 in the paper, 0 for no coding).
    pub fn latency_cycles(&self) -> u32 {
        self.latency_cycles
    }

    /// Layout area of encoder plus decoder, µm².
    pub fn area_um2(&self) -> f64 {
        (self.encoder_gates + self.decoder_gates) as f64 * self.tech.xor_gate_area_um2
    }

    /// Leakage of the EDC logic at supply `vdd`, watts (gate count
    /// times a per-gate leakage in the same scaling family as the
    /// arrays; tiny, but accounted for completeness).
    pub fn leakage_w(&self, vdd: f64) -> f64 {
        // ~0.4 nA per gate at 1V with the same supply sensitivity the
        // cell model uses.
        let per_gate_na = 0.4 * (6.5 * (vdd - 1.0)).exp();
        (self.encoder_gates + self.decoder_gates) as f64 * per_gate_na * 1e-9 * vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyvec_edc::{DectedCode, HsiaoCode, NoCode};

    fn tech() -> TechnologyParams {
        TechnologyParams::nm32()
    }

    #[test]
    fn no_code_costs_nothing() {
        let c = EdcCircuit::for_code(&NoCode::new(32), tech());
        assert_eq!(c.encode_energy_pj(1.0), 0.0);
        assert_eq!(c.decode_energy_pj(1.0), 0.0);
        assert_eq!(c.latency_cycles(), 0);
        assert_eq!(c.area_um2(), 0.0);
        assert_eq!(c, EdcCircuit::none(tech()));
    }

    #[test]
    fn secded_and_dected_cost_one_cycle() {
        let s = EdcCircuit::for_code(&HsiaoCode::secded32(), tech());
        let d = EdcCircuit::for_code(&DectedCode::dected32(), tech());
        assert_eq!(s.latency_cycles(), 1);
        assert_eq!(d.latency_cycles(), 1);
    }

    #[test]
    fn dected_costs_more_than_secded() {
        let s = EdcCircuit::for_code(&HsiaoCode::secded32(), tech());
        let d = EdcCircuit::for_code(&DectedCode::dected32(), tech());
        assert!(d.encode_energy_pj(0.35) > s.encode_energy_pj(0.35));
        assert!(d.decode_energy_pj(0.35) > s.decode_energy_pj(0.35));
        assert!(d.area_um2() > s.area_um2());
        // ...but bounded (the Chien-search correction logic dominates
        // the DECTED decoder), not orders of magnitude.
        assert!(d.decode_energy_pj(0.35) < 25.0 * s.decode_energy_pj(0.35));
    }

    #[test]
    fn edc_energy_small_relative_to_array_access() {
        use crate::SramArray;
        use hyvec_sram::{CellKind, SizedCell};
        let way = SramArray::new(SizedCell::new(CellKind::Sram8T, 1.8), 64, 156, 39, tech());
        let d = EdcCircuit::for_code(&HsiaoCode::secded32(), tech());
        let v = 0.35;
        assert!(
            d.decode_energy_pj(v) < 0.2 * way.read_energy_pj(v),
            "EDC decode {} pJ vs array read {} pJ",
            d.decode_energy_pj(v),
            way.read_energy_pj(v)
        );
    }

    #[test]
    fn energy_scales_quadratically_with_vdd() {
        let s = EdcCircuit::for_code(&HsiaoCode::secded32(), tech());
        let hi = s.decode_energy_pj(1.0);
        let lo = s.decode_energy_pj(0.5);
        assert!((hi / lo - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_is_positive_and_tiny() {
        let d = EdcCircuit::for_code(&DectedCode::dected32(), tech());
        let leak = d.leakage_w(0.35);
        assert!(leak > 0.0 && leak < 1e-6);
    }
}
