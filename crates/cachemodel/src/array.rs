//! The SRAM array model: per-access dynamic energy, leakage power,
//! area and access delay of one homogeneous bitcell array.
//!
//! An array is `rows x cols` bitcells of one [`SizedCell`] type, with
//! `cols_per_access` columns actually sensed/driven per access (column
//! multiplexing). Reads develop a partial swing on every precharged
//! bitline of the activated row; writes drive the selected columns
//! full-swing. This is the same structural decomposition CACTI uses,
//! reduced to the terms that differ across the paper's design points.

use crate::params::TechnologyParams;
use hyvec_sram::SizedCell;

/// One homogeneous SRAM array (e.g. the data array of one cache way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramArray {
    cell: SizedCell,
    rows: u32,
    cols: u32,
    cols_per_access: u32,
    tech: TechnologyParams,
}

impl SramArray {
    /// Creates an array of `rows x cols` cells of which
    /// `cols_per_access` are sensed or written per access.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `cols_per_access > cols`.
    pub fn new(
        cell: SizedCell,
        rows: u32,
        cols: u32,
        cols_per_access: u32,
        tech: TechnologyParams,
    ) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): a zero-dimension array is a caller bug")
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): access width must fit the physical row")
        assert!(
            cols_per_access > 0 && cols_per_access <= cols,
            "cols_per_access must be in 1..=cols (got {cols_per_access} of {cols})"
        );
        SramArray {
            cell,
            rows,
            cols,
            cols_per_access,
            tech,
        }
    }

    /// Lays out `bits` storage bits as an array delivering
    /// `word_bits` per access, folding wordlines so that the physical
    /// row width is `fold * word_bits` and the row count stays near the
    /// given target (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a multiple of `word_bits`.
    pub fn for_bits(
        cell: SizedCell,
        bits: u64,
        word_bits: u32,
        target_rows: u32,
        tech: TechnologyParams,
    ) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): fractional words cannot be laid out")
        assert!(
            bits.is_multiple_of(u64::from(word_bits)),
            "bits ({bits}) must be a multiple of word_bits ({word_bits})"
        );
        let words = bits / u64::from(word_bits);
        // Choose the fold (words per physical row) bringing the row
        // count closest to the target without exceeding the word count.
        let mut fold = 1u64;
        while words / fold > u64::from(target_rows) && fold < words {
            fold *= 2;
        }
        let rows = (words / fold).max(1) as u32;
        let cols = (fold as u32) * word_bits;
        SramArray::new(cell, rows, cols, word_bits, tech)
    }

    /// The bitcell of the array.
    pub fn cell(&self) -> &SizedCell {
        &self.cell
    }

    /// Number of physical rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of physical columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Columns sensed/driven per access.
    pub fn cols_per_access(&self) -> u32 {
        self.cols_per_access
    }

    /// Total bit capacity.
    pub fn bits(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Capacitance of one full bitline, fF: the drain load of every
    /// cell on the column plus the wire running the column height.
    pub fn bitline_cap_ff(&self) -> f64 {
        f64::from(self.rows)
            * (self.cell.bitline_cap_ff() + self.tech.wire_cap_ff_per_um * self.cell.height_um())
    }

    /// Capacitance of one wordline, fF.
    pub fn wordline_cap_ff(&self) -> f64 {
        f64::from(self.cols)
            * (self.cell.wordline_cap_ff() + self.tech.wire_cap_ff_per_um * self.cell.width_um())
    }

    fn periphery_energy_fj(&self, vdd: f64) -> f64 {
        let cap = self.tech.decoder_base_ff
            + self.tech.decoder_cap_per_row_ff * f64::from(self.rows)
            + self.tech.precharge_ff_per_col * f64::from(self.cols)
            + (self.tech.sense_amp_ff + self.tech.output_driver_ff)
                * f64::from(self.cols_per_access);
        cap * vdd * vdd
    }

    /// Dynamic energy of one read access at supply `vdd`, in pJ.
    ///
    /// Every column of the activated row develops the cell's read
    /// swing on its `read_bitlines` bitlines; the selected columns
    /// additionally fire sense amps and output drivers.
    pub fn read_energy_pj(&self, vdd: f64) -> f64 {
        let kind = self.cell.kind();
        let swing = kind.read_swing_fraction() * vdd;
        let bitlines = f64::from(self.cols)
            * f64::from(kind.read_bitlines())
            * self.bitline_cap_ff()
            * vdd
            * swing;
        let wordline = self.wordline_cap_ff() * vdd * vdd;
        (bitlines + wordline + self.periphery_energy_fj(vdd)) / 1000.0
    }

    /// Dynamic energy of one write access at supply `vdd`, in pJ.
    ///
    /// Written columns swing full rail on both write bitlines; the
    /// remaining columns of the row still perform a dummy read swing.
    pub fn write_energy_pj(&self, vdd: f64) -> f64 {
        let kind = self.cell.kind();
        let written = f64::from(self.cols_per_access)
            * f64::from(kind.write_bitlines())
            * self.bitline_cap_ff()
            * vdd
            * vdd;
        let dummy = f64::from(self.cols - self.cols_per_access)
            * f64::from(kind.read_bitlines())
            * self.bitline_cap_ff()
            * vdd
            * (kind.read_swing_fraction() * vdd);
        let wordline = self.wordline_cap_ff() * vdd * vdd;
        (written + dummy + wordline + self.periphery_energy_fj(vdd)) / 1000.0
    }

    /// Static leakage power of the whole array at supply `vdd`, watts.
    pub fn leakage_w(&self, vdd: f64) -> f64 {
        self.bits() as f64 * self.cell.leakage_na(vdd) * 1e-9 * vdd
    }

    /// Macro area including periphery, µm².
    pub fn area_um2(&self) -> f64 {
        self.bits() as f64 * self.cell.area_um2() / self.tech.array_efficiency
    }

    /// Access delay at supply `vdd`, ns (decoder + wordline + bitline +
    /// sense, folded into the cell delay factor and a row-count term).
    pub fn access_delay_ns(&self, vdd: f64) -> f64 {
        self.tech.base_delay_ns * self.cell.delay_factor(vdd) * (f64::from(self.rows) / 64.0).sqrt()
    }

    /// Whether the array meets a cycle time, ns, at supply `vdd`.
    pub fn meets_cycle(&self, vdd: f64, cycle_ns: f64) -> bool {
        self.access_delay_ns(vdd) <= cycle_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::OperatingPoint;
    use hyvec_sram::CellKind;

    fn tech() -> TechnologyParams {
        TechnologyParams::nm32()
    }

    fn array(kind: CellKind, sizing: f64) -> SramArray {
        SramArray::new(SizedCell::new(kind, sizing), 64, 128, 32, tech())
    }

    #[test]
    fn for_bits_shapes() {
        let cell = SizedCell::new(CellKind::Sram6T, 1.0);
        // 1KB way: 8192 bits of 32-bit words, targeting 64 rows.
        let a = SramArray::for_bits(cell, 8192, 32, 64, tech());
        assert_eq!(a.bits(), 8192);
        assert_eq!(a.rows(), 64);
        assert_eq!(a.cols(), 128);
        assert_eq!(a.cols_per_access(), 32);
        // Tag array: 32 tags of 26 bits, fits in 32 rows directly.
        let t = SramArray::for_bits(cell, 32 * 26, 26, 64, tech());
        assert_eq!(t.rows(), 32);
        assert_eq!(t.cols(), 26);
    }

    #[test]
    #[should_panic(expected = "multiple of word_bits")]
    fn for_bits_rejects_ragged() {
        let cell = SizedCell::new(CellKind::Sram6T, 1.0);
        let _ = SramArray::for_bits(cell, 100, 32, 64, tech());
    }

    #[test]
    fn read_energy_scales_with_voltage() {
        let a = array(CellKind::Sram6T, 1.0);
        let hp = a.read_energy_pj(OperatingPoint::hp().vdd);
        let ule = a.read_energy_pj(OperatingPoint::ule().vdd);
        assert!(hp > 0.0 && ule > 0.0);
        // Energy ~ V^2: 0.35^2 ~ 0.12.
        let ratio = ule / hp;
        assert!(
            ratio > 0.08 && ratio < 0.16,
            "V^2 scaling violated: {ratio}"
        );
    }

    #[test]
    fn ten_t_way_reads_cost_more_than_8t() {
        // The heart of the paper's HP-mode savings: a sized-up 10T way
        // burns more read energy than a modestly sized 8T way.
        let t10 = array(CellKind::Sram10T, 2.15);
        let t8 = array(CellKind::Sram8T, 1.8);
        assert!(
            t10.read_energy_pj(1.0) > 1.5 * t8.read_energy_pj(1.0),
            "10T {} vs 8T {}",
            t10.read_energy_pj(1.0),
            t8.read_energy_pj(1.0)
        );
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let a = array(CellKind::Sram6T, 1.0);
        assert!(a.write_energy_pj(1.0) > a.read_energy_pj(1.0) * 0.5);
        assert!(a.write_energy_pj(1.0) > 0.0);
    }

    #[test]
    fn leakage_tracks_cell_count_and_voltage() {
        let small = SramArray::new(SizedCell::new(CellKind::Sram6T, 1.0), 32, 64, 32, tech());
        let big = SramArray::new(SizedCell::new(CellKind::Sram6T, 1.0), 64, 128, 32, tech());
        assert!((big.leakage_w(1.0) / small.leakage_w(1.0) - 4.0).abs() < 1e-9);
        assert!(big.leakage_w(0.35) < big.leakage_w(1.0));
    }

    #[test]
    fn area_ordering_follows_cells() {
        let a6 = array(CellKind::Sram6T, 1.0);
        let a8 = array(CellKind::Sram8T, 1.0);
        let a10 = array(CellKind::Sram10T, 1.0);
        assert!(a6.area_um2() < a8.area_um2());
        assert!(a8.area_um2() < a10.area_um2());
    }

    #[test]
    fn delay_meets_paper_frequencies() {
        // HP ways (6T, min size) must make 1GHz at 1V.
        let hp_way = array(CellKind::Sram6T, 1.0);
        assert!(hp_way.meets_cycle(1.0, 1.0), "6T must meet 1ns at 1V");
        // ULE way (sized 10T) must make 5MHz at 350mV.
        let ule_way = array(CellKind::Sram10T, 2.15);
        assert!(
            ule_way.meets_cycle(0.35, 200.0),
            "10T must meet 200ns at 350mV: {} ns",
            ule_way.access_delay_ns(0.35)
        );
        // ...but not 1GHz at 350mV.
        assert!(!ule_way.meets_cycle(0.35, 1.0));
    }

    #[test]
    fn bitline_cap_grows_with_rows_and_sizing() {
        let short = SramArray::new(SizedCell::new(CellKind::Sram8T, 1.0), 32, 64, 32, tech());
        let tall = SramArray::new(SizedCell::new(CellKind::Sram8T, 1.0), 128, 64, 32, tech());
        assert!(tall.bitline_cap_ff() > 3.9 * short.bitline_cap_ff());
        let sized = SramArray::new(SizedCell::new(CellKind::Sram8T, 2.0), 32, 64, 32, tech());
        assert!(sized.bitline_cap_ff() > short.bitline_cap_ff());
    }

    #[test]
    #[should_panic(expected = "cols_per_access")]
    fn rejects_overwide_access() {
        let _ = SramArray::new(SizedCell::new(CellKind::Sram6T, 1.0), 8, 8, 9, tech());
    }
}
