//! Property-based tests of the array energy/delay/area model.

use hyvec_cachemodel::{EdcCircuit, SramArray, TechnologyParams};
use hyvec_edc::{DectedCode, HsiaoCode, Protection};
use hyvec_sram::{CellKind, SizedCell};
use proptest::prelude::*;

prop_compose! {
    fn arb_array()(
        kind_sel in 0usize..3,
        sizing in 1.0f64..4.0,
        rows_log in 4u32..9,
        cols_log in 4u32..9,
    ) -> SramArray {
        let kind = CellKind::ALL[kind_sel];
        let rows = 1u32 << rows_log;
        let cols = 1u32 << cols_log;
        SramArray::new(
            SizedCell::new(kind, sizing),
            rows,
            cols,
            cols.min(32),
            TechnologyParams::nm32(),
        )
    }
}

proptest! {
    /// Energies, leakage, area and delay are positive and scale with
    /// voltage the right way for any geometry.
    #[test]
    fn array_quantities_are_sane(array in arb_array(), vdd in 0.3f64..1.2) {
        let read = array.read_energy_pj(vdd);
        let write = array.write_energy_pj(vdd);
        prop_assert!(read > 0.0 && write > 0.0);
        prop_assert!(array.leakage_w(vdd) > 0.0);
        prop_assert!(array.area_um2() > 0.0);
        prop_assert!(array.access_delay_ns(vdd) > 0.0);
        // Dynamic energy strictly increases with voltage.
        prop_assert!(array.read_energy_pj(vdd + 0.05) > read);
        // Delay decreases (or stays) with voltage.
        prop_assert!(array.access_delay_ns(vdd + 0.05) <= array.access_delay_ns(vdd) * 1.0001);
    }

    /// Doubling rows doubles leakage exactly and increases read
    /// energy (longer bitlines).
    #[test]
    fn row_scaling(cols_log in 4u32..8, sizing in 1.0f64..3.0) {
        let tech = TechnologyParams::nm32();
        let cell = SizedCell::new(CellKind::Sram6T, sizing);
        let cols = 1u32 << cols_log;
        let a = SramArray::new(cell, 32, cols, cols.min(32), tech);
        let b = SramArray::new(cell, 64, cols, cols.min(32), tech);
        prop_assert!((b.leakage_w(1.0) / a.leakage_w(1.0) - 2.0).abs() < 1e-9);
        prop_assert!(b.read_energy_pj(1.0) > a.read_energy_pj(1.0));
        prop_assert!(b.bitline_cap_ff() > a.bitline_cap_ff());
    }

    /// `for_bits` always produces an array holding exactly the
    /// requested bits with the requested access width.
    #[test]
    fn for_bits_conserves_bits(
        words_log in 3u32..10,
        word_bits in prop::sample::select(vec![16u32, 26, 32, 39, 45]),
        target_rows in prop::sample::select(vec![32u32, 64, 128]),
    ) {
        let words = 1u64 << words_log;
        let bits = words * u64::from(word_bits);
        let cell = SizedCell::new(CellKind::Sram8T, 1.5);
        let a = SramArray::for_bits(cell, bits, word_bits, target_rows, TechnologyParams::nm32());
        prop_assert_eq!(a.bits(), bits);
        prop_assert_eq!(a.cols_per_access(), word_bits);
        prop_assert_eq!(u64::from(a.rows()) * u64::from(a.cols()), bits);
    }

    /// EDC circuit energy scales exactly with V^2 and is ordered by
    /// code strength for every voltage.
    #[test]
    fn edc_circuit_scaling(vdd in 0.3f64..1.1) {
        let tech = TechnologyParams::nm32();
        let s = EdcCircuit::for_code(&HsiaoCode::secded32(), tech);
        let d = EdcCircuit::for_code(&DectedCode::dected32(), tech);
        prop_assert!(d.decode_energy_pj(vdd) > s.decode_energy_pj(vdd));
        prop_assert!(d.encode_energy_pj(vdd) > s.encode_energy_pj(vdd));
        let ratio = s.decode_energy_pj(vdd) / s.decode_energy_pj(vdd / 2.0);
        prop_assert!((ratio - 4.0).abs() < 1e-9);
    }

    /// Protection factory and circuit model agree on zero-cost
    /// pass-through.
    #[test]
    fn none_protection_is_free(bits in 1usize..57) {
        let tech = TechnologyParams::nm32();
        let code = Protection::None.build(bits).unwrap();
        let c = EdcCircuit::for_code(code.as_ref(), tech);
        prop_assert_eq!(c.encode_energy_pj(1.0), 0.0);
        prop_assert_eq!(c.latency_cycles(), 0);
    }
}
