//! The multi-core engine: N private split-L1 front ends over a
//! shared-L2 or private-L2 topology, simulated epoch-parallel.
//!
//! The paper's evaluation is single-core, but the composable
//! [`MemoryLevel`] chain was built so
//! new platform shapes could be assembled on top of it. This module
//! adds the baseline shape every cache-reliability study assumes —
//! several in-order cores, each with its own IL1/DL1 pair (the same
//! hybrid-way, bit-accurate caches the single-core engine drives),
//! missing into **one** shared L2/memory chain — plus the
//! [`Topology::PrivateL2`](crate::config::Topology) variant: a
//! private L2 per core over one shared memory, optionally kept
//! MESI-coherent (see [`PrivateL2s`]).
//!
//! # Execution model
//!
//! The canonical order is a round-robin interleaving of the N
//! independent [`TraceSource`]s at instruction granularity (one
//! instruction per core per round, core 0 first, via
//! [`hyvec_mediabench::Interleave`]); cores whose trace ends drop out
//! of the rotation. Each core keeps its own cycle count — cores
//! execute concurrently, so per-core time is what IPC means here —
//! while *contention* appears architecturally: the cores' miss
//! streams interleave in the shared L2, evicting each other's lines.
//!
//! # Epoch-parallel simulation
//!
//! An L1 hit or miss depends only on the issuing core's own address
//! stream, never on the chain below — so the expensive part of the
//! simulation (driving the bit-accurate L1s) parallelizes. With
//! [`set_sim_threads`](MultiCoreSystem::set_sim_threads) above 1, a
//! run proceeds in epochs of [`EPOCH_INSTRUCTIONS`] per core:
//!
//! 1. each core's [`EpochSource`] hands it a bounded slice of its
//!    trace; worker threads drive the private L1 front ends through
//!    their slices, logging every chain-bound fill request
//!    (`front_entry`) and charging chain-independent stats;
//! 2. at the epoch barrier, one merge pass replays the logs against
//!    the shared chain in canonical core-then-round order
//!    (`apply_fill`), charging fill stalls and energy.
//!
//! Every live core contributes entries to consecutive rounds from the
//! start of each epoch until it drains, so the merge visits the chain
//! in exactly the serial interleaving order — counters are
//! **bit-identical** to the serial reference loop
//! ([`run_interleaved`](MultiCoreSystem::run_interleaved)) at any
//! core count and invariant across `--sim-threads 1/2/8` (pinned by
//! the determinism suite and the `epoch_merge` proptests).
//!
//! Soft-error draws come from *per-core* RNG streams seeded with
//! [`per_core_seed`], and exposure integrates each instruction's
//! core-local cycles (base + bubbles, excluding chain fill stalls),
//! so injection happens inline on the worker and lands identically in
//! the serial and threaded schedules.
//!
//! Bandwidth arbitration (queueing at the shared L2 port) is *not*
//! modeled; the contention cost is the architectural one above. Nor
//! is idle-tail leakage: a core that drains its trace early is
//! treated as gated off until the makespan (its energy integrates
//! over its own active cycles only — see
//! [`MultiCoreReport::total_energy_pj`]).
//!
//! # Example
//!
//! ```
//! use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
//! use hyvec_cachesim::engine::System;
//! use hyvec_mediabench::Benchmark;
//!
//! let l1s = SystemConfig::uniform_6t();
//! let mut system = System::builder()
//!     .il1(l1s.il1.clone())
//!     .dl1(l1s.dl1.clone())
//!     .l2(L2Config::unified(64))
//!     .memory(MemoryConfig::with_latency(80))
//!     .build_multi(2)
//!     .expect("valid configuration");
//! system.set_sim_threads(2); // epoch-parallel; same counters as 1
//! let traces = vec![
//!     Benchmark::GsmC.trace(5_000, 1),
//!     Benchmark::Mpeg2C.trace(5_000, 2),
//! ];
//! let report = system.run(traces, Mode::Hp);
//! assert_eq!(report.per_core.len(), 2);
//! assert_eq!(report.instructions(), 10_000);
//! assert!(report.l2.expect("shared L2").accesses > 0);
//! ```

use crate::cache::HybridCache;
use crate::config::{CacheConfig, Mode};
use crate::engine::{apply_fill, front_entry, ChainRequest, CoreTiming, RunReport, System};
use crate::hierarchy::{AccessOutcome, AccessRequest, Hierarchy, MemoryLevel, PrivateL2s};
use crate::power::PowerModel;
use crate::stats::{CacheStats, RunStats};
use hyvec_cachemodel::OperatingPoint;
use hyvec_mediabench::{per_core_seed, EpochSource, Interleave, TraceEntry, TraceSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Instructions each core simulates per epoch between merge barriers.
///
/// Large enough that per-epoch coordination (two barrier waits plus
/// one lock per core) amortizes to noise against ~4k instructions of
/// bit-accurate L1 simulation; small enough that the per-core logs
/// stay cache-resident. Results do not depend on this value — the
/// merge replays the canonical order exactly at any epoch length.
pub const EPOCH_INSTRUCTIONS: usize = 4096;

/// Process-wide default for [`MultiCoreSystem::set_sim_threads`],
/// applied at construction. 1 (the initial value) means serial.
static GLOBAL_SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default worker-thread count newly built
/// [`MultiCoreSystem`]s start with (clamped to at least 1). The
/// `--sim-threads` CLI flag lands here via the sweep runner; results
/// are invariant to the value by construction.
pub fn set_global_sim_threads(threads: usize) {
    GLOBAL_SIM_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-wide default worker-thread count (see
/// [`set_global_sim_threads`]).
pub fn global_sim_threads() -> usize {
    GLOBAL_SIM_THREADS.load(Ordering::Relaxed)
}

/// The chain below the L1s of a multi-core machine: one shared
/// [`Hierarchy`] (the default topology), or a private L2 per core.
#[derive(Debug)]
pub(crate) enum MultiChain {
    /// One L2/memory chain shared by every core.
    Shared(Hierarchy),
    /// A private L2 per core over one shared memory
    /// ([`crate::config::Topology::PrivateL2`]).
    Private(PrivateL2s),
}

impl MultiChain {
    fn as_dyn(&self) -> &dyn MemoryLevel {
        match self {
            MultiChain::Shared(h) => h.as_dyn(),
            MultiChain::Private(p) => p,
        }
    }

    fn flush(&mut self) {
        match self {
            MultiChain::Shared(h) => MemoryLevel::flush(h),
            MultiChain::Private(p) => MemoryLevel::flush(p),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            MultiChain::Shared(h) => MemoryLevel::reset_stats(h),
            MultiChain::Private(p) => MemoryLevel::reset_stats(p),
        }
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        self.as_dyn().chain_stats()
    }
}

/// Result of one multi-core run: per-core reports plus the merged
/// counters of the chain below the L1s.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreReport {
    /// One [`RunReport`] per core, in core order. Per-core
    /// `stats.memory_accesses` counts the core's *demand* fills that
    /// reached memory; buffered writebacks are only attributable to
    /// the shared chain and appear in [`MultiCoreReport::memory`].
    pub per_core: Vec<RunReport>,
    /// Counters of the L2 level, when the chain has one: the shared
    /// L2, or the aggregate over all private L2s (including their
    /// coherence `invalidations`/`interventions`).
    pub l2: Option<CacheStats>,
    /// Counters of the shared memory level (demand fills plus
    /// writebacks from every core).
    pub memory: CacheStats,
    /// The mode the run executed in.
    pub mode: Mode,
}

impl MultiCoreReport {
    /// Instructions executed across all cores.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|r| r.stats.instructions).sum()
    }

    /// Total energy across all cores (each core's L1s + its share of
    /// the hierarchy below), pJ.
    ///
    /// Each core's energy integrates over its *own active window*
    /// (its cycle count): a core that drains its trace before the
    /// makespan is treated as gated off — the same gated-Vdd
    /// machinery the paper's HP ways use at ULE — so it leaks nothing
    /// while the stragglers finish. Idle-tail leakage of an
    /// *ungated* finished core is deliberately not modeled.
    pub fn total_energy_pj(&self) -> f64 {
        self.per_core.iter().map(|r| r.energy.total_pj()).sum()
    }

    /// Energy per instruction over the whole machine, pJ (see
    /// [`MultiCoreReport::total_energy_pj`] for the active-window
    /// energy semantics).
    pub fn epi_pj(&self) -> f64 {
        let instructions = self.instructions();
        if instructions == 0 {
            0.0
        } else {
            self.total_energy_pj() / instructions as f64
        }
    }

    /// Hit ratio of the L2 level (0 when the chain has none).
    pub fn l2_hit_ratio(&self) -> f64 {
        self.l2.map_or(0.0, |l2| l2.hit_ratio())
    }

    /// Cycles of the slowest core: the wall-clock length of the run,
    /// since cores execute concurrently.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|r| r.stats.cycles)
            .max()
            .unwrap_or(0)
    }
}

/// Per-instruction record of one core's epoch log: the core-local
/// cycles the L1 front charged, and how many of the epoch's
/// chain-bound requests this instruction issued.
#[derive(Debug, Clone, Copy)]
struct InstrRecord {
    local_cycles: u64,
    requests: u32,
}

/// Everything one core owns during an epoch-parallel run: its L1
/// front end, its chunked trace, its SEU stream, and the epoch log
/// the merge pass replays. Wrapped in a `Mutex` purely as a
/// thread-safe cell — the worker phase and the merge phase never
/// overlap, so locks are uncontended by construction.
#[derive(Debug)]
struct CoreWork<T> {
    il1: HybridCache,
    dl1: HybridCache,
    source: EpochSource<T>,
    rng: SmallRng,
    stats: RunStats,
    /// This epoch's trace slice (reused across epochs).
    slice: Vec<TraceEntry>,
    /// This epoch's per-instruction records (reused across epochs).
    instrs: Vec<InstrRecord>,
    /// This epoch's chain-bound requests, in program order (reused).
    requests: Vec<ChainRequest>,
}

impl<T: TraceSource> CoreWork<T> {
    /// The worker phase of one epoch: pull a slice, drive the L1s,
    /// log chain-bound requests, draw SEUs from the core's own stream
    /// over core-local cycles.
    fn run_epoch(&mut self, timing: CoreTiming, seu_rate: f64, ule_bits: u64) {
        self.instrs.clear();
        self.requests.clear();
        self.source.next_epoch(EPOCH_INSTRUCTIONS, &mut self.slice);
        let seu_active = seu_rate > 0.0;
        for i in 0..self.slice.len() {
            let entry = self.slice[i];
            let before = self.requests.len();
            self.stats.instructions += 1;
            let local = front_entry(
                &mut self.il1,
                &mut self.dl1,
                timing,
                &mut self.stats,
                entry,
                &mut self.requests,
            );
            self.instrs.push(InstrRecord {
                local_cycles: local,
                requests: (self.requests.len() - before) as u32,
            });
            if seu_active {
                maybe_inject_seu(
                    &mut self.il1,
                    &mut self.dl1,
                    &mut self.rng,
                    seu_rate,
                    ule_bits,
                    local,
                );
            }
        }
    }
}

/// One soft-error draw for one instruction: `local_cycles` of
/// exposure over the core's powered ULE bits, from the core's own RNG
/// stream. Used identically by the serial reference loop and the
/// epoch workers, which is what makes SEU-active runs thread-count
/// invariant.
fn maybe_inject_seu(
    il1: &mut HybridCache,
    dl1: &mut HybridCache,
    rng: &mut SmallRng,
    seu_rate: f64,
    ule_bits: u64,
    local_cycles: u64,
) {
    let expected = seu_rate * ule_bits as f64 * local_cycles as f64;
    if rng.gen::<f64>() < expected {
        if rng.gen::<bool>() {
            System::inject_random_seu(il1, rng);
        } else {
            System::inject_random_seu(dl1, rng);
        }
    }
}

/// The multi-core machine: N private front ends (core + IL1 + DL1)
/// over one shared [`MemoryLevel`] chain or per-core private L2s.
///
/// Built by [`SystemBuilder::build_multi`](crate::engine::SystemBuilder::build_multi);
/// a 1-core instance reproduces [`System`] runs
/// counter-for-counter (asserted in the test suite).
#[derive(Debug)]
pub struct MultiCoreSystem {
    /// Per-core `(il1, dl1)` pairs.
    fronts: Vec<(HybridCache, HybridCache)>,
    /// The chain below the L1s (shared, or private L2s per core).
    below: MultiChain,
    /// One power model (all cores share a configuration).
    power: PowerModel,
    /// Soft-error injection, as in [`System`]; an upset lands in the
    /// caches of the core whose entry triggered it (the one accruing
    /// the exposure cycles).
    seu_rate_per_bit_cycle: f64,
    /// Base seed of the per-core SEU streams (see [`per_core_seed`]);
    /// streams are re-derived at the start of every run, so warm
    /// re-runs are reproducible.
    seu_seed: u64,
    /// Worker threads for the epoch-parallel engine; 1 = serial.
    sim_threads: usize,
}

impl MultiCoreSystem {
    /// Assembles the machine from parts the builder validated.
    pub(crate) fn from_parts(
        fronts: Vec<(HybridCache, HybridCache)>,
        below: MultiChain,
        power: PowerModel,
        seu_rate_per_bit_cycle: f64,
        seu_seed: u64,
    ) -> Self {
        MultiCoreSystem {
            fronts,
            below,
            power,
            seu_rate_per_bit_cycle,
            seu_seed,
            sim_threads: global_sim_threads(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.fronts.len()
    }

    /// The chain beneath the L1s, for inspection (the shared
    /// hierarchy, or the [`PrivateL2s`] set under a private topology).
    pub fn below(&self) -> &dyn MemoryLevel {
        self.below.as_dyn()
    }

    /// Worker threads the next run will use (1 = the serial reference
    /// loop).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Sets the worker-thread count of the epoch-parallel engine
    /// (clamped to at least 1). Counters are bit-identical at any
    /// value; only wall time changes. New instances default to
    /// [`global_sim_threads`].
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = threads.max(1);
    }

    /// One core's caches, for fault injection (`core` panics when out
    /// of range).
    pub fn core_mut(&mut self, core: usize) -> (&mut HybridCache, &mut HybridCache) {
        let (il1, dl1) = &mut self.fronts[core];
        (il1, dl1)
    }

    /// The one IL1/DL1 configuration every front end shares.
    ///
    /// The cores of a [`MultiCoreSystem`] are homogeneous by
    /// construction (`build_multi` clones one configuration), and the
    /// run paths rely on that: one [`CoreTiming`], one SEU exposure
    /// figure. This helper is the single place that reads core 0's
    /// configs on behalf of all cores, and debug-asserts the
    /// invariant instead of silently assuming it.
    fn shared_core_config(&self) -> (&CacheConfig, &CacheConfig) {
        let (il1, dl1) = &self.fronts[0];
        debug_assert!(
            self.fronts
                .iter()
                .all(|(i, d)| i.config() == il1.config() && d.config() == dl1.config()),
            "multi-core fronts must share one IL1/DL1 configuration"
        );
        (il1.config(), dl1.config())
    }

    /// Timing constants shared by every core this run.
    fn core_timing(&self, mode: Mode) -> CoreTiming {
        let (_, dl1) = self.shared_core_config();
        CoreTiming {
            il1_edc_latency: self.power.il1.edc_latency_cycles(mode),
            dl1_edc_latency: self.power.dl1.edc_latency_cycles(mode),
            dl1_line_bytes: dl1.line_bytes,
        }
    }

    /// Soft-error exposure of one core's powered ULE bits (all cores
    /// share a configuration); 0 when injection is off, so fault-free
    /// runs skip the whole branch.
    fn ule_exposure_bits(&self) -> u64 {
        if self.seu_rate_per_bit_cycle <= 0.0 {
            return 0;
        }
        let (il1, dl1) = self.shared_core_config();
        [il1, dl1]
            .iter()
            .map(|c| {
                c.ways
                    .iter()
                    .filter(|w| w.ule_enabled)
                    .map(|w| {
                        c.sets()
                            * (c.words_per_line()
                                * (u64::from(c.word_bits) + w.stored_check_bits() as u64)
                                + u64::from(c.tag_bits)
                                + w.stored_check_bits() as u64)
                    })
                    .sum::<u64>()
            })
            .sum()
    }

    /// Per-core SEU streams for one run, derived fresh from the base
    /// seed so warm re-runs reproduce.
    fn core_rngs(&self) -> Vec<SmallRng> {
        (0..self.fronts.len())
            .map(|core| SmallRng::seed_from_u64(per_core_seed(self.seu_seed, core)))
            .collect()
    }

    /// Mode transition: flush and reset every L1 and the chain below.
    fn prepare(&mut self, mode: Mode) {
        for (il1, dl1) in &mut self.fronts {
            il1.set_mode(mode);
            dl1.set_mode(mode);
            il1.reset_stats();
            dl1.reset_stats();
        }
        self.below.flush();
        self.below.reset_stats();
    }

    /// Assembles the report after either run path: fold the per-core
    /// L1 counters back in, price the energy, read the chain.
    fn finish(
        &self,
        stats: Vec<RunStats>,
        below_pj: Vec<f64>,
        mode: Mode,
        op: OperatingPoint,
    ) -> MultiCoreReport {
        let chain = self.below.chain_stats();
        let l2 = chain
            .iter()
            .find(|(name, _)| *name == "l2")
            .map(|(_, s)| *s);
        let memory = chain
            .iter()
            .find(|(name, _)| *name == "memory")
            .map(|(_, s)| *s)
            .unwrap_or_default();

        let per_core = self
            .fronts
            .iter()
            .zip(stats)
            .zip(below_pj)
            .map(|((front, mut stats), below_pj)| {
                stats.il1 = *front.0.stats();
                stats.dl1 = *front.1.stats();
                let mut energy = self.power.breakdown_at(&stats, mode, op);
                if below_pj > 0.0 {
                    energy.other_pj += below_pj;
                }
                let seconds = stats.cycles as f64 * op.cycle_s();
                RunReport {
                    stats,
                    energy,
                    mode,
                    seconds,
                }
            })
            .collect();

        MultiCoreReport {
            per_core,
            l2,
            memory,
            mode,
        }
    }

    /// Runs one trace per core to completion at `mode`, in the
    /// canonical round-robin order (core 0 first). With
    /// [`set_sim_threads`](MultiCoreSystem::set_sim_threads) above 1
    /// the epoch-parallel engine runs the L1 front ends on worker
    /// threads; counters are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the core count.
    pub fn run<T>(&mut self, sources: Vec<T>, mode: Mode) -> MultiCoreReport
    where
        T: TraceSource + Send,
    {
        self.run_at(sources, mode, mode.operating_point())
    }

    /// Like [`run`](MultiCoreSystem::run) but at an explicit operating
    /// point (the DVS-sweep entry point).
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the core count.
    pub fn run_at<T>(&mut self, sources: Vec<T>, mode: Mode, op: OperatingPoint) -> MultiCoreReport
    where
        T: TraceSource + Send,
    {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): one trace source per core")
        assert_eq!(
            sources.len(),
            self.fronts.len(),
            "need exactly one trace source per core"
        );
        if self.sim_threads <= 1 {
            self.run_interleaved(Interleave::new(sources), mode, op)
        } else {
            self.run_epochs(sources, mode, op)
        }
    }

    /// Runs an already-interleaved stream of `(core, entry)` pairs —
    /// the serial reference loop behind single-threaded
    /// [`run`](MultiCoreSystem::run) calls, and the general entry
    /// point for custom schedules (unequal time slices, bursty
    /// arrivals, recorded multi-core traces). The epoch-parallel path
    /// is pinned bit-identical to this loop by the test suite.
    ///
    /// Caches are flushed on entry (the mode transition) and
    /// statistics reset, as in [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if an entry names a core at or beyond the core count.
    pub fn run_interleaved<I>(
        &mut self,
        entries: I,
        mode: Mode,
        op: OperatingPoint,
    ) -> MultiCoreReport
    where
        I: IntoIterator<Item = (usize, TraceEntry)>,
    {
        self.prepare(mode);
        let timing = self.core_timing(mode);
        let ule_bits = self.ule_exposure_bits();
        let rate = self.seu_rate_per_bit_cycle;
        let mut rngs = self.core_rngs();

        let n = self.fronts.len();
        let mut stats = vec![RunStats::default(); n];
        let mut below_pj = vec![0.0f64; n];
        {
            // As in the single-core engine: dispatch on the chain's
            // shape once, so the whole interleaved loop runs
            // monomorphized for the stock shapes.
            let MultiCoreSystem { fronts, below, .. } = self;
            match below {
                MultiChain::Shared(Hierarchy::Memory(m)) => serial_loop(
                    entries,
                    fronts,
                    timing,
                    rate,
                    ule_bits,
                    &mut rngs,
                    &mut stats,
                    &mut below_pj,
                    |_, req| m.access(req),
                ),
                MultiChain::Shared(Hierarchy::L2(l2)) => serial_loop(
                    entries,
                    fronts,
                    timing,
                    rate,
                    ule_bits,
                    &mut rngs,
                    &mut stats,
                    &mut below_pj,
                    |_, req| l2.access(req),
                ),
                MultiChain::Shared(Hierarchy::Custom(b)) => serial_loop(
                    entries,
                    fronts,
                    timing,
                    rate,
                    ule_bits,
                    &mut rngs,
                    &mut stats,
                    &mut below_pj,
                    |_, req| b.access(req),
                ),
                MultiChain::Private(p) => serial_loop(
                    entries,
                    fronts,
                    timing,
                    rate,
                    ule_bits,
                    &mut rngs,
                    &mut stats,
                    &mut below_pj,
                    |core, req| p.access_from(core, req),
                ),
            }
        }

        self.finish(stats, below_pj, mode, op)
    }

    /// The epoch-parallel path: worker threads drive the L1 front
    /// ends through per-core trace slices; the coordinator replays
    /// each epoch's request logs against the chain in canonical
    /// order. See the module docs for the full protocol.
    fn run_epochs<T>(&mut self, sources: Vec<T>, mode: Mode, op: OperatingPoint) -> MultiCoreReport
    where
        T: TraceSource + Send,
    {
        self.prepare(mode);
        let timing = self.core_timing(mode);
        let ule_bits = self.ule_exposure_bits();
        let rate = self.seu_rate_per_bit_cycle;
        let n = self.fronts.len();
        let threads = self.sim_threads.min(n);

        let rngs = self.core_rngs();
        let works: Vec<Mutex<CoreWork<T>>> = std::mem::take(&mut self.fronts)
            .into_iter()
            .zip(sources)
            .zip(rngs)
            .map(|(((il1, dl1), source), rng)| {
                Mutex::new(CoreWork {
                    il1,
                    dl1,
                    source: EpochSource::new(source),
                    rng,
                    stats: RunStats::default(),
                    slice: Vec::with_capacity(EPOCH_INSTRUCTIONS),
                    instrs: Vec::with_capacity(EPOCH_INSTRUCTIONS),
                    requests: Vec::new(),
                })
            })
            .collect();
        let mut below_pj = vec![0.0f64; n];

        {
            let works = &works;
            let below = &mut self.below;
            let below_pj = &mut below_pj[..];
            // Barrier A releases the workers into an epoch; barrier B
            // tells the coordinator the worker phase is over. Workers
            // then block at the next A while the coordinator merges.
            let barrier = &Barrier::new(threads + 1);
            let next_core = &AtomicUsize::new(0);
            let stop = &AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(move || loop {
                        barrier.wait(); // A
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        loop {
                            let core = next_core.fetch_add(1, Ordering::Relaxed);
                            if core >= works.len() {
                                break;
                            }
                            works[core]
                                .lock()
                                // hyvec-lint: allow(no-panic, "poisoned only if a sibling worker already panicked; propagating is the only sane option")
                                .expect("a worker thread panicked")
                                .run_epoch(timing, rate, ule_bits);
                        }
                        barrier.wait(); // B
                    });
                }
                match below {
                    MultiChain::Shared(Hierarchy::Memory(m)) => {
                        coordinate(
                            works,
                            barrier,
                            next_core,
                            stop,
                            below_pj,
                            timing,
                            |_, req| m.access(req),
                        );
                    }
                    MultiChain::Shared(Hierarchy::L2(l2)) => {
                        coordinate(
                            works,
                            barrier,
                            next_core,
                            stop,
                            below_pj,
                            timing,
                            |_, req| l2.access(req),
                        );
                    }
                    MultiChain::Shared(Hierarchy::Custom(b)) => {
                        coordinate(
                            works,
                            barrier,
                            next_core,
                            stop,
                            below_pj,
                            timing,
                            |_, req| b.access(req),
                        );
                    }
                    MultiChain::Private(p) => {
                        coordinate(
                            works,
                            barrier,
                            next_core,
                            stop,
                            below_pj,
                            timing,
                            |core, req| p.access_from(core, req),
                        );
                    }
                }
            });
        }

        let mut stats = Vec::with_capacity(n);
        for work in works {
            let work = work
                .into_inner()
                // hyvec-lint: allow(no-panic, "poisoned only if a worker panicked, which the scope already propagated")
                .expect("a worker thread panicked");
            self.fronts.push((work.il1, work.dl1));
            stats.push(work.stats);
        }
        self.finish(stats, below_pj, mode, op)
    }
}

/// The serial reference loop: one entry at a time in the canonical
/// order, front phase and chain phase back-to-back. Generic over the
/// chain access so each stock shape compiles its own monomorphized
/// copy (the closure is `FnMut(core, request)`; the shared shapes
/// ignore the core index, the private-L2 shape routes by it).
#[allow(clippy::too_many_arguments)]
fn serial_loop<I, F>(
    entries: I,
    fronts: &mut [(HybridCache, HybridCache)],
    timing: CoreTiming,
    seu_rate: f64,
    ule_bits: u64,
    rngs: &mut [SmallRng],
    stats: &mut [RunStats],
    below_pj: &mut [f64],
    mut chain: F,
) where
    I: IntoIterator<Item = (usize, TraceEntry)>,
    F: FnMut(usize, AccessRequest) -> AccessOutcome,
{
    let n = fronts.len();
    let seu_active = seu_rate > 0.0;
    let mut requests: Vec<ChainRequest> = Vec::new();
    for (core, entry) in entries {
        // hyvec-lint: allow(no-panic, "Interleave tags every entry with a core index < n by construction; a violation is a driver bug")
        assert!(core < n, "entry for core {core} on a {n}-core system");
        let (il1, dl1) = &mut fronts[core];
        stats[core].instructions += 1;
        requests.clear();
        let local = front_entry(il1, dl1, timing, &mut stats[core], entry, &mut requests);
        let mut cycles = local;
        for req in &requests {
            let fill = chain(
                core,
                AccessRequest {
                    addr: req.addr,
                    is_write: req.is_write,
                },
            );
            cycles += apply_fill(
                timing,
                req.kind,
                fill,
                &mut stats[core],
                &mut below_pj[core],
            );
        }
        stats[core].cycles += cycles;

        if seu_active {
            maybe_inject_seu(il1, dl1, &mut rngs[core], seu_rate, ule_bits, local);
        }
    }
}

/// The coordinator side of the epoch protocol: release the workers
/// into an epoch, wait for them, then replay every core's log against
/// the chain in canonical core-then-round order. Runs entirely while
/// the workers are parked at the next epoch's barrier, so the locks
/// are uncontended and the chain sees exactly the serial order.
fn coordinate<T, F>(
    works: &[Mutex<CoreWork<T>>],
    barrier: &Barrier,
    next_core: &AtomicUsize,
    stop: &AtomicBool,
    below_pj: &mut [f64],
    timing: CoreTiming,
    mut chain: F,
) where
    T: TraceSource,
    F: FnMut(usize, AccessRequest) -> AccessOutcome,
{
    let mut cursors = vec![0usize; works.len()];
    loop {
        next_core.store(0, Ordering::Relaxed);
        barrier.wait(); // A: workers start the epoch
        barrier.wait(); // B: workers are done, parked before next A

        let mut guards: Vec<MutexGuard<'_, CoreWork<T>>> = works
            .iter()
            .map(|w| {
                w.lock()
                    // hyvec-lint: allow(no-panic, "poisoned only if a worker panicked; propagating is the only sane option")
                    .expect("a worker thread panicked")
            })
            .collect();
        let rounds = guards.iter().map(|g| g.instrs.len()).max().unwrap_or(0);
        cursors.iter_mut().for_each(|c| *c = 0);
        for round in 0..rounds {
            for core in 0..guards.len() {
                let work = &mut *guards[core];
                let Some(rec) = work.instrs.get(round).copied() else {
                    continue;
                };
                let mut cycles = rec.local_cycles;
                for _ in 0..rec.requests {
                    let req = work.requests[cursors[core]];
                    cursors[core] += 1;
                    let fill = chain(
                        core,
                        AccessRequest {
                            addr: req.addr,
                            is_write: req.is_write,
                        },
                    );
                    cycles +=
                        apply_fill(timing, req.kind, fill, &mut work.stats, &mut below_pj[core]);
                }
                work.stats.cycles += cycles;
            }
        }
        let done = guards.iter().all(|g| g.source.is_done());
        drop(guards);
        if done {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    barrier.wait(); // final A: workers observe `stop` and exit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigError, L2Config, MemoryConfig, Mesi, SystemConfig, Topology};
    use crate::engine::System;
    use hyvec_mediabench::Benchmark;

    fn builder() -> crate::engine::SystemBuilder {
        System::builder()
            .config(SystemConfig::uniform_6t())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
    }

    #[test]
    fn zero_cores_is_rejected() {
        assert_eq!(builder().build_multi(0).unwrap_err(), ConfigError::NoCores);
    }

    #[test]
    fn private_topology_needs_an_l2_geometry() {
        let err = System::builder()
            .config(SystemConfig::uniform_6t())
            .topology(Topology::PrivateL2 { coherence: None })
            .build_multi(2)
            .unwrap_err();
        assert_eq!(err, ConfigError::MissingCache { cache: "l2" });
    }

    #[test]
    fn one_core_matches_the_single_core_engine() {
        // The multi-core engine with one core must reproduce System
        // counter-for-counter: same caches, same chain, same timing.
        let mut single = builder().build().expect("single");
        let mut multi = builder().build_multi(1).expect("multi");
        let trace = || Benchmark::Mpeg2C.trace(20_000, 3);
        let s = single.run(trace(), Mode::Hp);
        let m = multi.run(vec![trace()], Mode::Hp);
        let core = &m.per_core[0];
        assert_eq!(core.stats.instructions, s.stats.instructions);
        assert_eq!(core.stats.cycles, s.stats.cycles);
        assert_eq!(core.stats.il1, s.stats.il1);
        assert_eq!(core.stats.dl1, s.stats.dl1);
        assert_eq!(core.stats.il1_stall_cycles, s.stats.il1_stall_cycles);
        assert_eq!(core.stats.dl1_stall_cycles, s.stats.dl1_stall_cycles);
        assert_eq!(m.l2, s.stats.l2);
        assert_eq!(m.memory.accesses, s.stats.memory_accesses);
        assert_eq!(core.seconds, s.seconds);
        // Energy matches except the per-core report keeps its demand
        // memory count rather than the chain's total.
        assert!((core.energy.total_pj() - s.energy.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn interleaved_runs_are_deterministic() {
        let sources = || {
            (0..4)
                .map(|i| Benchmark::BIG[i].trace(5_000, i as u64 + 1))
                .collect::<Vec<_>>()
        };
        let mut a = builder().build_multi(4).expect("4 cores");
        let mut b = builder().build_multi(4).expect("4 cores");
        let ra = a.run(sources(), Mode::Hp);
        let rb = b.run(sources(), Mode::Hp);
        assert_eq!(ra, rb, "same sources must give identical reports");
        // And re-running the same warm system matches too (run resets
        // all state).
        let ra2 = a.run(sources(), Mode::Hp);
        assert_eq!(ra, ra2);
    }

    #[test]
    fn threaded_epochs_match_the_serial_reference() {
        // The flagship invariant: the epoch-parallel engine is
        // bit-identical to the serial loop at every thread count,
        // including with soft errors active and unequal trace lengths
        // (cores drain mid-epoch). The epoch_merge proptests sweep
        // the grid; this is the fast deterministic anchor.
        let build = || {
            System::builder()
                .config(SystemConfig::uniform_6t())
                .memory(MemoryConfig::with_latency(80))
                .l2(L2Config::unified(16))
                .seu(5e-8, 11)
                .build_multi(3)
                .expect("3 cores")
        };
        let sources = || {
            vec![
                Benchmark::AdpcmC.trace(4_100, 1),
                Benchmark::GsmC.trace(1_300, 2),
                Benchmark::Mpeg2C.trace(2_600, 3),
            ]
        };
        let mut serial = build();
        serial.set_sim_threads(1);
        let reference = serial.run(sources(), Mode::Ule);
        for threads in [2, 8] {
            let mut parallel = build();
            parallel.set_sim_threads(threads);
            assert_eq!(parallel.sim_threads(), threads);
            let r = parallel.run(sources(), Mode::Ule);
            assert_eq!(
                r, reference,
                "sim-threads {threads} must match the serial reference"
            );
        }
    }

    #[test]
    fn cores_contend_for_the_shared_l2() {
        // The same L1-overflowing program on 4 cores (each in its
        // private address window) behind one small shared L2 must see
        // a lower L2 hit ratio and more memory traffic per
        // instruction than it does alone: the cores' disjoint working
        // sets evict each other's lines.
        use hyvec_mediabench::multiprogram_sources;
        let mut one = builder().build_multi(1).expect("1 core");
        let mut four = builder().build_multi(4).expect("4 cores");
        let n = 20_000u64;
        let r1 = one.run(multiprogram_sources(&[Benchmark::Mpeg2C], n, 1), Mode::Hp);
        let r4 = four.run(
            multiprogram_sources(&[Benchmark::Mpeg2C; 4], n, 1),
            Mode::Hp,
        );
        let traffic =
            |mem: &CacheStats, instructions: u64| mem.accesses as f64 / instructions as f64;
        assert!(
            traffic(&r4.memory, r4.instructions()) > traffic(&r1.memory, r1.instructions()),
            "shared-L2 contention must raise per-instruction memory traffic: {} vs {}",
            traffic(&r4.memory, r4.instructions()),
            traffic(&r1.memory, r1.instructions())
        );
        assert!(
            r4.l2_hit_ratio() < r1.l2_hit_ratio(),
            "contention must depress the shared-L2 hit ratio: {} vs {}",
            r4.l2_hit_ratio(),
            r1.l2_hit_ratio()
        );
        assert_eq!(r4.per_core.len(), 4);
        assert!(r4.makespan_cycles() >= r4.per_core.iter().map(|r| r.stats.cycles).max().unwrap());
        // Per-core demand memory fills never exceed the chain's total
        // (the chain additionally absorbs writebacks).
        let demand: u64 = r4.per_core.iter().map(|r| r.stats.memory_accesses).sum();
        assert!(demand <= r4.memory.accesses);
        assert!(demand > 0);
    }

    #[test]
    fn private_l2_mesi_topology_counts_coherence_traffic() {
        // Two cores running decorrelated streams over the SAME
        // address space (no rebasing — a shared-memory program, not a
        // multi-programmed one): MESI must record interventions and
        // invalidations, and the report surfaces them through the
        // aggregate l2 counters.
        let mut sys = System::builder()
            .config(SystemConfig::uniform_6t())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
            .topology(Topology::PrivateL2 {
                coherence: Some(Mesi::default()),
            })
            .build_multi(2)
            .expect("2 cores, private MESI L2s");
        let sources = vec![
            Benchmark::Mpeg2C.trace(20_000, 1),
            Benchmark::Mpeg2C.trace(20_000, 2),
        ];
        let r = sys.run(sources, Mode::Hp);
        let l2 = r.l2.expect("private L2s still report an l2 level");
        assert!(
            l2.interventions > 0,
            "shared lines must be supplied cache-to-cache"
        );
        assert!(l2.invalidations > 0, "writes must invalidate peer copies");
        // Interventions are satisfied at the L2 layer: memory sees
        // fewer reads than the L2s recorded misses.
        assert!(r.memory.accesses < l2.misses + l2.writebacks);
    }

    #[test]
    fn incoherent_private_l2s_isolate_the_cores() {
        // Multi-programmed (disjoint windows) on private L2s: no
        // coherence traffic at all, with or without MESI.
        use hyvec_mediabench::multiprogram_sources;
        let mut sys = System::builder()
            .config(SystemConfig::uniform_6t())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
            .topology(Topology::PrivateL2 { coherence: None })
            .build_multi(2)
            .expect("2 cores, incoherent private L2s");
        let r = sys.run(
            multiprogram_sources(&[Benchmark::GsmC, Benchmark::Mpeg2C], 10_000, 5),
            Mode::Hp,
        );
        let l2 = r.l2.expect("aggregate private-L2 counters");
        assert_eq!(l2.interventions, 0);
        assert_eq!(l2.invalidations, 0);
        assert!(l2.accesses > 0);
    }

    #[test]
    fn unequal_trace_lengths_drain_round_robin() {
        let mut sys = builder().build_multi(2).expect("2 cores");
        let short = Benchmark::AdpcmC.trace(1_000, 1);
        let long = Benchmark::AdpcmD.trace(3_000, 2);
        let r = sys.run(vec![short, long], Mode::Hp);
        assert_eq!(r.per_core[0].stats.instructions, 1_000);
        assert_eq!(r.per_core[1].stats.instructions, 3_000);
    }

    #[test]
    fn soft_errors_reach_multi_core_caches() {
        let mut sys = System::builder()
            .config(SystemConfig::uniform_6t())
            .seu(5e-8, 11)
            .build_multi(2)
            .expect("2 cores with SEU");
        let sources = vec![
            Benchmark::AdpcmC.trace(30_000, 1),
            Benchmark::AdpcmD.trace(30_000, 2),
        ];
        let r = sys.run(sources, Mode::Ule);
        let corrupted: u64 = r
            .per_core
            .iter()
            .map(|c| c.stats.silent_corruptions())
            .sum();
        assert!(
            corrupted > 0,
            "unprotected 6T ULE ways must corrupt under accelerated SEUs"
        );
    }

    #[test]
    fn global_sim_threads_seeds_new_instances() {
        let prior = global_sim_threads();
        set_global_sim_threads(4);
        let sys = builder().build_multi(2).expect("2 cores");
        assert_eq!(sys.sim_threads(), 4);
        set_global_sim_threads(0); // clamped
        assert_eq!(global_sim_threads(), 1);
        set_global_sim_threads(prior);
    }
}
