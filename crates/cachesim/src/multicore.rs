//! The multi-core engine: N private split-L1 front ends contending
//! for one shared memory hierarchy.
//!
//! The paper's evaluation is single-core, but the composable
//! [`MemoryLevel`] chain was built so
//! new platform shapes could be assembled on top of it. This module
//! adds the baseline shape every cache-reliability study assumes:
//! several in-order cores, each with its own IL1/DL1 pair (the same
//! hybrid-way, bit-accurate caches the single-core engine drives),
//! all missing into a **single** shared L2/memory chain.
//!
//! # Execution model
//!
//! [`MultiCoreSystem::run`] drives the cores from a round-robin
//! interleaving of N independent [`TraceSource`]s (one instruction
//! per core per round, via [`hyvec_mediabench::Interleave`]); cores
//! whose trace ends drop out of the rotation. Each core keeps its own
//! cycle count — cores execute concurrently, so per-core time is what
//! IPC means here — while *contention* appears architecturally: the
//! cores' miss streams interleave in the shared L2, evicting each
//! other's lines, which shows up as a lower shared-L2 hit ratio and
//! more memory traffic than any core would generate alone. The shared
//! chain is accessed in interleaving order, so runs are exactly
//! reproducible (asserted by the determinism suite).
//!
//! Bandwidth arbitration (queueing at the shared L2 port) is *not*
//! modeled; the contention cost is the architectural one above. Nor
//! is idle-tail leakage: a core that drains its trace early is
//! treated as gated off until the makespan (its energy integrates
//! over its own active cycles only — see
//! [`MultiCoreReport::total_energy_pj`]). Both simplifications match
//! the deliberately simple in-order timing model of the single-core
//! engine.
//!
//! # Example
//!
//! ```
//! use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
//! use hyvec_cachesim::engine::System;
//! use hyvec_mediabench::Benchmark;
//!
//! let l1s = SystemConfig::uniform_6t();
//! let mut system = System::builder()
//!     .il1(l1s.il1.clone())
//!     .dl1(l1s.dl1.clone())
//!     .l2(L2Config::unified(64))
//!     .memory(MemoryConfig::with_latency(80))
//!     .build_multi(2)
//!     .expect("valid configuration");
//! let traces = vec![
//!     Benchmark::GsmC.trace(5_000, 1),
//!     Benchmark::Mpeg2C.trace(5_000, 2),
//! ];
//! let report = system.run(traces, Mode::Hp);
//! assert_eq!(report.per_core.len(), 2);
//! assert_eq!(report.instructions(), 10_000);
//! assert!(report.l2.expect("shared L2").accesses > 0);
//! ```

use crate::cache::HybridCache;
use crate::config::Mode;
use crate::engine::{execute_entry, CoreTiming, RunReport, System};
use crate::hierarchy::{Hierarchy, MemoryLevel};
use crate::power::PowerModel;
use crate::stats::{CacheStats, RunStats};
use hyvec_cachemodel::OperatingPoint;
use hyvec_mediabench::{Interleave, TraceEntry, TraceSource};
use rand::rngs::SmallRng;

/// Result of one multi-core run: per-core reports plus the merged
/// counters of the shared hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreReport {
    /// One [`RunReport`] per core, in core order. Per-core
    /// `stats.memory_accesses` counts the core's *demand* fills that
    /// reached memory; buffered writebacks are only attributable to
    /// the shared chain and appear in [`MultiCoreReport::memory`].
    pub per_core: Vec<RunReport>,
    /// Counters of the shared L2, when the chain has one.
    pub l2: Option<CacheStats>,
    /// Counters of the shared memory level (demand fills plus
    /// writebacks from every core).
    pub memory: CacheStats,
    /// The mode the run executed in.
    pub mode: Mode,
}

impl MultiCoreReport {
    /// Instructions executed across all cores.
    pub fn instructions(&self) -> u64 {
        self.per_core.iter().map(|r| r.stats.instructions).sum()
    }

    /// Total energy across all cores (each core's L1s + its share of
    /// the hierarchy below), pJ.
    ///
    /// Each core's energy integrates over its *own active window*
    /// (its cycle count): a core that drains its trace before the
    /// makespan is treated as gated off — the same gated-Vdd
    /// machinery the paper's HP ways use at ULE — so it leaks nothing
    /// while the stragglers finish. Idle-tail leakage of an
    /// *ungated* finished core is deliberately not modeled.
    pub fn total_energy_pj(&self) -> f64 {
        self.per_core.iter().map(|r| r.energy.total_pj()).sum()
    }

    /// Energy per instruction over the whole machine, pJ (see
    /// [`MultiCoreReport::total_energy_pj`] for the active-window
    /// energy semantics).
    pub fn epi_pj(&self) -> f64 {
        let instructions = self.instructions();
        if instructions == 0 {
            0.0
        } else {
            self.total_energy_pj() / instructions as f64
        }
    }

    /// Hit ratio of the shared L2 (0 when the chain has none).
    pub fn l2_hit_ratio(&self) -> f64 {
        self.l2.map_or(0.0, |l2| l2.hit_ratio())
    }

    /// Cycles of the slowest core: the wall-clock length of the run,
    /// since cores execute concurrently.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|r| r.stats.cycles)
            .max()
            .unwrap_or(0)
    }
}

/// The multi-core machine: N private front ends (core + IL1 + DL1)
/// over one shared [`MemoryLevel`] chain.
///
/// Built by [`SystemBuilder::build_multi`](crate::engine::SystemBuilder::build_multi);
/// a 1-core instance reproduces [`System`] runs
/// counter-for-counter (asserted in the test suite).
#[derive(Debug)]
pub struct MultiCoreSystem {
    /// Per-core `(il1, dl1)` pairs.
    fronts: Vec<(HybridCache, HybridCache)>,
    /// The hierarchy shared by every core (monomorphized stock shape
    /// or custom boxed chain, as in [`System`]).
    below: Hierarchy,
    /// One power model (all cores share a configuration).
    power: PowerModel,
    /// Soft-error injection, as in [`System`]; an upset lands in the
    /// caches of the core whose entry triggered it (the one accruing
    /// the exposure cycles).
    seu_rate_per_bit_cycle: f64,
    seu_rng: SmallRng,
}

impl MultiCoreSystem {
    /// Assembles the machine from parts the builder validated.
    pub(crate) fn from_parts(
        fronts: Vec<(HybridCache, HybridCache)>,
        below: Hierarchy,
        power: PowerModel,
        seu_rate_per_bit_cycle: f64,
        seu_rng: SmallRng,
    ) -> Self {
        MultiCoreSystem {
            fronts,
            below,
            power,
            seu_rate_per_bit_cycle,
            seu_rng,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.fronts.len()
    }

    /// The shared hierarchy beneath the L1s.
    pub fn below(&self) -> &dyn MemoryLevel {
        self.below.as_dyn()
    }

    /// One core's caches, for fault injection (`core` panics when out
    /// of range).
    pub fn core_mut(&mut self, core: usize) -> (&mut HybridCache, &mut HybridCache) {
        let (il1, dl1) = &mut self.fronts[core];
        (il1, dl1)
    }

    /// Runs one trace per core to completion at `mode`, interleaving
    /// round-robin at instruction granularity (core 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the core count.
    pub fn run<T>(&mut self, sources: Vec<T>, mode: Mode) -> MultiCoreReport
    where
        T: TraceSource,
    {
        self.run_at(sources, mode, mode.operating_point())
    }

    /// Like [`run`](MultiCoreSystem::run) but at an explicit operating
    /// point (the DVS-sweep entry point).
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the core count.
    pub fn run_at<T>(&mut self, sources: Vec<T>, mode: Mode, op: OperatingPoint) -> MultiCoreReport
    where
        T: TraceSource,
    {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): one trace source per core")
        assert_eq!(
            sources.len(),
            self.fronts.len(),
            "need exactly one trace source per core"
        );
        self.run_interleaved(Interleave::new(sources), mode, op)
    }

    /// Runs an already-interleaved stream of `(core, entry)` pairs —
    /// the general entry point behind [`run`](MultiCoreSystem::run),
    /// for custom schedules (unequal time slices, bursty arrivals,
    /// recorded multi-core traces).
    ///
    /// Caches are flushed on entry (the mode transition) and
    /// statistics reset, as in [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if an entry names a core at or beyond the core count.
    pub fn run_interleaved<I>(
        &mut self,
        entries: I,
        mode: Mode,
        op: OperatingPoint,
    ) -> MultiCoreReport
    where
        I: IntoIterator<Item = (usize, TraceEntry)>,
    {
        for (il1, dl1) in &mut self.fronts {
            il1.set_mode(mode);
            dl1.set_mode(mode);
            il1.reset_stats();
            dl1.reset_stats();
        }
        self.below.flush();
        self.below.reset_stats();

        let timing = CoreTiming {
            il1_edc_latency: self.power.il1.edc_latency_cycles(mode),
            dl1_edc_latency: self.power.dl1.edc_latency_cycles(mode),
            dl1_line_bytes: self.fronts[0].1.config().line_bytes,
        };

        // Soft-error exposure of one core's powered ULE bits (all
        // cores share a configuration); the whole branch is skipped
        // for the default fault-free runs.
        let seu_active = self.seu_rate_per_bit_cycle > 0.0;
        let ule_bits: u64 = if seu_active {
            let (il1, dl1) = &self.fronts[0];
            [il1.config(), dl1.config()]
                .iter()
                .map(|c| {
                    c.ways
                        .iter()
                        .filter(|w| w.ule_enabled)
                        .map(|w| {
                            c.sets()
                                * (c.words_per_line()
                                    * (u64::from(c.word_bits) + w.stored_check_bits() as u64)
                                    + u64::from(c.tag_bits)
                                    + w.stored_check_bits() as u64)
                        })
                        .sum::<u64>()
                })
                .sum()
        } else {
            0
        };

        let n = self.fronts.len();
        let mut stats = vec![RunStats::default(); n];
        let mut below_pj = vec![0.0f64; n];
        {
            // As in the single-core engine: dispatch on the shared
            // chain's shape once, so the whole interleaved loop runs
            // monomorphized for the stock shapes.
            let rate = self.seu_rate_per_bit_cycle;
            let MultiCoreSystem {
                fronts,
                below,
                seu_rng,
                ..
            } = self;
            match below {
                Hierarchy::Memory(m) => run_entries(
                    entries,
                    fronts,
                    m,
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
                Hierarchy::L2(l2) => run_entries(
                    entries,
                    fronts,
                    l2,
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
                Hierarchy::Custom(b) => run_entries(
                    entries,
                    fronts,
                    b.as_mut(),
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
            }
        }

        let chain = self.below.chain_stats();
        let l2 = chain
            .iter()
            .find(|(name, _)| *name == "l2")
            .map(|(_, s)| *s);
        let memory = chain
            .iter()
            .find(|(name, _)| *name == "memory")
            .map(|(_, s)| *s)
            .unwrap_or_default();

        let per_core = self
            .fronts
            .iter()
            .zip(stats)
            .zip(below_pj)
            .map(|((front, mut stats), below_pj)| {
                stats.il1 = *front.0.stats();
                stats.dl1 = *front.1.stats();
                let mut energy = self.power.breakdown_at(&stats, mode, op);
                if below_pj > 0.0 {
                    energy.other_pj += below_pj;
                }
                let seconds = stats.cycles as f64 * op.cycle_s();
                RunReport {
                    stats,
                    energy,
                    mode,
                    seconds,
                }
            })
            .collect();

        MultiCoreReport {
            per_core,
            l2,
            memory,
            mode,
        }
    }
}

/// The interleaved multi-core loop, generic over the shared chain so
/// each stock [`Hierarchy`] shape compiles its own copy with static
/// dispatch (custom chains instantiate it with `dyn MemoryLevel`).
#[allow(clippy::too_many_arguments)]
fn run_entries<I, B>(
    entries: I,
    fronts: &mut [(HybridCache, HybridCache)],
    below: &mut B,
    timing: CoreTiming,
    seu_rate: f64,
    ule_bits: u64,
    seu_rng: &mut SmallRng,
    stats: &mut [RunStats],
    below_pj: &mut [f64],
) where
    I: IntoIterator<Item = (usize, TraceEntry)>,
    B: MemoryLevel + ?Sized,
{
    let n = fronts.len();
    let seu_active = seu_rate > 0.0;
    for (core, entry) in entries {
        // hyvec-lint: allow(no-panic, "Interleave tags every entry with a core index < n by construction; a violation is a driver bug")
        assert!(core < n, "entry for core {core} on a {n}-core system");
        let (il1, dl1) = &mut fronts[core];
        stats[core].instructions += 1;
        let cycles = execute_entry(
            il1,
            dl1,
            below,
            timing,
            &mut stats[core],
            &mut below_pj[core],
            entry,
        );
        stats[core].cycles += cycles;

        if seu_active {
            use rand::Rng;
            let expected = seu_rate * ule_bits as f64 * cycles as f64;
            if seu_rng.gen::<f64>() < expected {
                let (il1, dl1) = &mut fronts[core];
                if seu_rng.gen::<bool>() {
                    System::inject_random_seu(il1, seu_rng);
                } else {
                    System::inject_random_seu(dl1, seu_rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L2Config, MemoryConfig, SystemConfig};
    use crate::engine::System;
    use hyvec_mediabench::Benchmark;

    fn builder() -> crate::engine::SystemBuilder {
        System::builder()
            .config(SystemConfig::uniform_6t())
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(16))
    }

    #[test]
    fn zero_cores_is_rejected() {
        use crate::config::ConfigError;
        assert_eq!(builder().build_multi(0).unwrap_err(), ConfigError::NoCores);
    }

    #[test]
    fn one_core_matches_the_single_core_engine() {
        // The multi-core engine with one core must reproduce System
        // counter-for-counter: same caches, same chain, same timing.
        let mut single = builder().build().expect("single");
        let mut multi = builder().build_multi(1).expect("multi");
        let trace = || Benchmark::Mpeg2C.trace(20_000, 3);
        let s = single.run(trace(), Mode::Hp);
        let m = multi.run(vec![trace()], Mode::Hp);
        let core = &m.per_core[0];
        assert_eq!(core.stats.instructions, s.stats.instructions);
        assert_eq!(core.stats.cycles, s.stats.cycles);
        assert_eq!(core.stats.il1, s.stats.il1);
        assert_eq!(core.stats.dl1, s.stats.dl1);
        assert_eq!(core.stats.il1_stall_cycles, s.stats.il1_stall_cycles);
        assert_eq!(core.stats.dl1_stall_cycles, s.stats.dl1_stall_cycles);
        assert_eq!(m.l2, s.stats.l2);
        assert_eq!(m.memory.accesses, s.stats.memory_accesses);
        assert_eq!(core.seconds, s.seconds);
        // Energy matches except the per-core report keeps its demand
        // memory count rather than the chain's total.
        assert!((core.energy.total_pj() - s.energy.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn interleaved_runs_are_deterministic() {
        let sources = || {
            (0..4)
                .map(|i| Benchmark::BIG[i].trace(5_000, i as u64 + 1))
                .collect::<Vec<_>>()
        };
        let mut a = builder().build_multi(4).expect("4 cores");
        let mut b = builder().build_multi(4).expect("4 cores");
        let ra = a.run(sources(), Mode::Hp);
        let rb = b.run(sources(), Mode::Hp);
        assert_eq!(ra, rb, "same sources must give identical reports");
        // And re-running the same warm system matches too (run resets
        // all state).
        let ra2 = a.run(sources(), Mode::Hp);
        assert_eq!(ra, ra2);
    }

    #[test]
    fn cores_contend_for_the_shared_l2() {
        // The same L1-overflowing program on 4 cores (each in its
        // private address window) behind one small shared L2 must see
        // a lower L2 hit ratio and more memory traffic per
        // instruction than it does alone: the cores' disjoint working
        // sets evict each other's lines.
        use hyvec_mediabench::multiprogram_sources;
        let mut one = builder().build_multi(1).expect("1 core");
        let mut four = builder().build_multi(4).expect("4 cores");
        let n = 20_000u64;
        let r1 = one.run(multiprogram_sources(&[Benchmark::Mpeg2C], n, 1), Mode::Hp);
        let r4 = four.run(
            multiprogram_sources(&[Benchmark::Mpeg2C; 4], n, 1),
            Mode::Hp,
        );
        let traffic =
            |mem: &CacheStats, instructions: u64| mem.accesses as f64 / instructions as f64;
        assert!(
            traffic(&r4.memory, r4.instructions()) > traffic(&r1.memory, r1.instructions()),
            "shared-L2 contention must raise per-instruction memory traffic: {} vs {}",
            traffic(&r4.memory, r4.instructions()),
            traffic(&r1.memory, r1.instructions())
        );
        assert!(
            r4.l2_hit_ratio() < r1.l2_hit_ratio(),
            "contention must depress the shared-L2 hit ratio: {} vs {}",
            r4.l2_hit_ratio(),
            r1.l2_hit_ratio()
        );
        assert_eq!(r4.per_core.len(), 4);
        assert!(r4.makespan_cycles() >= r4.per_core.iter().map(|r| r.stats.cycles).max().unwrap());
        // Per-core demand memory fills never exceed the chain's total
        // (the chain additionally absorbs writebacks).
        let demand: u64 = r4.per_core.iter().map(|r| r.stats.memory_accesses).sum();
        assert!(demand <= r4.memory.accesses);
        assert!(demand > 0);
    }

    #[test]
    fn unequal_trace_lengths_drain_round_robin() {
        let mut sys = builder().build_multi(2).expect("2 cores");
        let short = Benchmark::AdpcmC.trace(1_000, 1);
        let long = Benchmark::AdpcmD.trace(3_000, 2);
        let r = sys.run(vec![short, long], Mode::Hp);
        assert_eq!(r.per_core[0].stats.instructions, 1_000);
        assert_eq!(r.per_core[1].stats.instructions, 3_000);
    }

    #[test]
    fn soft_errors_reach_multi_core_caches() {
        let mut sys = System::builder()
            .config(SystemConfig::uniform_6t())
            .seu(5e-8, 11)
            .build_multi(2)
            .expect("2 cores with SEU");
        let sources = vec![
            Benchmark::AdpcmC.trace(30_000, 1),
            Benchmark::AdpcmD.trace(30_000, 2),
        ];
        let r = sys.run(sources, Mode::Ule);
        let corrupted: u64 = r
            .per_core
            .iter()
            .map(|c| c.stats.silent_corruptions())
            .sum();
        assert!(
            corrupted > 0,
            "unprotected 6T ULE ways must corrupt under accelerated SEUs"
        );
    }
}
