//! The bit-accurate functional hybrid cache.
//!
//! Every stored word (data and tag) is kept as a real EDC codeword
//! produced by the active code of the writing mode. Hard faults are
//! stuck-at bits overlaid on every read; soft errors are injected bit
//! flips. The decode path therefore exercises the actual
//! [`hyvec_edc`] machinery, counting corrections, detected
//! uncorrectable errors and — crucially for the unprotected baselines —
//! *silent corruptions*, where the delivered payload differs from what
//! was written without any error signal.

use crate::config::{CacheConfig, Mode, WaySpec};
use crate::stats::CacheStats;
use hyvec_edc::{Decoded, DectedCode, EdcCode, HsiaoCode, NoCode, Protection};
use std::sync::atomic::{AtomicBool, Ordering};

/// Stuck-at fault pattern for one stored word: where `mask` is set,
/// the cell always reads `value` regardless of what was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StuckBits {
    /// Bit positions that are hard-faulty.
    pub mask: u64,
    /// The values the faulty positions are stuck at.
    pub value: u64,
}

impl StuckBits {
    /// Applies the fault to a stored word as seen by a read.
    #[inline]
    pub fn apply(&self, stored: u64) -> u64 {
        (stored & !self.mask) | (self.value & self.mask)
    }

    /// Number of faulty bits.
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Identifies one stored word inside a cache: data words are slots
/// `0..words_per_line`, the tag is the last slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordSlot {
    /// The way index.
    pub way: usize,
    /// The set index.
    pub set: u64,
    /// Word index within the line, or `words_per_line` for the tag.
    pub slot: u64,
}

/// Monomorphized codec dispatch: one `match` instead of a virtual
/// call per decode. The three arms cover every [`Protection`] level,
/// so the per-access hot loop never goes through a vtable.
#[derive(Debug, Clone)]
enum Codec {
    None(NoCode),
    Secded(HsiaoCode),
    Dected(DectedCode),
}

impl Codec {
    /// Builds the codec for one way/width pair. Infallible by
    /// construction: [`CacheConfig::validate`] rejects any
    /// width/protection pair the code families cannot build
    /// (`ConfigError::UnsupportedWidth`), and every construction path
    /// validates before building codecs.
    fn build(protection: Protection, data_bits: usize) -> Self {
        match protection {
            Protection::None => Codec::None(NoCode::new(data_bits)),
            Protection::Secded => {
                Codec::Secded(
                    HsiaoCode::new(data_bits)
                        // hyvec-lint: allow(no-panic, "width pre-checked by CacheConfig::validate, which gates every construction path")
                        .expect("validate() guarantees SECDED supports this width"),
                )
            }
            Protection::Dected => {
                Codec::Dected(
                    DectedCode::new(data_bits)
                        // hyvec-lint: allow(no-panic, "width pre-checked by CacheConfig::validate, which gates every construction path")
                        .expect("validate() guarantees DECTED supports this width"),
                )
            }
        }
    }

    #[inline]
    fn encode(&self, data: u64) -> u64 {
        match self {
            Codec::None(c) => c.encode(data),
            Codec::Secded(c) => c.encode(data),
            Codec::Dected(c) => c.encode(data),
        }
    }

    #[inline]
    fn decode(&self, word: u64) -> Decoded {
        match self {
            Codec::None(c) => c.decode(word),
            Codec::Secded(c) => c.decode(word),
            Codec::Dected(c) => c.decode(word),
        }
    }
}

/// Per-way configuration and codecs. Line state lives in the flat
/// struct-of-arrays vectors on [`HybridCache`] itself.
#[derive(Debug)]
struct WayCodecs {
    spec: WaySpec,
    data_code_hp: Codec,
    data_code_ule: Codec,
    tag_code_hp: Codec,
    tag_code_ule: Codec,
}

impl WayCodecs {
    #[inline]
    fn data_code(&self, mode: Mode) -> &Codec {
        match mode {
            Mode::Hp => &self.data_code_hp,
            Mode::Ule => &self.data_code_ule,
        }
    }

    #[inline]
    fn tag_code(&self, mode: Mode) -> &Codec {
        match mode {
            Mode::Hp => &self.tag_code_hp,
            Mode::Ule => &self.tag_code_ule,
        }
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Bit errors corrected by EDC during this access.
    pub corrected: u32,
    /// Detected uncorrectable errors during this access.
    pub detected: u32,
    /// Silent corruptions: payload delivered differs from what was
    /// written, with no error signalled (only possible without/beyond
    /// the protection).
    pub silent: u32,
    /// Whether a dirty victim was written back.
    pub writeback: bool,
}

/// The functional hybrid set-associative cache.
///
/// See the [module docs](self) for the storage model.
///
/// # Tiered access paths
///
/// [`HybridCache::access`] dispatches between two implementations
/// with bit-identical counters:
///
/// * the **fast path** engages while the cache is *fault-free* — no
///   stuck-at faults installed and no soft errors injected since the
///   last flush ([`HybridCache::is_fault_free`]). Every stored word
///   is then exactly the codeword the active code produced, so tag
///   decode is an identity check, payload verification can never
///   fail, and both are skipped entirely: a lookup is a plain tag
///   compare and a hit touches only the LRU stamp;
/// * the **slow path** runs the full EDC decode/verify machinery the
///   moment any fault or soft error is present (or when forced via
///   [`HybridCache::set_force_slow_path`], for equivalence tests and
///   benchmarks).
///
/// Storage stays fully materialized in both tiers (fills and the
/// fault-free write path keep every word a real codeword), so the
/// cache can drop from fast to slow at any time — e.g. when
/// [`HybridCache::set_stuck_bits`] arms a fault mid-run — without any
/// re-encoding step.
///
/// # Storage layout
///
/// Line state is struct-of-arrays: `valid`/`dirty`/`tags`/
/// `tag_words`/`lru_stamps` are flat vectors indexed by `(way, set)`
/// through the private `line_index` helper (set-major, so the ways of
/// one set are contiguous and a lookup or victim scan walks a
/// cache-friendly slice), and all data codewords live in one flat
/// `words` arena at `line_index * words_per_line + slot`. There is no
/// per-line heap allocation. A per-line `fault_masks` bitmask (bit
/// `s` = word slot `s` has a stuck-at entry, saturating at bit 63)
/// lets the read path skip the fault probe for the common pristine
/// word; the faults themselves live in short per-line `(slot, bits)`
/// lists rather than a hash map, so even a faulty word costs a
/// one-or-two entry linear scan instead of a hash.
#[derive(Debug)]
pub struct HybridCache {
    config: CacheConfig,
    /// Per-way specs and codecs, in way order.
    ways: Vec<WayCodecs>,
    num_ways: usize,
    words_per_line: usize,
    /// `log2(line_bytes)` — the geometry is validated power-of-two,
    /// so indexing is shifts and masks, never division.
    line_shift: u32,
    /// `log2(sets)`.
    set_shift: u32,
    /// `sets - 1`.
    set_mask: u64,
    /// `(1 << tag_bits) - 1`.
    tag_mask: u64,
    /// `log2(word_bytes)` when the word size is a power of two (the
    /// common case); `None` falls back to division.
    word_shift: Option<u32>,
    /// SoA line state; see the type docs for the layout.
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Plain (unencoded) tags, compared directly by the fast path; in
    /// a fault-free cache the stored codeword decodes back to exactly
    /// this value.
    tags: Vec<u64>,
    /// Stored tag codewords (as written, before faults).
    tag_words: Vec<u64>,
    lru_stamps: Vec<u64>,
    /// Flat data-codeword arena.
    words: Vec<u64>,
    /// Per-line bitmask of word slots with stuck-at entries.
    fault_masks: Vec<u64>,
    /// Which ways participate in the current mode (recomputed on mode
    /// switches, so the hot loop is one slice load per way).
    enabled_now: Vec<bool>,
    /// Per-way: the active tag codec is [`Protection::None`]
    /// (recomputed on mode switches). A plain way's tag decode is a
    /// mask-and-compare, so the slow path never touches the (large)
    /// codec structs for it.
    tag_plain_now: Vec<bool>,
    /// Per-way: the active data codec is [`Protection::None`].
    data_plain_now: Vec<bool>,
    /// `mask_low(_, word_bits)` as a mask — the identity an
    /// unprotected data codec applies on encode and decode.
    word_mask: u64,
    /// Stuck-at faults per line, each a short list sorted by slot.
    /// Lines are overwhelmingly fault-free (gated by `fault_masks`),
    /// and a faulty line rarely carries more than a couple of entries,
    /// so a linear probe beats a hash map on the slow path.
    faults: Vec<Vec<(u64, StuckBits)>>,
    /// Total installed fault entries across all lines (the
    /// `is_fault_free` gate, without walking `faults`).
    fault_entries: usize,
    mode: Mode,
    lru_clock: u64,
    stats: CacheStats,
    /// Whether any soft error has been injected since the last flush
    /// (conservative: cleared only by [`HybridCache::set_mode`], which
    /// invalidates every line the flip could still live in).
    soft_flips: bool,
    /// Diagnostic override: route every access through the slow path
    /// even when fault-free.
    force_slow: bool,
}

/// Process-global default for [`HybridCache::set_force_slow_path`],
/// applied to every cache built afterwards. This is how
/// `hyvec run-all --force-slow-path` reaches the caches that
/// experiments construct internally.
static FORCE_SLOW_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-global slow-path pin: caches constructed while it
/// is `true` start with the slow path forced, exactly as if
/// [`HybridCache::set_force_slow_path`] had been called on each.
/// Counters are bit-identical either way, so flipping this mid-run
/// only ever changes timing, never results.
pub fn set_global_force_slow_path(force: bool) {
    FORCE_SLOW_DEFAULT.store(force, Ordering::SeqCst);
}

/// Reads the process-global slow-path pin.
pub fn global_force_slow_path() -> bool {
    FORCE_SLOW_DEFAULT.load(Ordering::SeqCst)
}

/// The deterministic payload written for a given word address; reads
/// are checked against it to expose silent corruption.
#[inline]
pub fn value_for(word_addr: u64) -> u64 {
    // splitmix64 finalizer, truncated to 32 bits.
    let mut z = word_addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xFFFF_FFFF
}

impl HybridCache {
    /// Builds an empty cache in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]). Use [`HybridCache::try_new`] to
    /// handle the error instead.
    pub fn new(config: CacheConfig, mode: Mode) -> Self {
        match HybridCache::try_new(config, mode) {
            Ok(cache) => cache,
            // hyvec-lint: allow(no-panic, "documented panicking shim; HybridCache::try_new is the fallible path")
            Err(e) => panic!("invalid cache config: {e}"),
        }
    }

    /// Builds an empty cache in the given mode, reporting an invalid
    /// geometry instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`CacheConfig`] invariant.
    pub fn try_new(config: CacheConfig, mode: Mode) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        let sets = config.sets() as usize;
        let words_per_line = config.words_per_line() as usize;
        let ways: Vec<WayCodecs> = config
            .ways
            .iter()
            .map(|spec| WayCodecs {
                spec: *spec,
                data_code_hp: Codec::build(spec.protection_hp, config.word_bits as usize),
                data_code_ule: Codec::build(spec.protection_ule, config.word_bits as usize),
                tag_code_hp: Codec::build(spec.protection_hp, config.tag_bits as usize),
                tag_code_ule: Codec::build(spec.protection_ule, config.tag_bits as usize),
            })
            .collect();
        let num_ways = ways.len();
        let lines = sets * num_ways;
        let enabled_now = ways.iter().map(|w| w.spec.enabled(mode)).collect();
        let tag_plain_now = ways
            .iter()
            .map(|w| matches!(w.tag_code(mode), Codec::None(_)))
            .collect();
        let data_plain_now = ways
            .iter()
            .map(|w| matches!(w.data_code(mode), Codec::None(_)))
            .collect();
        let word_mask = if config.word_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << config.word_bits) - 1
        };
        // `validate()` guarantees power-of-two line bytes and sets, so
        // the per-access index math compiles down to shifts and masks.
        let line_shift = config.line_bytes.trailing_zeros();
        let set_shift = config.sets().trailing_zeros();
        let set_mask = config.sets() - 1;
        let tag_mask = (1u64 << config.tag_bits) - 1;
        let word_bytes = u64::from(config.word_bits) / 8;
        let word_shift = word_bytes
            .is_power_of_two()
            .then(|| word_bytes.trailing_zeros());
        Ok(HybridCache {
            config,
            ways,
            num_ways,
            words_per_line,
            line_shift,
            set_shift,
            set_mask,
            tag_mask,
            word_shift,
            valid: vec![false; lines],
            dirty: vec![false; lines],
            tags: vec![0; lines],
            tag_words: vec![0; lines],
            lru_stamps: vec![0; lines],
            words: vec![0; lines * words_per_line],
            fault_masks: vec![0; lines],
            enabled_now,
            tag_plain_now,
            data_plain_now,
            word_mask,
            faults: vec![Vec::new(); lines],
            fault_entries: 0,
            mode,
            lru_clock: 0,
            stats: CacheStats::default(),
            soft_flips: false,
            force_slow: global_force_slow_path(),
        })
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Flat index of `(way, set)` into the struct-of-arrays line
    /// state: set-major, so one set's ways are contiguous.
    #[inline]
    fn line_index(&self, way: usize, set: u64) -> usize {
        set as usize * self.num_ways + way
    }

    /// The bit `slot` occupies in a line's fault mask. Slots past 63
    /// share the top bit, which then conservatively means "probe the
    /// fault map".
    #[inline]
    fn fault_mask_bit(slot: u64) -> u64 {
        1u64 << slot.min(63)
    }

    /// Installs a stuck-at fault pattern on one stored word.
    ///
    /// # Panics
    ///
    /// Panics if the slot's way or set is out of range for this
    /// geometry.
    pub fn set_stuck_bits(&mut self, slot: WordSlot, faults: StuckBits) {
        let li = self.line_index(slot.way, slot.set);
        let entries = &mut self.faults[li];
        let existing = entries.iter().position(|&(s, _)| s == slot.slot);
        if faults.mask == 0 {
            if let Some(i) = existing {
                entries.remove(i);
                self.fault_entries -= 1;
            }
            // Rebuild this line's slot mask from the surviving entries.
            let mut mask = 0u64;
            for &(s, _) in entries.iter() {
                mask |= Self::fault_mask_bit(s);
            }
            self.fault_masks[li] = mask;
        } else {
            match existing {
                Some(i) => entries[i].1 = faults,
                None => {
                    entries.push((slot.slot, faults));
                    entries.sort_unstable_by_key(|&(s, _)| s);
                    self.fault_entries += 1;
                }
            }
            self.fault_masks[li] |= Self::fault_mask_bit(slot.slot);
        }
    }

    /// Number of faulty bits currently installed.
    pub fn fault_bit_count(&self) -> u64 {
        self.faults
            .iter()
            .flatten()
            .map(|&(_, f)| u64::from(f.count()))
            .sum()
    }

    /// Whether every stored word is guaranteed pristine: no stuck-at
    /// faults installed and no soft error injected since the last
    /// flush. While this holds, [`HybridCache::access`] runs the
    /// EDC-free fast path (see the type docs).
    pub fn is_fault_free(&self) -> bool {
        self.fault_entries == 0 && !self.soft_flips
    }

    /// Forces every access through the full EDC slow path even when
    /// the cache is fault-free. Counters are bit-identical either way
    /// (asserted by the equivalence property suite); this knob exists
    /// so tests and `benches/hotpath.rs` can measure the armed slow
    /// path against the fast path on the same fault-free workload.
    pub fn set_force_slow_path(&mut self, force: bool) {
        self.force_slow = force;
    }

    fn fast_path_ready(&self) -> bool {
        !self.force_slow && self.fault_entries == 0 && !self.soft_flips
    }

    /// Flips one stored bit (a soft error / SEU). The flip lands in
    /// the *stored* word, so a later rewrite clears it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn inject_soft_error(&mut self, slot: WordSlot, bit: u32) {
        let li = self.line_index(slot.way, slot.set);
        if slot.slot as usize == self.words_per_line {
            self.tag_words[li] ^= 1u64 << bit;
        } else {
            self.words[li * self.words_per_line + slot.slot as usize] ^= 1u64 << bit;
        }
        self.soft_flips = true;
    }

    /// Switches operating mode, flushing the cache (dirty lines are
    /// written back) — the Vcc transition invalidates HP ways anyway
    /// and re-encodes would otherwise be needed where the protection
    /// level changes.
    ///
    /// Returns the number of lines written back.
    pub fn set_mode(&mut self, mode: Mode) -> u64 {
        let mut writebacks = 0;
        for (valid, dirty) in self.valid.iter_mut().zip(self.dirty.iter_mut()) {
            if *valid && *dirty {
                writebacks += 1;
            }
            *valid = false;
            *dirty = false;
        }
        self.stats.writebacks += writebacks;
        self.mode = mode;
        for (enabled, way) in self.enabled_now.iter_mut().zip(&self.ways) {
            *enabled = way.spec.enabled(mode);
        }
        for (plain, way) in self.tag_plain_now.iter_mut().zip(&self.ways) {
            *plain = matches!(way.tag_code(mode), Codec::None(_));
        }
        for (plain, way) in self.data_plain_now.iter_mut().zip(&self.ways) {
            *plain = matches!(way.data_code(mode), Codec::None(_));
        }
        // Every line a past soft error could still inhabit is now
        // invalid, and a fill rewrites the whole line (tag included),
        // so the flipped bits can never be observed again.
        self.soft_flips = false;
        writebacks
    }

    /// The payload a clean read of the word at `word_addr` must
    /// deliver: the deterministic value truncated to the configured
    /// word width (the encoder ignores bits above `word_bits`).
    fn expected_payload(&self, word_addr: u64) -> u64 {
        let bits = self.config.word_bits;
        if bits >= 64 {
            value_for(word_addr)
        } else {
            value_for(word_addr) & ((1u64 << bits) - 1)
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (u64, u64) {
        let line_addr = addr >> self.line_shift;
        let set = line_addr & self.set_mask;
        let tag = (line_addr >> self.set_shift) & self.tag_mask;
        (set, tag)
    }

    /// Splits `addr` into the word's slot within its line and the
    /// word-aligned byte address, dividing only when the word size is
    /// not a power of two.
    #[inline]
    fn word_slot_and_addr(&self, addr: u64) -> (u64, u64) {
        let offset = addr & (self.config.line_bytes - 1);
        match self.word_shift {
            Some(s) => (offset >> s, (addr >> s) << s),
            None => {
                let word_bytes = u64::from(self.config.word_bits) / 8;
                (offset / word_bytes, addr / word_bytes * word_bytes)
            }
        }
    }

    /// Applies any stuck-at fault installed at `(li, slot)` to the raw
    /// stored word. The per-line slot mask filters out the
    /// overwhelmingly common pristine case before the (short, linear)
    /// fault-list probe.
    #[inline]
    fn apply_faults(&self, li: usize, slot: u64, raw: u64) -> u64 {
        if self.fault_masks[li] & Self::fault_mask_bit(slot) != 0 {
            if let Some(&(_, f)) = self.faults[li].iter().find(|&&(s, _)| s == slot) {
                return f.apply(raw);
            }
        }
        raw
    }

    /// Reads one stored word through the fault layer, addressed as a
    /// [`WordSlot`] (tests exercise the fault plumbing through this;
    /// the hot paths index the arenas directly).
    #[cfg(test)]
    fn read_stored(&self, slot: WordSlot) -> u64 {
        let li = self.line_index(slot.way, slot.set);
        let raw = if slot.slot as usize == self.words_per_line {
            self.tag_words[li]
        } else {
            self.words[li * self.words_per_line + slot.slot as usize]
        };
        self.apply_faults(li, slot.slot, raw)
    }

    /// Looks up `addr`, returning the hit way if any, and counts tag
    /// EDC activity.
    fn lookup(&self, set: u64, tag: u64) -> (Option<usize>, u32, u32) {
        let mode = self.mode;
        let tag_slot = self.words_per_line as u64;
        let base = set as usize * self.num_ways;
        let mut corrected = 0;
        let mut detected = 0;
        let mut hit_way = None;
        for w in 0..self.num_ways {
            if !self.enabled_now[w] || !self.valid[base + w] {
                continue;
            }
            let stored = self.apply_faults(base + w, tag_slot, self.tag_words[base + w]);
            if self.tag_plain_now[w] {
                // Unprotected tag: decode is a mask, so skip the codec
                // struct and compare in place.
                if stored & self.tag_mask == tag {
                    hit_way = Some(w);
                }
                continue;
            }
            match self.ways[w].tag_code(mode).decode(stored) {
                Decoded::Clean { data } => {
                    if data == tag {
                        hit_way = Some(w);
                    }
                }
                Decoded::Corrected { data, errors } => {
                    corrected += errors;
                    if data == tag {
                        hit_way = Some(w);
                    }
                }
                Decoded::Detected { .. } => {
                    // Tag unreadable: conservatively a mismatch.
                    detected += 1;
                }
            }
        }
        (hit_way, corrected, detected)
    }

    /// Performs one access. `addr` is a byte address; writes store the
    /// deterministic payload for the word, reads verify it.
    ///
    /// Dispatches between the fault-free fast path and the full EDC
    /// slow path (see the type docs); the two produce bit-identical
    /// counters and outcomes whenever both are applicable.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let (set, tag) = self.index(addr);
        self.lru_clock += 1;
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        if self.fast_path_ready() {
            self.access_fast(addr, is_write, set, tag)
        } else {
            // Both the word slot and the verified payload address
            // derive from the configured word width (the same slot the
            // fill wrote with `value_for`).
            let (word_idx, word_addr) = self.word_slot_and_addr(addr);
            self.access_slow(addr, is_write, set, tag, word_idx, word_addr)
        }
    }

    /// The fault-free fast path: no stored word can decode to anything
    /// but the value written, so tag matching is a plain compare and
    /// payload verification is skipped. Counters move exactly as in
    /// [`HybridCache::access_slow`]: a fault-free slow access always
    /// yields `corrected == detected == silent == 0`.
    fn access_fast(&mut self, addr: u64, is_write: bool, set: u64, tag: u64) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        let base = set as usize * self.num_ways;
        // Last match wins, mirroring the slow lookup's scan order. The
        // set's ways are one contiguous slice of each SoA vector.
        let mut hit_way = None;
        for w in 0..self.num_ways {
            if self.enabled_now[w] && self.valid[base + w] && self.tags[base + w] == tag {
                hit_way = Some(w);
            }
        }
        let way = match hit_way {
            Some(w) => {
                self.stats.hits += 1;
                outcome.hit = true;
                w
            }
            None => {
                self.stats.misses += 1;
                let victim = self.choose_victim(set);
                outcome.writeback = self.fill(victim, set, tag, addr);
                victim
            }
        };
        if is_write {
            // The stored word already holds the encoded deterministic
            // payload (the fill materialized it, and a fault-free
            // store would rewrite the identical codeword), so only
            // the dirty bit moves.
            self.dirty[base + way] = true;
        }
        self.lru_stamps[base + way] = self.lru_clock;
        outcome
    }

    /// The full EDC path: decode every candidate tag, decode and
    /// verify loaded payloads, re-encode stores.
    fn access_slow(
        &mut self,
        addr: u64,
        is_write: bool,
        set: u64,
        tag: u64,
        word_idx: u64,
        word_addr: u64,
    ) -> AccessOutcome {
        let mode = self.mode;
        let (hit_way, mut corrected, mut detected) = self.lookup(set, tag);
        let mut outcome = AccessOutcome::default();

        let way = match hit_way {
            Some(w) => {
                self.stats.hits += 1;
                outcome.hit = true;
                w
            }
            None => {
                self.stats.misses += 1;
                let victim = self.choose_victim(set);
                outcome.writeback = self.fill(victim, set, tag, addr);
                victim
            }
        };

        let li = self.line_index(way, set);
        if is_write {
            // Store: encode the new payload with the active code. An
            // unprotected way's encode is just the word mask.
            let encoded = if self.data_plain_now[way] {
                value_for(word_addr) & self.word_mask
            } else {
                self.ways[way].data_code(mode).encode(value_for(word_addr))
            };
            self.words[li * self.words_per_line + word_idx as usize] = encoded;
            self.dirty[li] = true;
            self.lru_stamps[li] = self.lru_clock;
        } else {
            // Load: decode through faults and verify the payload —
            // truncated to the stored word width, exactly as the
            // encoder stored it.
            let expected = self.expected_payload(word_addr);
            let raw = self.words[li * self.words_per_line + word_idx as usize];
            let stored = self.apply_faults(li, word_idx, raw);
            if self.data_plain_now[way] {
                // Unprotected data: decode is the word mask, and every
                // read is clean by construction.
                if stored & self.word_mask != expected {
                    outcome.silent += 1;
                }
            } else {
                match self.ways[way].data_code(mode).decode(stored) {
                    Decoded::Clean { data } => {
                        if data != expected {
                            outcome.silent += 1;
                        }
                    }
                    Decoded::Corrected { data, errors } => {
                        corrected += errors;
                        if data != expected {
                            outcome.silent += 1;
                        }
                    }
                    Decoded::Detected { .. } => {
                        detected += 1;
                    }
                }
            }
            self.lru_stamps[li] = self.lru_clock;
        }

        outcome.corrected = corrected;
        outcome.detected = detected;
        self.stats.corrected += u64::from(corrected);
        self.stats.detected += u64::from(detected);
        self.stats.silent_corruptions += u64::from(outcome.silent);
        outcome
    }

    /// Picks the eviction victim among the ways enabled in the current
    /// mode: the first invalid line, else the least-recently-used one.
    ///
    /// Ties on the LRU stamp are broken toward the **lowest-index
    /// enabled way**. The strictly-increasing access clock never
    /// stamps two valid lines equally on its own, but staged states
    /// (tests, future bulk-load paths) can — so the choice is pinned
    /// explicitly rather than left to the scan order.
    fn choose_victim(&self, set: u64) -> usize {
        let base = set as usize * self.num_ways;
        let mut best: Option<(usize, u64)> = None;
        for w in 0..self.num_ways {
            if !self.enabled_now[w] {
                continue;
            }
            if !self.valid[base + w] {
                return w;
            }
            let stamp = self.lru_stamps[base + w];
            let strictly_older = match best {
                None => true,
                // `<`, not `<=`: on equal stamps the earlier
                // (lowest-index) enabled way stays the victim.
                Some((_, best_lru)) => stamp < best_lru,
            };
            if strictly_older {
                best = Some((w, stamp));
            }
        }
        // hyvec-lint: allow(no-panic, "validate() guarantees every mode has an enabled way: HP enables all, ULE is gated by NoUleWay")
        best.expect("at least one enabled way").0
    }

    /// Fills `(set, tag)` into `way`, returning whether a dirty victim
    /// was evicted.
    fn fill(&mut self, way: usize, set: u64, tag: u64, addr: u64) -> bool {
        let mode = self.mode;
        let line_base = (addr >> self.line_shift) << self.line_shift;
        let word_bytes = u64::from(self.config.word_bits) / 8;
        let li = self.line_index(way, set);
        let data_code = self.ways[way].data_code(mode);
        let start = li * self.words_per_line;
        for (i, word) in self.words[start..start + self.words_per_line]
            .iter_mut()
            .enumerate()
        {
            let word_addr = line_base + i as u64 * word_bytes;
            *word = data_code.encode(value_for(word_addr));
        }
        let writeback = self.valid[li] && self.dirty[li];
        self.tags[li] = tag;
        self.tag_words[li] = self.ways[way].tag_code(mode).encode(tag);
        self.valid[li] = true;
        self.dirty[li] = false;
        self.lru_stamps[li] = self.lru_clock;
        self.stats.fills += 1;
        if writeback {
            self.stats.writebacks += 1;
        }
        writeback
    }

    /// Number of ways enabled in the current mode.
    pub fn enabled_ways(&self) -> usize {
        self.enabled_now.iter().filter(|&&e| e).count()
    }
}

// The epoch-parallel multi-core engine moves each core's L1 pair onto
// scoped worker threads; this pins the `Send` bound at compile time so
// a non-`Send` field (an `Rc`, a raw pointer) added later fails here,
// next to the type, rather than deep inside the thread scope.
const fn assert_send<T: Send>() {}
const _: () = assert_send::<HybridCache>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use hyvec_edc::Protection;
    use hyvec_sram::CellKind;

    fn cache() -> HybridCache {
        HybridCache::new(SystemConfig::uniform_6t().il1, Mode::Hp)
    }

    fn hybrid_a_proposal() -> HybridCache {
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram8T,
            1.8,
            Protection::None,
            Protection::Secded,
        ));
        HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule)
    }

    use crate::config::CacheConfig;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        let out = c.access(0x1000, false);
        assert!(!out.hit);
        let out = c.access(0x1004, false);
        assert!(out.hit, "same line must hit");
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = cache();
        c.access(0x0, false);
        c.access(32, false); // next set
        assert_eq!(c.stats().misses, 2);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(32, false).hit);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = cache();
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Fill all 8 ways of set 0.
        for i in 0..8u64 {
            c.access(i * sets * line, false);
        }
        // Touch way of line 0 to refresh it.
        c.access(0, false);
        // A ninth line evicts the LRU (line 1, not line 0).
        c.access(8 * sets * line, false);
        assert!(c.access(0, false).hit, "refreshed line must survive");
        assert!(!c.access(sets * line, false).hit, "LRU line must be gone");
    }

    #[test]
    fn ule_mode_uses_only_ule_ways() {
        let mut c = hybrid_a_proposal();
        assert_eq!(c.enabled_ways(), 1);
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Two conflicting lines thrash a single way.
        c.access(0, false);
        c.access(sets * line, false);
        assert!(!c.access(0, false).hit, "direct-mapped ULE way must evict");
    }

    #[test]
    fn writes_mark_dirty_and_cause_writebacks() {
        let mut c = hybrid_a_proposal();
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        c.access(0, true); // miss + fill + dirty
        let out = c.access(sets * line, false); // evicts dirty line
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_cache_delivers_correct_payloads() {
        let mut c = cache();
        for addr in (0..4096).step_by(4) {
            let out = c.access(addr, false);
            assert_eq!(out.silent, 0);
            assert_eq!(out.detected, 0);
        }
        assert_eq!(c.stats().silent_corruptions, 0);
    }

    #[test]
    fn secded_corrects_a_stuck_bit() {
        let mut c = hybrid_a_proposal();
        c.access(0, false); // fill set 0 into way 7
                            // Fault bit 3 of data word 0 in the ULE way, stuck at the
                            // wrong value.
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 3,
                value: !stored & (1 << 3),
            },
        );
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.corrected, 1, "SECDED must correct the stuck bit");
        assert_eq!(out.silent, 0);
        assert_eq!(c.stats().corrected, 1);
    }

    #[test]
    fn unprotected_stuck_bit_corrupts_silently() {
        // Baseline scenario A at ULE: 10T with no coding. A stuck bit
        // is delivered as wrong data with no signal — the failure mode
        // the paper's yield math must prevent by sizing.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram10T,
            1.0,
            Protection::None,
            Protection::None,
        ));
        let mut c = HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule);
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 5,
                value: !stored & (1 << 5),
            },
        );
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.silent, 1, "unprotected fault must corrupt silently");
        assert_eq!(out.corrected, 0);
    }

    #[test]
    fn dected_corrects_hard_fault_plus_soft_error() {
        // Scenario B at ULE: 8T + DECTED handles a stuck bit AND a
        // soft error in the same word — the paper's justification for
        // DECTED.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::Secded); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram8T,
            1.9,
            Protection::Secded,
            Protection::Dected,
        ));
        let mut c = HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule);
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 7,
                value: !stored & (1 << 7),
            },
        );
        c.inject_soft_error(slot, 19);
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.corrected, 2, "DECTED must fix hard+soft together");
        assert_eq!(out.silent, 0);
    }

    #[test]
    fn secded_detects_but_cannot_fix_double_fault() {
        let mut c = hybrid_a_proposal();
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: (1 << 2) | (1 << 9),
                value: !stored & ((1 << 2) | (1 << 9)),
            },
        );
        let out = c.access(0, false);
        assert_eq!(out.detected, 1);
        assert_eq!(out.silent, 0, "detected errors are not silent");
    }

    #[test]
    fn mode_switch_flushes() {
        let mut c = hybrid_a_proposal();
        c.access(0, true);
        let wb = c.set_mode(Mode::Hp);
        assert_eq!(wb, 1, "dirty line written back on switch");
        assert!(!c.access(0, false).hit, "flush invalidates");
        assert_eq!(c.enabled_ways(), 8);
    }

    #[test]
    fn tag_faults_in_unprotected_way_cause_misses_not_lies() {
        let mut c = cache();
        c.access(0, false);
        let tag_slot = WordSlot {
            way: 0,
            set: 0,
            slot: c.config().words_per_line(),
        };
        // Find which way holds the line.
        let way = (0..8)
            .find(|&w| c.valid[c.line_index(w, 0)])
            .expect("line filled");
        let tag_slot = WordSlot { way, ..tag_slot };
        let stored = c.read_stored(tag_slot);
        c.set_stuck_bits(
            tag_slot,
            StuckBits {
                mask: 1,
                value: !stored & 1,
            },
        );
        // The corrupted tag no longer matches: miss (refill), not a
        // false hit.
        let out = c.access(0, false);
        assert!(!out.hit);
    }

    #[test]
    fn value_for_is_deterministic_and_word_stable() {
        assert_eq!(value_for(0x1234), value_for(0x1234));
        assert_ne!(value_for(0x1234), value_for(0x1238));
        assert!(value_for(u64::MAX) <= u32::MAX as u64);
    }

    #[test]
    fn verification_address_honors_configured_word_size() {
        // Regression: the payload address used to be hard-coded to
        // 4-byte words (`addr / 4 * 4`) while the slot index honored
        // `word_bits`, so any non-32-bit word config miscounted clean
        // reads as silent corruptions at word-interior offsets.
        for word_bits in [16u32, 64] {
            let mut cfg = SystemConfig::uniform_6t().il1;
            cfg.word_bits = word_bits;
            cfg.validate().expect("geometry stays valid");
            let mut c = HybridCache::new(cfg, Mode::Hp);
            // Force the verifying slow path: the fast path skips the
            // payload check entirely.
            c.set_force_slow_path(true);
            for addr in (0..512).step_by(4) {
                c.access(addr, true);
            }
            for addr in (0..512).step_by(4) {
                let out = c.access(addr, false);
                assert_eq!(
                    out.silent, 0,
                    "{word_bits}-bit words: false corruption at {addr:#x}"
                );
                assert_eq!(out.detected, 0);
            }
            assert_eq!(c.stats().silent_corruptions, 0);
        }
    }

    fn two_ule_ways_cache(mode: Mode) -> HybridCache {
        // Ways 0-1 are HP-only (disabled at ULE), ways 2-3 stay on.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 2];
        for _ in 0..2 {
            ways.push(crate::config::WaySpec::ule_way(
                CellKind::Sram8T,
                1.8,
                Protection::None,
                Protection::None,
            ));
        }
        HybridCache::new(CacheConfig::l1_8kb(ways), mode)
    }

    #[test]
    fn victim_ties_break_to_the_lowest_index_enabled_way() {
        let mut c = two_ule_ways_cache(Mode::Ule);
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Invalid lines: the first *enabled* way wins, skipping the
        // HP ways that are gated off at ULE.
        c.access(0, false);
        assert!(
            c.valid[c.line_index(2, 0)],
            "lowest enabled way fills first"
        );
        assert!(
            !c.valid[c.line_index(0, 0)],
            "disabled ways must be skipped"
        );
        c.access(sets * line, false);
        assert!(c.valid[c.line_index(3, 0)]);
        // Stage an exact LRU tie between the two valid lines: the
        // documented tie-break evicts the lowest-index enabled way.
        let (li2, li3) = (c.line_index(2, 0), c.line_index(3, 0));
        c.lru_stamps[li2] = 7;
        c.lru_stamps[li3] = 7;
        let survivor_tag = c.tags[li3];
        c.access(2 * sets * line, false);
        assert_eq!(
            c.tags[li3], survivor_tag,
            "higher-index way must survive the tie"
        );
        assert_ne!(c.tags[li2], 0, "way 2 holds the new line");
        // At HP every way participates again: a fresh cache fills
        // way 0 first.
        let mut c = two_ule_ways_cache(Mode::Hp);
        c.access(0, false);
        assert!(c.valid[c.line_index(0, 0)]);
    }

    #[test]
    fn fast_and_slow_paths_agree_counter_for_counter() {
        let mut fast = cache();
        let mut slow = cache();
        slow.set_force_slow_path(true);
        assert!(fast.is_fault_free());
        let sets = fast.config().sets();
        let line = fast.config().line_bytes;
        // Hits, misses, conflict evictions, dirty writebacks.
        let mut addrs = Vec::new();
        for i in 0u64..600 {
            addrs.push((i.wrapping_mul(2654435761) % (12 * sets * line)) & !3);
        }
        for (i, &addr) in addrs.iter().enumerate() {
            let is_write = i % 3 == 1;
            let a = fast.access(addr, is_write);
            let b = slow.access(addr, is_write);
            assert_eq!(a, b, "outcome diverged at access {i} ({addr:#x})");
        }
        assert_eq!(fast.stats(), slow.stats());
        // And the stored state is identical too: arming the slow path
        // afterwards reads back every line cleanly.
        fast.set_force_slow_path(true);
        for &addr in &addrs {
            let out = fast.access(addr, false);
            assert_eq!(out.silent, 0);
            assert_eq!(out.detected, 0);
        }
    }

    #[test]
    fn fault_free_tracking_arms_and_disarms_the_fast_path() {
        let mut c = cache();
        assert!(c.is_fault_free());
        c.access(0, false);
        let slot = WordSlot {
            way: 0,
            set: 0,
            slot: 0,
        };
        // Installing and removing a stuck bit toggles the state.
        c.set_stuck_bits(slot, StuckBits { mask: 1, value: 0 });
        assert!(!c.is_fault_free());
        c.set_stuck_bits(slot, StuckBits { mask: 0, value: 0 });
        assert!(c.is_fault_free());
        // A soft error disarms the fast path and is actually seen by
        // the unprotected slow path...
        let way = (0..8)
            .find(|&w| c.valid[c.line_index(w, 0)])
            .expect("line filled");
        let hit_slot = WordSlot {
            way,
            set: 0,
            slot: 0,
        };
        c.inject_soft_error(hit_slot, 3);
        assert!(!c.is_fault_free());
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.silent, 1, "flip must be delivered silently (6T/none)");
        // ...and the flush on a mode switch restores the fast path.
        c.set_mode(Mode::Hp);
        assert!(c.is_fault_free());
    }
}
