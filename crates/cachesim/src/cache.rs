//! The bit-accurate functional hybrid cache.
//!
//! Every stored word (data and tag) is kept as a real EDC codeword
//! produced by the active code of the writing mode. Hard faults are
//! stuck-at bits overlaid on every read; soft errors are injected bit
//! flips. The decode path therefore exercises the actual
//! [`hyvec_edc`] machinery, counting corrections, detected
//! uncorrectable errors and — crucially for the unprotected baselines —
//! *silent corruptions*, where the delivered payload differs from what
//! was written without any error signal.

use crate::config::{CacheConfig, Mode, WaySpec};
use crate::stats::CacheStats;
use hyvec_edc::{Decoded, EdcCode};
use std::collections::HashMap;

/// Stuck-at fault pattern for one stored word: where `mask` is set,
/// the cell always reads `value` regardless of what was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StuckBits {
    /// Bit positions that are hard-faulty.
    pub mask: u64,
    /// The values the faulty positions are stuck at.
    pub value: u64,
}

impl StuckBits {
    /// Applies the fault to a stored word as seen by a read.
    #[inline]
    pub fn apply(&self, stored: u64) -> u64 {
        (stored & !self.mask) | (self.value & self.mask)
    }

    /// Number of faulty bits.
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Identifies one stored word inside a cache: data words are slots
/// `0..words_per_line`, the tag is the last slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordSlot {
    /// The way index.
    pub way: usize,
    /// The set index.
    pub set: u64,
    /// Word index within the line, or `words_per_line` for the tag.
    pub slot: u64,
}

#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    /// The plain (unencoded) tag this line was filled with. The fast
    /// path compares against this directly; in a fault-free cache the
    /// stored codeword decodes back to exactly this value.
    tag: u64,
    /// Stored tag codeword (as written, before faults).
    tag_word: u64,
    /// Stored data codewords.
    words: Vec<u64>,
    lru: u64,
}

#[derive(Debug)]
struct WayState {
    spec: WaySpec,
    data_code_hp: Box<dyn EdcCode>,
    data_code_ule: Box<dyn EdcCode>,
    tag_code_hp: Box<dyn EdcCode>,
    tag_code_ule: Box<dyn EdcCode>,
    lines: Vec<Line>,
}

impl WayState {
    fn data_code(&self, mode: Mode) -> &dyn EdcCode {
        match mode {
            Mode::Hp => self.data_code_hp.as_ref(),
            Mode::Ule => self.data_code_ule.as_ref(),
        }
    }

    fn tag_code(&self, mode: Mode) -> &dyn EdcCode {
        match mode {
            Mode::Hp => self.tag_code_hp.as_ref(),
            Mode::Ule => self.tag_code_ule.as_ref(),
        }
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Bit errors corrected by EDC during this access.
    pub corrected: u32,
    /// Detected uncorrectable errors during this access.
    pub detected: u32,
    /// Silent corruptions: payload delivered differs from what was
    /// written, with no error signalled (only possible without/beyond
    /// the protection).
    pub silent: u32,
    /// Whether a dirty victim was written back.
    pub writeback: bool,
}

/// The functional hybrid set-associative cache.
///
/// See the [module docs](self) for the storage model.
///
/// # Tiered access paths
///
/// [`HybridCache::access`] dispatches between two implementations
/// with bit-identical counters:
///
/// * the **fast path** engages while the cache is *fault-free* — no
///   stuck-at faults installed and no soft errors injected since the
///   last flush ([`HybridCache::is_fault_free`]). Every stored word
///   is then exactly the codeword the active code produced, so tag
///   decode is an identity check, payload verification can never
///   fail, and both are skipped entirely: a lookup is a plain tag
///   compare and a hit touches only the LRU stamp;
/// * the **slow path** runs the full EDC decode/verify machinery the
///   moment any fault or soft error is present (or when forced via
///   [`HybridCache::set_force_slow_path`], for equivalence tests and
///   benchmarks).
///
/// Storage stays fully materialized in both tiers (fills and the
/// fault-free write path keep every word a real codeword), so the
/// cache can drop from fast to slow at any time — e.g. when
/// [`HybridCache::set_stuck_bits`] arms a fault mid-run — without any
/// re-encoding step.
#[derive(Debug)]
pub struct HybridCache {
    config: CacheConfig,
    ways: Vec<WayState>,
    faults: HashMap<WordSlot, StuckBits>,
    mode: Mode,
    lru_clock: u64,
    stats: CacheStats,
    /// Whether any soft error has been injected since the last flush
    /// (conservative: cleared only by [`HybridCache::set_mode`], which
    /// invalidates every line the flip could still live in).
    soft_flips: bool,
    /// Diagnostic override: route every access through the slow path
    /// even when fault-free.
    force_slow: bool,
}

/// The deterministic payload written for a given word address; reads
/// are checked against it to expose silent corruption.
#[inline]
pub fn value_for(word_addr: u64) -> u64 {
    // splitmix64 finalizer, truncated to 32 bits.
    let mut z = word_addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xFFFF_FFFF
}

impl HybridCache {
    /// Builds an empty cache in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]). Use [`HybridCache::try_new`] to
    /// handle the error instead.
    pub fn new(config: CacheConfig, mode: Mode) -> Self {
        match HybridCache::try_new(config, mode) {
            Ok(cache) => cache,
            Err(e) => panic!("invalid cache config: {e}"),
        }
    }

    /// Builds an empty cache in the given mode, reporting an invalid
    /// geometry instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`CacheConfig`] invariant.
    pub fn try_new(config: CacheConfig, mode: Mode) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        let sets = config.sets();
        let words = config.words_per_line();
        let ways = config
            .ways
            .iter()
            .map(|spec| WayState {
                spec: *spec,
                data_code_hp: spec
                    .protection_hp
                    .build(config.word_bits as usize)
                    .expect("word width supported"),
                data_code_ule: spec
                    .protection_ule
                    .build(config.word_bits as usize)
                    .expect("word width supported"),
                tag_code_hp: spec
                    .protection_hp
                    .build(config.tag_bits as usize)
                    .expect("tag width supported"),
                tag_code_ule: spec
                    .protection_ule
                    .build(config.tag_bits as usize)
                    .expect("tag width supported"),
                lines: (0..sets)
                    .map(|_| Line {
                        valid: false,
                        dirty: false,
                        tag: 0,
                        tag_word: 0,
                        words: vec![0; words as usize],
                        lru: 0,
                    })
                    .collect(),
            })
            .collect();
        Ok(HybridCache {
            config,
            ways,
            faults: HashMap::new(),
            mode,
            lru_clock: 0,
            stats: CacheStats::default(),
            soft_flips: false,
            force_slow: false,
        })
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Installs a stuck-at fault pattern on one stored word.
    pub fn set_stuck_bits(&mut self, slot: WordSlot, faults: StuckBits) {
        if faults.mask == 0 {
            self.faults.remove(&slot);
        } else {
            self.faults.insert(slot, faults);
        }
    }

    /// Number of faulty bits currently installed.
    pub fn fault_bit_count(&self) -> u64 {
        self.faults.values().map(|f| u64::from(f.count())).sum()
    }

    /// Whether every stored word is guaranteed pristine: no stuck-at
    /// faults installed and no soft error injected since the last
    /// flush. While this holds, [`HybridCache::access`] runs the
    /// EDC-free fast path (see the type docs).
    pub fn is_fault_free(&self) -> bool {
        self.faults.is_empty() && !self.soft_flips
    }

    /// Forces every access through the full EDC slow path even when
    /// the cache is fault-free. Counters are bit-identical either way
    /// (asserted by the equivalence property suite); this knob exists
    /// so tests and `benches/hotpath.rs` can measure the armed slow
    /// path against the fast path on the same fault-free workload.
    pub fn set_force_slow_path(&mut self, force: bool) {
        self.force_slow = force;
    }

    fn fast_path_ready(&self) -> bool {
        !self.force_slow && self.faults.is_empty() && !self.soft_flips
    }

    /// Flips one stored bit (a soft error / SEU). The flip lands in
    /// the *stored* word, so a later rewrite clears it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn inject_soft_error(&mut self, slot: WordSlot, bit: u32) {
        let words_per_line = self.config.words_per_line();
        let line = &mut self.ways[slot.way].lines[slot.set as usize];
        if slot.slot == words_per_line {
            line.tag_word ^= 1u64 << bit;
        } else {
            line.words[slot.slot as usize] ^= 1u64 << bit;
        }
        self.soft_flips = true;
    }

    /// Switches operating mode, flushing the cache (dirty lines are
    /// written back) — the Vcc transition invalidates HP ways anyway
    /// and re-encodes would otherwise be needed where the protection
    /// level changes.
    ///
    /// Returns the number of lines written back.
    pub fn set_mode(&mut self, mode: Mode) -> u64 {
        let mut writebacks = 0;
        for way in &mut self.ways {
            for line in &mut way.lines {
                if line.valid && line.dirty {
                    writebacks += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        self.stats.writebacks += writebacks;
        self.mode = mode;
        // Every line a past soft error could still inhabit is now
        // invalid, and a fill rewrites the whole line (tag included),
        // so the flipped bits can never be observed again.
        self.soft_flips = false;
        writebacks
    }

    /// The payload a clean read of the word at `word_addr` must
    /// deliver: the deterministic value truncated to the configured
    /// word width (the encoder ignores bits above `word_bits`).
    fn expected_payload(&self, word_addr: u64) -> u64 {
        let bits = self.config.word_bits;
        if bits >= 64 {
            value_for(word_addr)
        } else {
            value_for(word_addr) & ((1u64 << bits) - 1)
        }
    }

    fn index(&self, addr: u64) -> (u64, u64) {
        let line_addr = addr / self.config.line_bytes;
        let set = line_addr % self.config.sets();
        let tag = (line_addr / self.config.sets()) & ((1u64 << self.config.tag_bits) - 1);
        (set, tag)
    }

    fn read_stored(&self, slot: WordSlot) -> u64 {
        let line = &self.ways[slot.way].lines[slot.set as usize];
        let raw = if slot.slot == self.config.words_per_line() {
            line.tag_word
        } else {
            line.words[slot.slot as usize]
        };
        match self.faults.get(&slot) {
            Some(f) => f.apply(raw),
            None => raw,
        }
    }

    /// Looks up `addr`, returning the hit way if any, and counts tag
    /// EDC activity.
    fn lookup(&mut self, set: u64, tag: u64) -> (Option<usize>, u32, u32) {
        let mode = self.mode;
        let words_per_line = self.config.words_per_line();
        let mut corrected = 0;
        let mut detected = 0;
        let mut hit_way = None;
        for w in 0..self.ways.len() {
            if !self.ways[w].spec.enabled(mode) || !self.ways[w].lines[set as usize].valid {
                continue;
            }
            let stored = self.read_stored(WordSlot {
                way: w,
                set,
                slot: words_per_line,
            });
            match self.ways[w].tag_code(mode).decode(stored) {
                Decoded::Clean { data } => {
                    if data == tag {
                        hit_way = Some(w);
                    }
                }
                Decoded::Corrected { data, errors } => {
                    corrected += errors;
                    if data == tag {
                        hit_way = Some(w);
                    }
                }
                Decoded::Detected { .. } => {
                    // Tag unreadable: conservatively a mismatch.
                    detected += 1;
                }
            }
        }
        (hit_way, corrected, detected)
    }

    /// Performs one access. `addr` is a byte address; writes store the
    /// deterministic payload for the word, reads verify it.
    ///
    /// Dispatches between the fault-free fast path and the full EDC
    /// slow path (see the type docs); the two produce bit-identical
    /// counters and outcomes whenever both are applicable.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let (set, tag) = self.index(addr);
        self.lru_clock += 1;
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        if self.fast_path_ready() {
            self.access_fast(addr, is_write, set, tag)
        } else {
            // Both the word slot and the verified payload address
            // derive from the configured word width (the same slot the
            // fill wrote with `value_for`).
            let word_bytes = u64::from(self.config.word_bits) / 8;
            let word_idx = (addr % self.config.line_bytes) / word_bytes;
            let word_addr = addr / word_bytes * word_bytes;
            self.access_slow(addr, is_write, set, tag, word_idx, word_addr)
        }
    }

    /// The fault-free fast path: no stored word can decode to anything
    /// but the value written, so tag matching is a plain compare and
    /// payload verification is skipped. Counters move exactly as in
    /// [`HybridCache::access_slow`]: a fault-free slow access always
    /// yields `corrected == detected == silent == 0`.
    fn access_fast(&mut self, addr: u64, is_write: bool, set: u64, tag: u64) -> AccessOutcome {
        let mode = self.mode;
        let mut outcome = AccessOutcome::default();
        // Last match wins, mirroring the slow lookup's scan order.
        let mut hit_way = None;
        for (w, way) in self.ways.iter().enumerate() {
            if !way.spec.enabled(mode) {
                continue;
            }
            let line = &way.lines[set as usize];
            if line.valid && line.tag == tag {
                hit_way = Some(w);
            }
        }
        let way = match hit_way {
            Some(w) => {
                self.stats.hits += 1;
                outcome.hit = true;
                w
            }
            None => {
                self.stats.misses += 1;
                let victim = self.choose_victim(set);
                outcome.writeback = self.fill(victim, set, tag, addr);
                victim
            }
        };
        let line = &mut self.ways[way].lines[set as usize];
        if is_write {
            // The stored word already holds the encoded deterministic
            // payload (the fill materialized it, and a fault-free
            // store would rewrite the identical codeword), so only
            // the dirty bit moves.
            line.dirty = true;
        }
        line.lru = self.lru_clock;
        outcome
    }

    /// The full EDC path: decode every candidate tag, decode and
    /// verify loaded payloads, re-encode stores.
    fn access_slow(
        &mut self,
        addr: u64,
        is_write: bool,
        set: u64,
        tag: u64,
        word_idx: u64,
        word_addr: u64,
    ) -> AccessOutcome {
        let mode = self.mode;
        let (hit_way, mut corrected, mut detected) = self.lookup(set, tag);
        let mut outcome = AccessOutcome::default();

        let way = match hit_way {
            Some(w) => {
                self.stats.hits += 1;
                outcome.hit = true;
                w
            }
            None => {
                self.stats.misses += 1;
                let victim = self.choose_victim(set);
                outcome.writeback = self.fill(victim, set, tag, addr);
                victim
            }
        };

        let slot = WordSlot {
            way,
            set,
            slot: word_idx,
        };
        if is_write {
            // Store: encode the new payload with the active code.
            let code = self.ways[way].data_code(mode);
            let encoded = code.encode(value_for(word_addr));
            let line = &mut self.ways[way].lines[set as usize];
            line.words[word_idx as usize] = encoded;
            line.dirty = true;
            line.lru = self.lru_clock;
        } else {
            // Load: decode through faults and verify the payload —
            // truncated to the stored word width, exactly as the
            // encoder stored it.
            let expected = self.expected_payload(word_addr);
            let stored = self.read_stored(slot);
            let code = self.ways[way].data_code(mode);
            match code.decode(stored) {
                Decoded::Clean { data } => {
                    if data != expected {
                        outcome.silent += 1;
                    }
                }
                Decoded::Corrected { data, errors } => {
                    corrected += errors;
                    if data != expected {
                        outcome.silent += 1;
                    }
                }
                Decoded::Detected { .. } => {
                    detected += 1;
                }
            }
            self.ways[way].lines[set as usize].lru = self.lru_clock;
        }

        outcome.corrected = corrected;
        outcome.detected = detected;
        self.stats.corrected += u64::from(corrected);
        self.stats.detected += u64::from(detected);
        self.stats.silent_corruptions += u64::from(outcome.silent);
        outcome
    }

    /// Picks the eviction victim among the ways enabled in the current
    /// mode: the first invalid line, else the least-recently-used one.
    ///
    /// Ties on the LRU stamp are broken toward the **lowest-index
    /// enabled way**. The strictly-increasing access clock never
    /// stamps two valid lines equally on its own, but staged states
    /// (tests, future bulk-load paths) can — so the choice is pinned
    /// explicitly rather than left to the scan order.
    fn choose_victim(&self, set: u64) -> usize {
        let mode = self.mode;
        let mut best: Option<(usize, u64)> = None;
        for (w, way) in self.ways.iter().enumerate() {
            if !way.spec.enabled(mode) {
                continue;
            }
            let line = &way.lines[set as usize];
            if !line.valid {
                return w;
            }
            let strictly_older = match best {
                None => true,
                // `<`, not `<=`: on equal stamps the earlier
                // (lowest-index) enabled way stays the victim.
                Some((_, best_lru)) => line.lru < best_lru,
            };
            if strictly_older {
                best = Some((w, line.lru));
            }
        }
        best.expect("at least one enabled way").0
    }

    /// Fills `(set, tag)` into `way`, returning whether a dirty victim
    /// was evicted.
    fn fill(&mut self, way: usize, set: u64, tag: u64, addr: u64) -> bool {
        let mode = self.mode;
        let words_per_line = self.config.words_per_line();
        let line_base = addr / self.config.line_bytes * self.config.line_bytes;
        let data_code = match mode {
            Mode::Hp => self.ways[way].data_code_hp.as_ref(),
            Mode::Ule => self.ways[way].data_code_ule.as_ref(),
        };
        let mut new_words = Vec::with_capacity(words_per_line as usize);
        for i in 0..words_per_line {
            let word_addr = line_base + i * (u64::from(self.config.word_bits) / 8);
            new_words.push(data_code.encode(value_for(word_addr)));
        }
        let tag_encoded = self.ways[way].tag_code(mode).encode(tag);
        let line = &mut self.ways[way].lines[set as usize];
        let writeback = line.valid && line.dirty;
        line.words = new_words;
        line.tag = tag;
        line.tag_word = tag_encoded;
        line.valid = true;
        line.dirty = false;
        line.lru = self.lru_clock;
        self.stats.fills += 1;
        if writeback {
            self.stats.writebacks += 1;
        }
        writeback
    }

    /// Number of ways enabled in the current mode.
    pub fn enabled_ways(&self) -> usize {
        self.ways
            .iter()
            .filter(|w| w.spec.enabled(self.mode))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use hyvec_edc::Protection;
    use hyvec_sram::CellKind;

    fn cache() -> HybridCache {
        HybridCache::new(SystemConfig::uniform_6t().il1, Mode::Hp)
    }

    fn hybrid_a_proposal() -> HybridCache {
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram8T,
            1.8,
            Protection::None,
            Protection::Secded,
        ));
        HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule)
    }

    use crate::config::CacheConfig;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        let out = c.access(0x1000, false);
        assert!(!out.hit);
        let out = c.access(0x1004, false);
        assert!(out.hit, "same line must hit");
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = cache();
        c.access(0x0, false);
        c.access(32, false); // next set
        assert_eq!(c.stats().misses, 2);
        assert!(c.access(0x0, false).hit);
        assert!(c.access(32, false).hit);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = cache();
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Fill all 8 ways of set 0.
        for i in 0..8u64 {
            c.access(i * sets * line, false);
        }
        // Touch way of line 0 to refresh it.
        c.access(0, false);
        // A ninth line evicts the LRU (line 1, not line 0).
        c.access(8 * sets * line, false);
        assert!(c.access(0, false).hit, "refreshed line must survive");
        assert!(!c.access(sets * line, false).hit, "LRU line must be gone");
    }

    #[test]
    fn ule_mode_uses_only_ule_ways() {
        let mut c = hybrid_a_proposal();
        assert_eq!(c.enabled_ways(), 1);
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Two conflicting lines thrash a single way.
        c.access(0, false);
        c.access(sets * line, false);
        assert!(!c.access(0, false).hit, "direct-mapped ULE way must evict");
    }

    #[test]
    fn writes_mark_dirty_and_cause_writebacks() {
        let mut c = hybrid_a_proposal();
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        c.access(0, true); // miss + fill + dirty
        let out = c.access(sets * line, false); // evicts dirty line
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_cache_delivers_correct_payloads() {
        let mut c = cache();
        for addr in (0..4096).step_by(4) {
            let out = c.access(addr, false);
            assert_eq!(out.silent, 0);
            assert_eq!(out.detected, 0);
        }
        assert_eq!(c.stats().silent_corruptions, 0);
    }

    #[test]
    fn secded_corrects_a_stuck_bit() {
        let mut c = hybrid_a_proposal();
        c.access(0, false); // fill set 0 into way 7
                            // Fault bit 3 of data word 0 in the ULE way, stuck at the
                            // wrong value.
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 3,
                value: !stored & (1 << 3),
            },
        );
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.corrected, 1, "SECDED must correct the stuck bit");
        assert_eq!(out.silent, 0);
        assert_eq!(c.stats().corrected, 1);
    }

    #[test]
    fn unprotected_stuck_bit_corrupts_silently() {
        // Baseline scenario A at ULE: 10T with no coding. A stuck bit
        // is delivered as wrong data with no signal — the failure mode
        // the paper's yield math must prevent by sizing.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram10T,
            1.0,
            Protection::None,
            Protection::None,
        ));
        let mut c = HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule);
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 5,
                value: !stored & (1 << 5),
            },
        );
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.silent, 1, "unprotected fault must corrupt silently");
        assert_eq!(out.corrected, 0);
    }

    #[test]
    fn dected_corrects_hard_fault_plus_soft_error() {
        // Scenario B at ULE: 8T + DECTED handles a stuck bit AND a
        // soft error in the same word — the paper's justification for
        // DECTED.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::Secded); 7];
        ways.push(crate::config::WaySpec::ule_way(
            CellKind::Sram8T,
            1.9,
            Protection::Secded,
            Protection::Dected,
        ));
        let mut c = HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule);
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: 1 << 7,
                value: !stored & (1 << 7),
            },
        );
        c.inject_soft_error(slot, 19);
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.corrected, 2, "DECTED must fix hard+soft together");
        assert_eq!(out.silent, 0);
    }

    #[test]
    fn secded_detects_but_cannot_fix_double_fault() {
        let mut c = hybrid_a_proposal();
        c.access(0, false);
        let slot = WordSlot {
            way: 7,
            set: 0,
            slot: 0,
        };
        let stored = c.read_stored(slot);
        c.set_stuck_bits(
            slot,
            StuckBits {
                mask: (1 << 2) | (1 << 9),
                value: !stored & ((1 << 2) | (1 << 9)),
            },
        );
        let out = c.access(0, false);
        assert_eq!(out.detected, 1);
        assert_eq!(out.silent, 0, "detected errors are not silent");
    }

    #[test]
    fn mode_switch_flushes() {
        let mut c = hybrid_a_proposal();
        c.access(0, true);
        let wb = c.set_mode(Mode::Hp);
        assert_eq!(wb, 1, "dirty line written back on switch");
        assert!(!c.access(0, false).hit, "flush invalidates");
        assert_eq!(c.enabled_ways(), 8);
    }

    #[test]
    fn tag_faults_in_unprotected_way_cause_misses_not_lies() {
        let mut c = cache();
        c.access(0, false);
        let tag_slot = WordSlot {
            way: 0,
            set: 0,
            slot: c.config().words_per_line(),
        };
        // Find which way holds the line.
        let way = (0..8)
            .find(|&w| c.ways[w].lines[0].valid)
            .expect("line filled");
        let tag_slot = WordSlot { way, ..tag_slot };
        let stored = c.read_stored(tag_slot);
        c.set_stuck_bits(
            tag_slot,
            StuckBits {
                mask: 1,
                value: !stored & 1,
            },
        );
        // The corrupted tag no longer matches: miss (refill), not a
        // false hit.
        let out = c.access(0, false);
        assert!(!out.hit);
    }

    #[test]
    fn value_for_is_deterministic_and_word_stable() {
        assert_eq!(value_for(0x1234), value_for(0x1234));
        assert_ne!(value_for(0x1234), value_for(0x1238));
        assert!(value_for(u64::MAX) <= u32::MAX as u64);
    }

    #[test]
    fn verification_address_honors_configured_word_size() {
        // Regression: the payload address used to be hard-coded to
        // 4-byte words (`addr / 4 * 4`) while the slot index honored
        // `word_bits`, so any non-32-bit word config miscounted clean
        // reads as silent corruptions at word-interior offsets.
        for word_bits in [16u32, 64] {
            let mut cfg = SystemConfig::uniform_6t().il1;
            cfg.word_bits = word_bits;
            cfg.validate().expect("geometry stays valid");
            let mut c = HybridCache::new(cfg, Mode::Hp);
            // Force the verifying slow path: the fast path skips the
            // payload check entirely.
            c.set_force_slow_path(true);
            for addr in (0..512).step_by(4) {
                c.access(addr, true);
            }
            for addr in (0..512).step_by(4) {
                let out = c.access(addr, false);
                assert_eq!(
                    out.silent, 0,
                    "{word_bits}-bit words: false corruption at {addr:#x}"
                );
                assert_eq!(out.detected, 0);
            }
            assert_eq!(c.stats().silent_corruptions, 0);
        }
    }

    fn two_ule_ways_cache(mode: Mode) -> HybridCache {
        // Ways 0-1 are HP-only (disabled at ULE), ways 2-3 stay on.
        let mut ways = vec![crate::config::WaySpec::hp_way(1.0, Protection::None); 2];
        for _ in 0..2 {
            ways.push(crate::config::WaySpec::ule_way(
                CellKind::Sram8T,
                1.8,
                Protection::None,
                Protection::None,
            ));
        }
        HybridCache::new(CacheConfig::l1_8kb(ways), mode)
    }

    #[test]
    fn victim_ties_break_to_the_lowest_index_enabled_way() {
        let mut c = two_ule_ways_cache(Mode::Ule);
        let sets = c.config().sets();
        let line = c.config().line_bytes;
        // Invalid lines: the first *enabled* way wins, skipping the
        // HP ways that are gated off at ULE.
        c.access(0, false);
        assert!(c.ways[2].lines[0].valid, "lowest enabled way fills first");
        assert!(!c.ways[0].lines[0].valid, "disabled ways must be skipped");
        c.access(sets * line, false);
        assert!(c.ways[3].lines[0].valid);
        // Stage an exact LRU tie between the two valid lines: the
        // documented tie-break evicts the lowest-index enabled way.
        c.ways[2].lines[0].lru = 7;
        c.ways[3].lines[0].lru = 7;
        let survivor_tag = c.ways[3].lines[0].tag;
        c.access(2 * sets * line, false);
        assert_eq!(
            c.ways[3].lines[0].tag, survivor_tag,
            "higher-index way must survive the tie"
        );
        assert_ne!(c.ways[2].lines[0].tag, 0, "way 2 holds the new line");
        // At HP every way participates again: a fresh cache fills
        // way 0 first.
        let mut c = two_ule_ways_cache(Mode::Hp);
        c.access(0, false);
        assert!(c.ways[0].lines[0].valid);
    }

    #[test]
    fn fast_and_slow_paths_agree_counter_for_counter() {
        let mut fast = cache();
        let mut slow = cache();
        slow.set_force_slow_path(true);
        assert!(fast.is_fault_free());
        let sets = fast.config().sets();
        let line = fast.config().line_bytes;
        // Hits, misses, conflict evictions, dirty writebacks.
        let mut addrs = Vec::new();
        for i in 0u64..600 {
            addrs.push((i.wrapping_mul(2654435761) % (12 * sets * line)) & !3);
        }
        for (i, &addr) in addrs.iter().enumerate() {
            let is_write = i % 3 == 1;
            let a = fast.access(addr, is_write);
            let b = slow.access(addr, is_write);
            assert_eq!(a, b, "outcome diverged at access {i} ({addr:#x})");
        }
        assert_eq!(fast.stats(), slow.stats());
        // And the stored state is identical too: arming the slow path
        // afterwards reads back every line cleanly.
        fast.set_force_slow_path(true);
        for &addr in &addrs {
            let out = fast.access(addr, false);
            assert_eq!(out.silent, 0);
            assert_eq!(out.detected, 0);
        }
    }

    #[test]
    fn fault_free_tracking_arms_and_disarms_the_fast_path() {
        let mut c = cache();
        assert!(c.is_fault_free());
        c.access(0, false);
        let slot = WordSlot {
            way: 0,
            set: 0,
            slot: 0,
        };
        // Installing and removing a stuck bit toggles the state.
        c.set_stuck_bits(slot, StuckBits { mask: 1, value: 0 });
        assert!(!c.is_fault_free());
        c.set_stuck_bits(slot, StuckBits { mask: 0, value: 0 });
        assert!(c.is_fault_free());
        // A soft error disarms the fast path and is actually seen by
        // the unprotected slow path...
        let way = (0..8)
            .find(|&w| c.ways[w].lines[0].valid)
            .expect("line filled");
        let hit_slot = WordSlot {
            way,
            set: 0,
            slot: 0,
        };
        c.inject_soft_error(hit_slot, 3);
        assert!(!c.is_fault_free());
        let out = c.access(0, false);
        assert!(out.hit);
        assert_eq!(out.silent, 1, "flip must be delivered silently (6T/none)");
        // ...and the flush on a mode switch restores the fast path.
        c.set_mode(Mode::Hp);
        assert!(c.is_fault_free());
    }
}
