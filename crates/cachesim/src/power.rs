//! Wattch-style event-based power accounting.
//!
//! The paper plugs its extended CACTI models into MPSim with Wattch-like
//! accounting: each microarchitectural event is charged the per-event
//! energy of the structures it touches, and leakage integrates over
//! elapsed time. This module does the same on top of
//! [`hyvec_cachemodel`]:
//!
//! * every cache lookup reads the tag and data arrays of all *enabled*
//!   ways in parallel (the L1 organization the paper's energy argument
//!   assumes — the oversized ULE way is paid for on every HP access);
//! * check-bit columns are only precharged when their code is active
//!   in the current mode ("SECDED is simply turned off" at HP);
//! * EDC encoders/decoders are charged per protected word moved;
//! * gated-off ways leak nothing (gated-Vdd, Powell et al.);
//! * all non-L1 SRAM arrays (register file, TLBs) are built from
//!   ULE-sized 10T cells "so they operate properly at any voltage
//!   level", exactly as in the paper, and the remaining core logic is
//!   a fixed switched-capacitance per instruction.
//!
//! Energy spent *below* the L1s (an optional unified L2, main-memory
//! accesses — see [`crate::hierarchy`]) is accumulated by the engine
//! from each level's [`AccessOutcome`](crate::hierarchy::AccessOutcome)
//! and folded into [`EnergyBreakdown::other_pj`], so the paper's
//! Figure 3/4 component categories stay stable whatever hierarchy is
//! configured.

use crate::config::{CacheConfig, Mode, SystemConfig};
use crate::stats::{CacheStats, RunStats};
use hyvec_cachemodel::{EdcCircuit, OperatingPoint, SramArray, TechnologyParams};
use hyvec_edc::Protection;
use hyvec_sram::{CellKind, SizedCell};

/// Energy-per-instruction breakdown, pJ, in the categories of the
/// paper's Figures 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// L1 (IL1+DL1) dynamic energy.
    pub l1_dynamic_pj: f64,
    /// L1 leakage energy.
    pub l1_leakage_pj: f64,
    /// EDC encoder/decoder energy (dynamic + leakage).
    pub edc_pj: f64,
    /// Everything else: register file, TLBs, core logic (dynamic and
    /// leakage).
    pub other_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.l1_dynamic_pj + self.l1_leakage_pj + self.edc_pj + self.other_pj
    }

    /// Energy per instruction, pJ.
    pub fn epi_pj(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total_pj() / instructions as f64
        }
    }

    /// Component-wise scaling (for normalization in the figures).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            l1_dynamic_pj: self.l1_dynamic_pj * factor,
            l1_leakage_pj: self.l1_leakage_pj * factor,
            edc_pj: self.edc_pj * factor,
            other_pj: self.other_pj * factor,
        }
    }

    /// The breakdown as `(machine key, display name, value)` triples,
    /// in the canonical Figure 3/4 column order. Structured emission
    /// for the report layer: a new component added here flows into
    /// every renderer without touching per-artifact formatting code.
    pub fn components(&self) -> [(&'static str, &'static str, f64); 4] {
        [
            ("l1_dynamic_pj", "L1 dyn", self.l1_dynamic_pj),
            ("l1_leakage_pj", "L1 leak", self.l1_leakage_pj),
            ("edc_pj", "EDC", self.edc_pj),
            ("other_pj", "other", self.other_pj),
        ]
    }
}

/// Per-way array models for one cache.
#[derive(Debug)]
struct WayPower {
    /// Full data array (all stored columns) — leakage and area.
    data_full: SramArray,
    /// Full tag array.
    tag_full: SramArray,
    /// Dynamic-energy arrays per mode (only active columns switch).
    data_dyn: [SramArray; 2],
    tag_dyn: [SramArray; 2],
    /// EDC circuits per mode: (data word, tag word).
    edc: [(EdcCircuit, EdcCircuit); 2],
    ule_enabled: bool,
}

fn mode_index(mode: Mode) -> usize {
    match mode {
        Mode::Hp => 0,
        Mode::Ule => 1,
    }
}

/// Power model of one cache built from its configuration.
#[derive(Debug)]
pub struct CachePower {
    ways: Vec<WayPower>,
    words_per_line: u64,
}

impl CachePower {
    /// Builds array models for every way of `config`.
    pub fn new(config: &CacheConfig, tech: TechnologyParams) -> Self {
        let sets = config.sets();
        let words = config.words_per_line();
        // Fold data words so the physical array lands near 64 rows.
        let ways = config
            .ways
            .iter()
            .map(|spec| {
                let stored_word = config.word_bits as usize + spec.stored_check_bits();
                let stored_tag = config.tag_bits as usize + spec.stored_check_bits();
                let data_words = sets * words;
                let build_data = |active_bits: usize| {
                    SramArray::for_bits(
                        spec.cell,
                        data_words * active_bits as u64,
                        active_bits as u32,
                        64,
                        tech,
                    )
                };
                let build_tag = |active_bits: usize| {
                    SramArray::for_bits(
                        spec.cell,
                        sets * active_bits as u64,
                        active_bits as u32,
                        64,
                        tech,
                    )
                };
                // Check-bit columns are precharge-gated only in the
                // all-or-nothing case ("SECDED is simply turned off",
                // scenario A at HP). When any code is active, the full
                // stored word is read and the decoder uses its subset
                // (scenario B reads the 13 DECTED columns at HP even
                // though only SECDED decodes them).
                let active = |mode: Mode| {
                    if spec.protection(mode) == Protection::None {
                        (config.word_bits as usize, config.tag_bits as usize)
                    } else {
                        (
                            config.word_bits as usize + spec.stored_check_bits(),
                            config.tag_bits as usize + spec.stored_check_bits(),
                        )
                    }
                };
                let (hp_word, hp_tag) = active(Mode::Hp);
                let (ule_word, ule_tag) = active(Mode::Ule);
                let edc_for = |p: Protection, bits: usize| {
                    // hyvec-lint: allow(no-panic, "widths come from a config that passed CacheConfig::validate, which checks codec support")
                    let code = p.build(bits).expect("supported width");
                    EdcCircuit::for_code(code.as_ref(), tech)
                };
                WayPower {
                    data_full: build_data(stored_word),
                    tag_full: build_tag(stored_tag),
                    data_dyn: [build_data(hp_word), build_data(ule_word)],
                    tag_dyn: [build_tag(hp_tag), build_tag(ule_tag)],
                    edc: [
                        (
                            edc_for(spec.protection_hp, config.word_bits as usize),
                            edc_for(spec.protection_hp, config.tag_bits as usize),
                        ),
                        (
                            edc_for(spec.protection_ule, config.word_bits as usize),
                            edc_for(spec.protection_ule, config.tag_bits as usize),
                        ),
                    ],
                    ule_enabled: spec.ule_enabled,
                }
            })
            .collect();
        CachePower {
            ways,
            words_per_line: words,
        }
    }

    fn enabled(&self, mode: Mode) -> impl Iterator<Item = &WayPower> {
        self.ways
            .iter()
            .filter(move |w| mode == Mode::Hp || w.ule_enabled)
    }

    /// Dynamic energy of one lookup (tag + data read in all enabled
    /// ways), pJ.
    pub fn lookup_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        self.enabled(mode)
            .map(|w| w.data_dyn[m].read_energy_pj(vdd) + w.tag_dyn[m].read_energy_pj(vdd))
            .sum()
    }

    /// Average dynamic energy of writing one data word into one
    /// enabled way, pJ.
    pub fn word_write_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let (sum, n) = self
            .enabled(mode)
            .map(|w| w.data_dyn[m].write_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// Average dynamic energy of writing one tag, pJ.
    pub fn tag_write_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let (sum, n) = self
            .enabled(mode)
            .map(|w| w.tag_dyn[m].write_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// Average single-way word read (victim readout on writeback), pJ.
    fn word_read_one_way_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let (sum, n) = self
            .enabled(mode)
            .map(|w| w.data_dyn[m].read_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// EDC energy charged per lookup: tag decode in every enabled
    /// protected way plus one data-word decode (the hit way), pJ.
    pub fn edc_lookup_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let tag_decodes: f64 = self
            .enabled(mode)
            .map(|w| w.edc[m].1.decode_energy_pj(vdd))
            .sum();
        let (data_sum, n) = self
            .enabled(mode)
            .map(|w| w.edc[m].0.decode_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        let data_decode = if n == 0 { 0.0 } else { data_sum / f64::from(n) };
        tag_decodes + data_decode
    }

    /// EDC energy per decoded data word outside a lookup (victim
    /// readout on writeback), pJ.
    pub fn edc_word_decode_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let (sum, n) = self
            .enabled(mode)
            .map(|w| w.edc[m].0.decode_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// EDC energy per encoded data word (store or fill), pJ.
    pub fn edc_encode_energy_pj(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        let (sum, n) = self
            .enabled(mode)
            .map(|w| w.edc[m].0.encode_energy_pj(vdd))
            .fold((0.0, 0u32), |(s, n), e| (s + e, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// Leakage power of the cache at `mode`, watts. Gated ways are off
    /// at ULE.
    pub fn leakage_w(&self, mode: Mode, vdd: f64) -> f64 {
        self.enabled(mode)
            .map(|w| w.data_full.leakage_w(vdd) + w.tag_full.leakage_w(vdd))
            .sum()
    }

    /// Leakage of the EDC circuits (always powered with their way), W.
    pub fn edc_leakage_w(&self, mode: Mode, vdd: f64) -> f64 {
        let m = mode_index(mode);
        self.enabled(mode)
            .map(|w| w.edc[m].0.leakage_w(vdd) + w.edc[m].1.leakage_w(vdd))
            .sum()
    }

    /// Total macro area of the cache (all ways, data + tag), µm².
    pub fn area_um2(&self) -> f64 {
        self.ways
            .iter()
            .map(|w| {
                w.data_full.area_um2()
                    + w.tag_full.area_um2()
                    + w.edc[0].0.area_um2().max(w.edc[1].0.area_um2())
                    + w.edc[0].1.area_um2().max(w.edc[1].1.area_um2())
            })
            .sum()
    }

    /// Maximum EDC pipeline latency among enabled ways at `mode`,
    /// cycles.
    pub fn edc_latency_cycles(&self, mode: Mode) -> u32 {
        let m = mode_index(mode);
        self.enabled(mode)
            .map(|w| w.edc[m].0.latency_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Energy of all cache events recorded in `stats`, split into
    /// (array dynamic, edc dynamic), pJ.
    pub fn dynamic_energy_pj(&self, stats: &CacheStats, mode: Mode, vdd: f64) -> (f64, f64) {
        let lookups = stats.accesses as f64;
        let store_words = (stats.writes.min(stats.accesses)) as f64;
        let fill_words = (stats.fills * self.words_per_line) as f64;
        let writeback_words = (stats.writebacks * self.words_per_line) as f64;

        let array = lookups * self.lookup_energy_pj(mode, vdd)
            + store_words * self.word_write_energy_pj(mode, vdd)
            + fill_words * self.word_write_energy_pj(mode, vdd)
            + stats.fills as f64 * self.tag_write_energy_pj(mode, vdd)
            + writeback_words * self.word_read_one_way_pj(mode, vdd);
        let edc = lookups * self.edc_lookup_energy_pj(mode, vdd)
            + (store_words + fill_words) * self.edc_encode_energy_pj(mode, vdd)
            + writeback_words * self.edc_word_decode_energy_pj(mode, vdd);
        (array, edc)
    }
}

/// Non-L1 structures: register file, TLBs (10T cells per the paper)
/// and the core's combinational logic.
#[derive(Debug)]
pub struct UncorePower {
    rf: SramArray,
    itlb: SramArray,
    dtlb: SramArray,
    /// Switched capacitance of core logic per instruction, fF.
    core_cap_ff: f64,
    /// Core logic leakage at 1.0V, watts.
    core_leak_w_nominal: f64,
}

impl UncorePower {
    /// Builds the uncore with all SRAM arrays in 10T cells sized
    /// `ten_t_sizing` (the ULE-way sizing, so they work at any Vcc).
    pub fn new(ten_t_sizing: f64, tech: TechnologyParams) -> Self {
        let cell = SizedCell::new(CellKind::Sram10T, ten_t_sizing);
        UncorePower {
            // 32 x 32-bit architectural registers.
            rf: SramArray::new(cell, 32, 32, 32, tech),
            // 16-entry, 32-bit TLB entries (VPN + PPN for a small
            // physical space).
            itlb: SramArray::new(cell, 16, 32, 32, tech),
            dtlb: SramArray::new(cell, 16, 32, 32, tech),
            core_cap_ff: 250.0,
            core_leak_w_nominal: 0.8e-4,
        }
    }

    /// Dynamic energy per instruction (2 RF reads + 1 RF write + ITLB
    /// read + core logic), plus one DTLB read per data access, pJ.
    pub fn dynamic_energy_pj(&self, instructions: u64, data_accesses: u64, vdd: f64) -> f64 {
        let per_instr = 2.0 * self.rf.read_energy_pj(vdd)
            + self.rf.write_energy_pj(vdd)
            + self.itlb.read_energy_pj(vdd)
            + self.core_cap_ff * vdd * vdd / 1000.0;
        let per_access = self.dtlb.read_energy_pj(vdd);
        instructions as f64 * per_instr + data_accesses as f64 * per_access
    }

    /// Uncore leakage power, watts.
    pub fn leakage_w(&self, vdd: f64) -> f64 {
        let arrays = self.rf.leakage_w(vdd) + self.itlb.leakage_w(vdd) + self.dtlb.leakage_w(vdd);
        let core = self.core_leak_w_nominal * (6.5 * (vdd - 1.0)).exp() * vdd;
        arrays + core
    }
}

/// Full-system power model.
#[derive(Debug)]
pub struct PowerModel {
    /// IL1 array models.
    pub il1: CachePower,
    /// DL1 array models.
    pub dl1: CachePower,
    /// Non-L1 structures.
    pub uncore: UncorePower,
}

impl PowerModel {
    /// Builds the power model for `config`. The uncore 10T sizing
    /// comes from the configuration so baseline and proposal always
    /// share the same uncore.
    pub fn new(config: &SystemConfig) -> Self {
        PowerModel {
            il1: CachePower::new(&config.il1, config.tech),
            dl1: CachePower::new(&config.dl1, config.tech),
            uncore: UncorePower::new(config.uncore_ten_t_sizing, config.tech),
        }
    }

    /// Computes the energy breakdown of a finished run at `mode`'s
    /// default operating point.
    pub fn breakdown(&self, stats: &RunStats, mode: Mode) -> EnergyBreakdown {
        self.breakdown_at(stats, mode, mode.operating_point())
    }

    /// Computes the energy breakdown at an explicit operating point
    /// (for DVS sweeps: `mode` selects which ways/codes are active,
    /// `op` sets the voltage and frequency).
    pub fn breakdown_at(
        &self,
        stats: &RunStats,
        mode: Mode,
        op: OperatingPoint,
    ) -> EnergyBreakdown {
        let vdd = op.vdd;
        let seconds = stats.cycles as f64 * op.cycle_s();

        let (il1_dyn, il1_edc) = self.il1.dynamic_energy_pj(&stats.il1, mode, vdd);
        let (dl1_dyn, dl1_edc) = self.dl1.dynamic_energy_pj(&stats.dl1, mode, vdd);
        let l1_leak_w = self.il1.leakage_w(mode, vdd) + self.dl1.leakage_w(mode, vdd);
        let edc_leak_w = self.il1.edc_leakage_w(mode, vdd) + self.dl1.edc_leakage_w(mode, vdd);
        let uncore_dyn = self
            .uncore
            .dynamic_energy_pj(stats.instructions, stats.dl1.accesses, vdd);
        let uncore_leak_w = self.uncore.leakage_w(vdd);

        EnergyBreakdown {
            l1_dynamic_pj: il1_dyn + dl1_dyn,
            l1_leakage_pj: l1_leak_w * seconds * 1e12,
            edc_pj: il1_edc + dl1_edc + edc_leak_w * seconds * 1e12,
            other_pj: uncore_dyn + uncore_leak_w * seconds * 1e12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaySpec;
    use hyvec_edc::Protection;

    fn proposal_a_config() -> SystemConfig {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec::ule_way(
            CellKind::Sram8T,
            1.8,
            Protection::None,
            Protection::Secded,
        ));
        SystemConfig::with_ways(ways, 20)
    }

    fn baseline_a_config() -> SystemConfig {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec::ule_way(
            CellKind::Sram10T,
            2.65,
            Protection::None,
            Protection::None,
        ));
        SystemConfig::with_ways(ways, 20)
    }

    #[test]
    fn ule_lookup_cheaper_than_hp_lookup() {
        let pm = PowerModel::new(&baseline_a_config());
        let hp = pm.il1.lookup_energy_pj(Mode::Hp, 1.0);
        let ule = pm.il1.lookup_energy_pj(Mode::Ule, 0.35);
        assert!(ule < hp * 0.2, "ULE lookup {ule} vs HP {hp}");
    }

    #[test]
    fn proposal_lookup_cheaper_than_baseline_both_modes() {
        let base = PowerModel::new(&baseline_a_config());
        let prop = PowerModel::new(&proposal_a_config());
        // HP: 8T way (SECDED off) vs sized-up 10T way.
        assert!(
            prop.il1.lookup_energy_pj(Mode::Hp, 1.0) < base.il1.lookup_energy_pj(Mode::Hp, 1.0)
        );
        // ULE: 8T+SECDED vs 10T.
        assert!(
            prop.il1.lookup_energy_pj(Mode::Ule, 0.35) < base.il1.lookup_energy_pj(Mode::Ule, 0.35)
        );
    }

    #[test]
    fn gated_ways_do_not_leak_at_ule() {
        // In a uniform all-6T cache, gating 7 of 8 ways cuts leakage
        // by exactly 8x.
        let pm = PowerModel::new(&SystemConfig::uniform_6t());
        let hp_leak = pm.il1.leakage_w(Mode::Hp, 0.35);
        let ule_leak = pm.il1.leakage_w(Mode::Ule, 0.35);
        assert!(
            (hp_leak / ule_leak - 8.0).abs() < 1e-9,
            "{ule_leak} vs {hp_leak}"
        );
        // In the hybrid baseline the sized-up 10T way dominates
        // leakage, so gating removes less — but still a strict
        // reduction.
        let pm = PowerModel::new(&baseline_a_config());
        assert!(pm.il1.leakage_w(Mode::Ule, 0.35) < pm.il1.leakage_w(Mode::Hp, 0.35));
    }

    #[test]
    fn edc_energy_nonzero_only_when_active() {
        let pm = PowerModel::new(&proposal_a_config());
        assert_eq!(pm.il1.edc_lookup_energy_pj(Mode::Hp, 1.0), 0.0);
        assert!(pm.il1.edc_lookup_energy_pj(Mode::Ule, 0.35) > 0.0);
        assert_eq!(pm.il1.edc_latency_cycles(Mode::Hp), 0);
        assert_eq!(pm.il1.edc_latency_cycles(Mode::Ule), 1);
    }

    #[test]
    fn proposal_area_smaller_than_baseline() {
        // "Our architecture is proven to largely outperform existing
        //  solutions in terms of energy and area."
        let base = PowerModel::new(&baseline_a_config());
        let prop = PowerModel::new(&proposal_a_config());
        assert!(prop.il1.area_um2() < base.il1.area_um2());
    }

    #[test]
    fn breakdown_accumulates_events() {
        let pm = PowerModel::new(&proposal_a_config());
        let mut stats = RunStats {
            instructions: 1000,
            cycles: 1200,
            ..Default::default()
        };
        stats.il1.accesses = 1000;
        stats.il1.hits = 990;
        stats.il1.misses = 10;
        stats.il1.fills = 10;
        stats.dl1.accesses = 300;
        stats.dl1.writes = 90;
        stats.dl1.hits = 295;
        stats.dl1.misses = 5;
        stats.dl1.fills = 5;
        let hp = pm.breakdown(&stats, Mode::Hp);
        assert!(hp.l1_dynamic_pj > 0.0);
        assert!(hp.l1_leakage_pj > 0.0);
        assert!(hp.other_pj > 0.0);
        assert!(hp.total_pj() > 0.0);
        assert!(hp.epi_pj(1000) > 0.0);
        // Dynamic dominates at HP.
        assert!(hp.l1_dynamic_pj > hp.l1_leakage_pj);
        // Leakage share rises steeply at ULE (200ns cycles).
        let ule = pm.breakdown(&stats, Mode::Ule);
        assert!(
            ule.l1_leakage_pj / ule.l1_dynamic_pj > hp.l1_leakage_pj / hp.l1_dynamic_pj,
            "leakage share must grow at ULE"
        );
    }

    #[test]
    fn breakdown_scaling() {
        let b = EnergyBreakdown {
            l1_dynamic_pj: 2.0,
            l1_leakage_pj: 1.0,
            edc_pj: 0.5,
            other_pj: 0.5,
        };
        assert_eq!(b.total_pj(), 4.0);
        assert_eq!(b.scaled(0.5).total_pj(), 2.0);
        assert_eq!(b.epi_pj(4), 1.0);
        assert_eq!(b.epi_pj(0), 0.0);
    }
}
