//! Configuration types for the hybrid cache and the simulated system.

use std::error::Error;
use std::fmt;

use hyvec_cachemodel::{OperatingPoint, TechnologyParams};
use hyvec_edc::Protection;
use hyvec_sram::{CellKind, SizedCell};

/// Why a [`CacheConfig`] is not a valid hybrid-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The way list is empty.
    NoWays,
    /// `size_bytes` does not divide into whole lines per way.
    SizeNotDivisible {
        /// Configured capacity.
        size_bytes: u64,
        /// Configured line size.
        line_bytes: u64,
        /// Configured associativity.
        ways: usize,
    },
    /// The set count is not a power of two (the index function
    /// requires it).
    SetsNotPowerOfTwo {
        /// The offending set count.
        sets: u64,
    },
    /// The line size is not a power of two.
    LineNotPowerOfTwo {
        /// The offending line size.
        line_bytes: u64,
    },
    /// The line does not hold a whole number of protected words.
    LineNotWholeWords {
        /// Configured line size in bits.
        line_bits: u64,
        /// Configured protected-word width.
        word_bits: u32,
    },
    /// No way is ULE-enabled, so the cache cannot operate at ULE mode.
    NoUleWay,
    /// A [`SystemBuilder`](crate::engine::SystemBuilder) was asked to
    /// build without one of the mandatory L1 configurations.
    MissingCache {
        /// Which cache is missing (`"il1"` or `"dl1"`).
        cache: &'static str,
    },
    /// The configured soft-error rate is negative or not finite.
    InvalidSeuRate,
    /// A multi-core build was requested with zero cores.
    NoCores,
    /// A way's EDC family cannot protect the configured word or tag
    /// width, so its codec could not be constructed.
    UnsupportedWidth {
        /// The protection family that was asked for.
        protection: Protection,
        /// The offending word/tag width in bits.
        data_bits: u32,
        /// The widest word the family supports.
        max_data_bits: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoWays => write!(f, "cache needs at least one way"),
            ConfigError::SizeNotDivisible {
                size_bytes,
                line_bytes,
                ways,
            } => write!(
                f,
                "size must divide into lines and ways \
                 ({size_bytes}B / {line_bytes}B lines / {ways} ways)"
            ),
            ConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "sets must be a power of two (got {sets})")
            }
            ConfigError::LineNotPowerOfTwo { line_bytes } => {
                write!(f, "line size must be a power of two (got {line_bytes}B)")
            }
            ConfigError::LineNotWholeWords {
                line_bits,
                word_bits,
            } => write!(
                f,
                "line must hold whole words ({line_bits} line bits, {word_bits}-bit words)"
            ),
            ConfigError::NoUleWay => {
                write!(f, "at least one ULE way required for hybrid operation")
            }
            ConfigError::MissingCache { cache } => {
                write!(f, "system builder needs an {cache} configuration")
            }
            ConfigError::InvalidSeuRate => {
                write!(f, "soft-error rate must be finite and >= 0")
            }
            ConfigError::NoCores => {
                write!(f, "a multi-core system needs at least one core")
            }
            ConfigError::UnsupportedWidth {
                protection,
                data_bits,
                max_data_bits,
            } => write!(
                f,
                "{protection} cannot protect {data_bits}-bit words \
                 (supports 1..={max_data_bits})"
            ),
        }
    }
}

impl Error for ConfigError {}

/// The two operating modes of the paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// High-performance: high Vcc, all cache ways enabled.
    Hp,
    /// Ultra-low-energy: NST Vcc, only the ULE ways enabled (HP ways
    /// gated off via gated-Vdd).
    Ule,
}

impl Mode {
    /// The default operating point of the mode (1V/1GHz or 350mV/5MHz).
    pub fn operating_point(self) -> OperatingPoint {
        match self {
            Mode::Hp => OperatingPoint::hp(),
            Mode::Ule => OperatingPoint::ule(),
        }
    }
}

/// Static description of one cache way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaySpec {
    /// The bitcell implementing the way.
    pub cell: SizedCell,
    /// Whether the way stays powered at ULE mode (ULE way) or is gated
    /// off (HP way).
    pub ule_enabled: bool,
    /// Protection applied at HP mode.
    pub protection_hp: Protection,
    /// Protection applied at ULE mode.
    pub protection_ule: Protection,
}

impl WaySpec {
    /// An HP way: 6T cells, gated at ULE, with `protection` in both
    /// modes (HP ways never operate at ULE).
    pub fn hp_way(sizing: f64, protection: Protection) -> Self {
        WaySpec {
            cell: SizedCell::new(CellKind::Sram6T, sizing),
            ule_enabled: false,
            protection_hp: protection,
            protection_ule: protection,
        }
    }

    /// A ULE way of the given cell with per-mode protection.
    pub fn ule_way(
        kind: CellKind,
        sizing: f64,
        protection_hp: Protection,
        protection_ule: Protection,
    ) -> Self {
        WaySpec {
            cell: SizedCell::new(kind, sizing),
            ule_enabled: true,
            protection_hp,
            protection_ule,
        }
    }

    /// Protection active in `mode`.
    pub fn protection(&self, mode: Mode) -> Protection {
        match mode {
            Mode::Hp => self.protection_hp,
            Mode::Ule => self.protection_ule,
        }
    }

    /// Check bits that must be *stored* per word: the maximum over the
    /// two modes (a DECTED-at-ULE way stores 13 check-bit columns even
    /// when only SECDED is active at HP).
    pub fn stored_check_bits(&self) -> usize {
        self.protection_hp
            .check_bits()
            .max(self.protection_ule.check_bits())
    }

    /// Whether the way participates in lookups at `mode`.
    pub fn enabled(&self, mode: Mode) -> bool {
        match mode {
            Mode::Hp => true,
            Mode::Ule => self.ule_enabled,
        }
    }
}

/// Geometry and composition of one L1 cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes (data payload, excluding check bits).
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// The ways, in lookup order.
    pub ways: Vec<WaySpec>,
    /// Protected data-word width, bits (32 in the paper).
    pub word_bits: u32,
    /// Tag width, bits (26 in the paper).
    pub tag_bits: u32,
}

impl CacheConfig {
    /// An 8KB, 32B-line cache with the given ways (the paper's L1
    /// geometry when 8 ways are supplied).
    pub fn l1_8kb(ways: Vec<WaySpec>) -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways,
            word_bits: 32,
            tag_bits: 26,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways.len() as u64
    }

    /// 32-bit words per line.
    pub fn words_per_line(&self) -> u64 {
        self.line_bytes * 8 / u64::from(self.word_bits)
    }

    /// Data words per way (`DW` of the paper's Eq. (2), per way).
    pub fn data_words_per_way(&self) -> u64 {
        self.sets() * self.words_per_line()
    }

    /// Tag words per way (`TW` of the paper's Eq. (2), per way).
    pub fn tag_words_per_way(&self) -> u64 {
        self.sets()
    }

    /// Validates the geometry, reporting the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways.is_empty() {
            return Err(ConfigError::NoWays);
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes * self.ways.len() as u64)
        {
            return Err(ConfigError::SizeNotDivisible {
                size_bytes: self.size_bytes,
                line_bytes: self.line_bytes,
                ways: self.ways.len(),
            });
        }
        if !self.sets().is_power_of_two() {
            return Err(ConfigError::SetsNotPowerOfTwo { sets: self.sets() });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineNotPowerOfTwo {
                line_bytes: self.line_bytes,
            });
        }
        if !(self.line_bytes * 8).is_multiple_of(u64::from(self.word_bits)) {
            return Err(ConfigError::LineNotWholeWords {
                line_bits: self.line_bytes * 8,
                word_bits: self.word_bits,
            });
        }
        if !self.ways.iter().any(|w| w.ule_enabled) {
            return Err(ConfigError::NoUleWay);
        }
        // Every way must be able to build its word and tag codecs:
        // checking here is what lets the cache constructor treat codec
        // construction as infallible.
        for spec in &self.ways {
            for protection in [spec.protection_hp, spec.protection_ule] {
                for data_bits in [self.word_bits, self.tag_bits] {
                    if !protection.supports(data_bits as usize) {
                        return Err(ConfigError::UnsupportedWidth {
                            protection,
                            data_bits,
                            max_data_bits: protection.max_data_bits(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Geometry and timing of the optional unified L2 behind both L1s
/// (simulated by [`crate::hierarchy::L2Cache`]).
///
/// The L2 is a timing/energy model, not a bit-accurate store: the
/// paper's EDC machinery lives in the L1 ways, so the L2 carries no
/// protection state of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct L2Config {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency charged on every L2 access, cycles.
    pub hit_latency: u32,
    /// Dynamic energy per L2 read access, pJ.
    pub read_energy_pj: f64,
    /// Dynamic energy per L2 line write (fill or store), pJ.
    pub write_energy_pj: f64,
}

impl L2Config {
    /// A unified `size_kb`-KB L2 with 32B lines (matching the L1s),
    /// 8 ways, and latency/energy defaults that grow gently with
    /// capacity (one extra lookup cycle per size doubling past 16KB,
    /// CACTI-flavored per-access energy).
    ///
    /// # Panics
    ///
    /// Panics if `size_kb` is zero (a zero-capacity L2 is expressed by
    /// omitting the L2 level entirely).
    pub fn unified(size_kb: u64) -> Self {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics); `.max(1).ilog2()` below would silently mis-size otherwise")
        assert!(size_kb > 0, "L2 capacity must be positive");
        let doublings = (size_kb / 16).max(1).ilog2();
        let read_energy_pj = 4.0 + 0.02 * size_kb as f64;
        L2Config {
            size_bytes: size_kb * 1024,
            line_bytes: 32,
            ways: 8,
            hit_latency: 4 + doublings,
            read_energy_pj,
            write_energy_pj: 1.25 * read_energy_pj,
        }
    }

    /// The same configuration with an explicit lookup latency.
    pub fn with_hit_latency(mut self, cycles: u32) -> Self {
        self.hit_latency = cycles;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways as u64
    }

    /// Validates the geometry, reporting the first violated invariant
    /// (the hybrid-specific ULE-way rule does not apply to the L2).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 {
            return Err(ConfigError::NoWays);
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes * self.ways as u64)
        {
            return Err(ConfigError::SizeNotDivisible {
                size_bytes: self.size_bytes,
                line_bytes: self.line_bytes,
                ways: self.ways,
            });
        }
        if !self.sets().is_power_of_two() {
            return Err(ConfigError::SetsNotPowerOfTwo { sets: self.sets() });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineNotPowerOfTwo {
                line_bytes: self.line_bytes,
            });
        }
        Ok(())
    }
}

/// The terminal main-memory model behind the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Access latency in cycles (paper: ~20 behind the L1s).
    pub latency: u32,
    /// Dynamic energy per access, pJ. The default is 0 — the paper's
    /// EPI accounting stops at the L1s, and keeping the default free
    /// keeps legacy [`SystemConfig`] runs byte-identical.
    pub access_energy_pj: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            latency: 20,
            access_energy_pj: 0.0,
        }
    }
}

impl MemoryConfig {
    /// A flat memory with the given latency and no energy model.
    pub fn with_latency(latency: u32) -> Self {
        MemoryConfig {
            latency,
            ..MemoryConfig::default()
        }
    }
}

/// MESI coherence parameters for a private-L2 topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mesi {
    /// Extra cycles a request pays when a peer L2 supplies the line
    /// (a cache-to-cache intervention) instead of main memory.
    pub intervention_latency: u32,
}

impl Default for Mesi {
    fn default() -> Self {
        Mesi {
            intervention_latency: 6,
        }
    }
}

/// The L2 arrangement of a multi-core build
/// ([`crate::engine::SystemBuilder::build_multi`]).
///
/// The default, [`Topology::SharedL2`], is the paper's shape: N
/// private split-L1 front ends over one shared L2 (or straight to
/// memory when no L2 is configured). [`Topology::PrivateL2`] gives
/// every core its own L2 of the configured geometry over one shared
/// memory; with `coherence` set, a directory tracked across the
/// private tag arrays keeps the L2s MESI-coherent and counts
/// invalidations and interventions, and with `coherence: None` the
/// private L2s are incoherent (disjoint working sets assumed, every
/// miss fills from memory).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// One L2 (or flat memory) shared by every core.
    #[default]
    SharedL2,
    /// A private L2 per core over one shared memory.
    PrivateL2 {
        /// MESI coherence between the private L2s, or `None` for
        /// incoherent private caches.
        coherence: Option<Mesi>,
    },
}

/// Configuration of the full simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Instruction L1.
    pub il1: CacheConfig,
    /// Data L1.
    pub dl1: CacheConfig,
    /// Main-memory latency in cycles (paper: ~20).
    pub memory_latency: u32,
    /// Technology constants for the power model.
    pub tech: TechnologyParams,
    /// Sizing of the 10T cells used by the non-L1 SRAM arrays (RF,
    /// TLBs), which must work at any voltage. Shared by baseline and
    /// proposal so the uncore never skews a comparison.
    pub uncore_ten_t_sizing: f64,
}

impl SystemConfig {
    /// A uniform all-6T 7+1 system used as a neutral default in tests
    /// and examples (one 6T way marked ULE-enabled; not a realistic
    /// ULE design, but a valid cache).
    pub fn uniform_6t() -> Self {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec {
            cell: SizedCell::new(CellKind::Sram6T, 1.0),
            ule_enabled: true,
            protection_hp: Protection::None,
            protection_ule: Protection::None,
        });
        SystemConfig {
            il1: CacheConfig::l1_8kb(ways.clone()),
            dl1: CacheConfig::l1_8kb(ways),
            memory_latency: 20,
            tech: TechnologyParams::nm32(),
            uncore_ten_t_sizing: 2.65,
        }
    }

    /// Builds a system from identical IL1/DL1 way lists.
    pub fn with_ways(ways: Vec<WaySpec>, memory_latency: u32) -> Self {
        SystemConfig {
            il1: CacheConfig::l1_8kb(ways.clone()),
            dl1: CacheConfig::l1_8kb(ways),
            memory_latency,
            tech: TechnologyParams::nm32(),
            uncore_ten_t_sizing: 2.65,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let cfg = SystemConfig::uniform_6t();
        cfg.il1.validate().expect("paper geometry is valid");
        assert_eq!(cfg.il1.sets(), 32);
        assert_eq!(cfg.il1.words_per_line(), 8);
        assert_eq!(cfg.il1.data_words_per_way(), 256);
        assert_eq!(cfg.il1.tag_words_per_way(), 32);
    }

    #[test]
    fn way_spec_mode_logic() {
        let hp = WaySpec::hp_way(1.0, Protection::None);
        assert!(hp.enabled(Mode::Hp));
        assert!(!hp.enabled(Mode::Ule));
        let ule = WaySpec::ule_way(CellKind::Sram8T, 1.8, Protection::None, Protection::Secded);
        assert!(ule.enabled(Mode::Hp));
        assert!(ule.enabled(Mode::Ule));
        assert_eq!(ule.protection(Mode::Hp), Protection::None);
        assert_eq!(ule.protection(Mode::Ule), Protection::Secded);
        assert_eq!(ule.stored_check_bits(), 7);
        let b = WaySpec::ule_way(
            CellKind::Sram8T,
            1.9,
            Protection::Secded,
            Protection::Dected,
        );
        assert_eq!(b.stored_check_bits(), 13);
    }

    #[test]
    fn mode_operating_points() {
        assert_eq!(Mode::Hp.operating_point().vdd, 1.0);
        assert_eq!(Mode::Ule.operating_point().vdd, 0.35);
    }

    #[test]
    fn validate_requires_ule_way() {
        let cfg = CacheConfig::l1_8kb(vec![WaySpec::hp_way(1.0, Protection::None); 8]);
        assert_eq!(cfg.validate(), Err(ConfigError::NoUleWay));
    }

    #[test]
    fn validate_reports_each_geometry_violation() {
        let valid = SystemConfig::uniform_6t().il1;

        let mut no_ways = valid.clone();
        no_ways.ways.clear();
        assert_eq!(no_ways.validate(), Err(ConfigError::NoWays));

        let mut odd_size = valid.clone();
        odd_size.size_bytes = 8 * 1024 + 32;
        assert_eq!(
            odd_size.validate(),
            Err(ConfigError::SizeNotDivisible {
                size_bytes: 8 * 1024 + 32,
                line_bytes: 32,
                ways: 8,
            })
        );

        let mut three_words = valid.clone();
        three_words.word_bits = 48;
        assert_eq!(
            three_words.validate(),
            Err(ConfigError::LineNotWholeWords {
                line_bits: 256,
                word_bits: 48,
            })
        );
        // The error message keeps the historical assertion wording.
        assert!(ConfigError::NoUleWay
            .to_string()
            .contains("ULE way required"));
    }

    #[test]
    fn l2_config_defaults_scale_with_capacity() {
        let small = L2Config::unified(16);
        let big = L2Config::unified(128);
        small.validate().expect("16KB default is valid");
        big.validate().expect("128KB default is valid");
        assert_eq!(small.sets(), 64);
        assert!(big.hit_latency > small.hit_latency);
        assert!(big.read_energy_pj > small.read_energy_pj);
        assert!(small.write_energy_pj > small.read_energy_pj);
        assert_eq!(small.with_hit_latency(9).hit_latency, 9);
    }

    #[test]
    fn l2_config_rejects_bad_geometry() {
        let mut cfg = L2Config::unified(32);
        cfg.ways = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoWays));
        let mut cfg = L2Config::unified(32);
        cfg.size_bytes += 32;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::SizeNotDivisible { .. })
        ));
        let mut cfg = L2Config::unified(32);
        cfg.line_bytes = 24;
        cfg.size_bytes = 24 * 8 * 128;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn memory_config_default_is_the_paper_latency() {
        let m = MemoryConfig::default();
        assert_eq!(m.latency, 20);
        assert_eq!(m.access_energy_pj, 0.0);
        assert_eq!(MemoryConfig::with_latency(80).latency, 80);
    }

    #[test]
    fn builder_error_messages_render() {
        assert!(ConfigError::MissingCache { cache: "il1" }
            .to_string()
            .contains("il1"));
        assert!(ConfigError::InvalidSeuRate.to_string().contains("finite"));
    }
}
