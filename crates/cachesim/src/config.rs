//! Configuration types for the hybrid cache and the simulated system.

use hyvec_cachemodel::{OperatingPoint, TechnologyParams};
use hyvec_edc::Protection;
use hyvec_sram::{CellKind, SizedCell};

/// The two operating modes of the paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// High-performance: high Vcc, all cache ways enabled.
    Hp,
    /// Ultra-low-energy: NST Vcc, only the ULE ways enabled (HP ways
    /// gated off via gated-Vdd).
    Ule,
}

impl Mode {
    /// The default operating point of the mode (1V/1GHz or 350mV/5MHz).
    pub fn operating_point(self) -> OperatingPoint {
        match self {
            Mode::Hp => OperatingPoint::hp(),
            Mode::Ule => OperatingPoint::ule(),
        }
    }
}

/// Static description of one cache way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaySpec {
    /// The bitcell implementing the way.
    pub cell: SizedCell,
    /// Whether the way stays powered at ULE mode (ULE way) or is gated
    /// off (HP way).
    pub ule_enabled: bool,
    /// Protection applied at HP mode.
    pub protection_hp: Protection,
    /// Protection applied at ULE mode.
    pub protection_ule: Protection,
}

impl WaySpec {
    /// An HP way: 6T cells, gated at ULE, with `protection` in both
    /// modes (HP ways never operate at ULE).
    pub fn hp_way(sizing: f64, protection: Protection) -> Self {
        WaySpec {
            cell: SizedCell::new(CellKind::Sram6T, sizing),
            ule_enabled: false,
            protection_hp: protection,
            protection_ule: protection,
        }
    }

    /// A ULE way of the given cell with per-mode protection.
    pub fn ule_way(
        kind: CellKind,
        sizing: f64,
        protection_hp: Protection,
        protection_ule: Protection,
    ) -> Self {
        WaySpec {
            cell: SizedCell::new(kind, sizing),
            ule_enabled: true,
            protection_hp,
            protection_ule,
        }
    }

    /// Protection active in `mode`.
    pub fn protection(&self, mode: Mode) -> Protection {
        match mode {
            Mode::Hp => self.protection_hp,
            Mode::Ule => self.protection_ule,
        }
    }

    /// Check bits that must be *stored* per word: the maximum over the
    /// two modes (a DECTED-at-ULE way stores 13 check-bit columns even
    /// when only SECDED is active at HP).
    pub fn stored_check_bits(&self) -> usize {
        self.protection_hp
            .check_bits()
            .max(self.protection_ule.check_bits())
    }

    /// Whether the way participates in lookups at `mode`.
    pub fn enabled(&self, mode: Mode) -> bool {
        match mode {
            Mode::Hp => true,
            Mode::Ule => self.ule_enabled,
        }
    }
}

/// Geometry and composition of one L1 cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes (data payload, excluding check bits).
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// The ways, in lookup order.
    pub ways: Vec<WaySpec>,
    /// Protected data-word width, bits (32 in the paper).
    pub word_bits: u32,
    /// Tag width, bits (26 in the paper).
    pub tag_bits: u32,
}

impl CacheConfig {
    /// An 8KB, 32B-line cache with the given ways (the paper's L1
    /// geometry when 8 ways are supplied).
    pub fn l1_8kb(ways: Vec<WaySpec>) -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways,
            word_bits: 32,
            tag_bits: 26,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.ways.len() as u64
    }

    /// 32-bit words per line.
    pub fn words_per_line(&self) -> u64 {
        self.line_bytes * 8 / u64::from(self.word_bits)
    }

    /// Data words per way (`DW` of the paper's Eq. (2), per way).
    pub fn data_words_per_way(&self) -> u64 {
        self.sets() * self.words_per_line()
    }

    /// Tag words per way (`TW` of the paper's Eq. (2), per way).
    pub fn tag_words_per_way(&self) -> u64 {
        self.sets()
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or do not divide evenly.
    pub fn validate(&self) {
        assert!(!self.ways.is_empty(), "cache needs at least one way");
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_bytes * self.ways.len() as u64),
            "size must divide into lines and ways"
        );
        assert!(self.sets().is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            (self.line_bytes * 8).is_multiple_of(u64::from(self.word_bits)),
            "line must hold whole words"
        );
        assert!(
            self.ways.iter().any(|w| w.ule_enabled),
            "at least one ULE way required for hybrid operation"
        );
    }
}

/// Configuration of the full simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Instruction L1.
    pub il1: CacheConfig,
    /// Data L1.
    pub dl1: CacheConfig,
    /// Main-memory latency in cycles (paper: ~20).
    pub memory_latency: u32,
    /// Technology constants for the power model.
    pub tech: TechnologyParams,
    /// Sizing of the 10T cells used by the non-L1 SRAM arrays (RF,
    /// TLBs), which must work at any voltage. Shared by baseline and
    /// proposal so the uncore never skews a comparison.
    pub uncore_ten_t_sizing: f64,
}

impl SystemConfig {
    /// A uniform all-6T 7+1 system used as a neutral default in tests
    /// and examples (one 6T way marked ULE-enabled; not a realistic
    /// ULE design, but a valid cache).
    pub fn uniform_6t() -> Self {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec {
            cell: SizedCell::new(CellKind::Sram6T, 1.0),
            ule_enabled: true,
            protection_hp: Protection::None,
            protection_ule: Protection::None,
        });
        SystemConfig {
            il1: CacheConfig::l1_8kb(ways.clone()),
            dl1: CacheConfig::l1_8kb(ways),
            memory_latency: 20,
            tech: TechnologyParams::nm32(),
            uncore_ten_t_sizing: 2.65,
        }
    }

    /// Builds a system from identical IL1/DL1 way lists.
    pub fn with_ways(ways: Vec<WaySpec>, memory_latency: u32) -> Self {
        SystemConfig {
            il1: CacheConfig::l1_8kb(ways.clone()),
            dl1: CacheConfig::l1_8kb(ways),
            memory_latency,
            tech: TechnologyParams::nm32(),
            uncore_ten_t_sizing: 2.65,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let cfg = SystemConfig::uniform_6t();
        cfg.il1.validate();
        assert_eq!(cfg.il1.sets(), 32);
        assert_eq!(cfg.il1.words_per_line(), 8);
        assert_eq!(cfg.il1.data_words_per_way(), 256);
        assert_eq!(cfg.il1.tag_words_per_way(), 32);
    }

    #[test]
    fn way_spec_mode_logic() {
        let hp = WaySpec::hp_way(1.0, Protection::None);
        assert!(hp.enabled(Mode::Hp));
        assert!(!hp.enabled(Mode::Ule));
        let ule = WaySpec::ule_way(CellKind::Sram8T, 1.8, Protection::None, Protection::Secded);
        assert!(ule.enabled(Mode::Hp));
        assert!(ule.enabled(Mode::Ule));
        assert_eq!(ule.protection(Mode::Hp), Protection::None);
        assert_eq!(ule.protection(Mode::Ule), Protection::Secded);
        assert_eq!(ule.stored_check_bits(), 7);
        let b = WaySpec::ule_way(
            CellKind::Sram8T,
            1.9,
            Protection::Secded,
            Protection::Dected,
        );
        assert_eq!(b.stored_check_bits(), 13);
    }

    #[test]
    fn mode_operating_points() {
        assert_eq!(Mode::Hp.operating_point().vdd, 1.0);
        assert_eq!(Mode::Ule.operating_point().vdd, 0.35);
    }

    #[test]
    #[should_panic(expected = "ULE way required")]
    fn validate_requires_ule_way() {
        let cfg = CacheConfig::l1_8kb(vec![WaySpec::hp_way(1.0, Protection::None); 8]);
        cfg.validate();
    }
}
