//! The in-order core timing model driving both L1 caches.
//!
//! The paper's platform is deliberately simple: one in-order core
//! (resembling the Intel wide-operating-range IA-32 part), split 8KB
//! L1s, ~20-cycle memory. The timing model is correspondingly simple:
//!
//! * one base cycle per instruction (scalar, in-order);
//! * a miss in either L1 stalls for the memory latency plus the EDC
//!   pipeline latency of the fill path (encode before write);
//! * an EDC *correction* event costs one recovery bubble;
//! * hits are EDC-latency-free: at 200ns ULE cycles the syndrome
//!   logic fits comfortably in the existing pipeline slack, matching
//!   the paper's "negligible (around 3%)" execution-time overhead,
//!   which stems from the fill/correction path.

use crate::cache::{HybridCache, WordSlot};
use crate::config::{
    CacheConfig, ConfigError, L2Config, MemoryConfig, Mode, SystemConfig, Topology,
};
use crate::hierarchy::{
    AccessOutcome, AccessRequest, Hierarchy, HitDepth, L2Cache, MainMemory, MemoryLevel, PrivateL2s,
};
use crate::multicore::{MultiChain, MultiCoreSystem};
use crate::power::{EnergyBreakdown, PowerModel};
use crate::stats::RunStats;
use hyvec_cachemodel::{OperatingPoint, TechnologyParams};
use hyvec_mediabench::{TraceEntry, TraceSource};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Default seed of the soft-error RNG (historical constant of
/// `System::new`; [`SystemBuilder::seu`] overrides it). The
/// multi-core engine derives per-core streams from the same seed.
pub(crate) const DEFAULT_SEU_SEED: u64 = 0x5E0_E44;

/// Per-core timing constants hoisted out of the instruction loop
/// (identical across the cores of a [`MultiCoreSystem`], which share
/// one configuration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreTiming {
    /// EDC pipeline latency charged on IL1 fills, cycles.
    pub il1_edc_latency: u32,
    /// EDC pipeline latency charged on DL1 fills, cycles.
    pub dl1_edc_latency: u32,
    /// DL1 line size, for splitting line-crossing data accesses.
    pub dl1_line_bytes: u64,
}

/// The byte pieces of one data access split at cache-line boundaries.
///
/// A `DataAccess` is at most 8 bytes and lines are powers of two, so a
/// fixed-capacity buffer suffices (8 pieces covers even degenerate
/// 1-byte lines) and the hot path never allocates. A non-crossing
/// access yields exactly one piece at the original address, keeping
/// the historical single-lookup behavior bit-for-bit.
pub(crate) struct AccessPieces {
    pieces: [(u64, u8); 8],
    len: usize,
    next: usize,
}

impl Iterator for AccessPieces {
    type Item = (u64, u8);

    fn next(&mut self) -> Option<(u64, u8)> {
        if self.next < self.len {
            let piece = self.pieces[self.next];
            self.next += 1;
            Some(piece)
        } else {
            None
        }
    }
}

/// Splits `size` bytes at `addr` into per-line pieces. Accesses that
/// stay within one line (the only kind the synthetic generators emit)
/// come back unchanged as a single piece; a replayed or hand-built
/// access that crosses a boundary is charged once per touched line.
pub(crate) fn split_at_line_boundaries(addr: u64, size: u8, line_bytes: u64) -> AccessPieces {
    debug_assert!(
        size <= 8,
        "DataAccess size {size} exceeds the documented 1-8 byte range"
    );
    let mut out = AccessPieces {
        pieces: [(0, 0); 8],
        len: 0,
        next: 0,
    };
    let mut addr = addr;
    let mut remaining = u64::from(size);
    loop {
        let room = line_bytes - (addr % line_bytes);
        let take = remaining.min(room);
        out.pieces[out.len] = (addr, take as u8);
        out.len += 1;
        remaining -= take;
        if remaining == 0 {
            return out;
        }
        if out.len == out.pieces.len() {
            // Unreachable within the DataAccess contract (size <= 8
            // needs at most 8 one-byte pieces). If a release build is
            // handed a contract-violating size, charge the tail to
            // the final piece rather than silently dropping bytes.
            out.pieces[out.len - 1].1 = out.pieces[out.len - 1].1.saturating_add(remaining as u8);
            return out;
        }
        addr += take;
    }
}

/// Executes one trace entry against a core front end (IL1 + DL1) over
/// the shared hierarchy below, returning the cycles it consumed.
///
/// This is the timing model of *one* in-order core, shared verbatim by
/// [`System::run_at`] and the multi-core engine
/// ([`MultiCoreSystem`]): one base cycle, miss
/// stalls for the composed fill latency plus the EDC pipeline, one
/// recovery bubble per correction, one read-modify-write bubble for
/// sub-word stores into protected words. Data accesses that cross a
/// DL1 line boundary are split and charged once per touched line.
///
/// `stats.memory_accesses` is incremented for every fill satisfied at
/// [`HitDepth::Memory`] — the core's *demand* memory traffic. The
/// single-core engine overwrites the field afterwards with the chain's
/// own count (which additionally includes buffered writebacks); the
/// multi-core engine keeps the per-core demand figure, since the
/// shared chain cannot attribute writebacks to cores.
///
/// Generic over the chain below: the engines match the [`Hierarchy`]
/// variant once per run and call this with the concrete stock type
/// ([`crate::hierarchy::L1OverMemory`] /
/// [`crate::hierarchy::L1OverL2`]), so the miss path compiles to
/// static calls; `dyn MemoryLevel` (`?Sized`) covers custom chains.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_entry<B: MemoryLevel + ?Sized>(
    il1: &mut HybridCache,
    dl1: &mut HybridCache,
    below: &mut B,
    timing: CoreTiming,
    stats: &mut RunStats,
    below_pj: &mut f64,
    entry: TraceEntry,
) -> u64 {
    let mut cycles = 1u64;

    let fetch = il1.access(entry.pc, false);
    if !fetch.hit {
        let fill = below.access(AccessRequest::read(entry.pc));
        *below_pj += fill.energy_pj;
        stats.below_corrected += u64::from(fill.corrected);
        stats.below_detected += u64::from(fill.detected);
        stats.memory_accesses += u64::from(fill.depth == HitDepth::Memory);
        let stall = u64::from(fill.latency_cycles + timing.il1_edc_latency);
        stats.il1_stall_cycles += stall;
        stats.edc_stall_cycles += u64::from(timing.il1_edc_latency);
        cycles += stall;
    }
    if fetch.corrected > 0 {
        stats.edc_stall_cycles += 1;
        cycles += 1;
    }

    if let Some(access) = entry.access {
        for (addr, size) in
            split_at_line_boundaries(access.addr, access.size, timing.dl1_line_bytes)
        {
            let data = dl1.access(addr, access.is_write);
            if !data.hit {
                let fill = below.access(AccessRequest {
                    addr,
                    is_write: access.is_write,
                });
                *below_pj += fill.energy_pj;
                stats.below_corrected += u64::from(fill.corrected);
                stats.below_detected += u64::from(fill.detected);
                stats.memory_accesses += u64::from(fill.depth == HitDepth::Memory);
                let stall = u64::from(fill.latency_cycles + timing.dl1_edc_latency);
                stats.dl1_stall_cycles += stall;
                stats.edc_stall_cycles += u64::from(timing.dl1_edc_latency);
                cycles += stall;
            }
            if data.corrected > 0 {
                stats.edc_stall_cycles += 1;
                cycles += 1;
            }
            // Sub-word stores into an EDC-protected word need a
            // read-modify-write to regenerate the check bits: one
            // extra cycle.
            if access.is_write && size < 4 && timing.dl1_edc_latency > 0 {
                stats.edc_stall_cycles += 1;
                cycles += 1;
            }
        }
    }

    cycles
}

/// Which L1 a chain-bound fill request belongs to (decides the EDC
/// latency charged on top of the composed fill latency and which
/// stall counter absorbs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqKind {
    /// An IL1 fetch miss.
    Il1,
    /// A DL1 piece miss.
    Dl1,
}

/// One chain-bound request recorded by the L1 front phase, to be
/// replayed against the shared chain at the merge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChainRequest {
    /// Byte address of the fill.
    pub addr: u64,
    /// `true` when the missing access was a store (write-allocate).
    pub is_write: bool,
    /// Which L1 missed.
    pub kind: ReqKind,
}

/// The L1-front phase of one entry: drives IL1/DL1, charges the
/// chain-independent stats (correction and RMW bubbles), and appends
/// the entry's chain-bound fill requests to `requests` in program
/// order (IL1 fetch first, then DL1 pieces). Returns the entry's
/// *core-local* cycles: the base cycle plus every bubble, excluding
/// fill stalls, which [`apply_fill`] charges when the chain outcome
/// is known.
///
/// `execute_entry` == `front_entry` + one [`apply_fill`] per recorded
/// request, by construction: the L1s never observe the chain, and the
/// chain never observes the L1s, so splitting the two phases moves
/// only *when* each counter is incremented, never by how much. The
/// epoch-parallel multi-core engine runs the front phase on worker
/// threads and replays the logs serially at the epoch barrier; its
/// serial reference path uses the same two helpers back-to-back.
pub(crate) fn front_entry(
    il1: &mut HybridCache,
    dl1: &mut HybridCache,
    timing: CoreTiming,
    stats: &mut RunStats,
    entry: TraceEntry,
    requests: &mut Vec<ChainRequest>,
) -> u64 {
    let mut cycles = 1u64;

    let fetch = il1.access(entry.pc, false);
    if !fetch.hit {
        requests.push(ChainRequest {
            addr: entry.pc,
            is_write: false,
            kind: ReqKind::Il1,
        });
    }
    if fetch.corrected > 0 {
        stats.edc_stall_cycles += 1;
        cycles += 1;
    }

    if let Some(access) = entry.access {
        for (addr, size) in
            split_at_line_boundaries(access.addr, access.size, timing.dl1_line_bytes)
        {
            let data = dl1.access(addr, access.is_write);
            if !data.hit {
                requests.push(ChainRequest {
                    addr,
                    is_write: access.is_write,
                    kind: ReqKind::Dl1,
                });
            }
            if data.corrected > 0 {
                stats.edc_stall_cycles += 1;
                cycles += 1;
            }
            if access.is_write && size < 4 && timing.dl1_edc_latency > 0 {
                stats.edc_stall_cycles += 1;
                cycles += 1;
            }
        }
    }

    cycles
}

/// The chain phase of one recorded request: charges the composed fill
/// outcome to the issuing core's stats and energy, returning the
/// stall cycles the core pays (composed fill latency + the missing
/// L1's EDC pipeline). Counterpart of [`front_entry`]; see there.
pub(crate) fn apply_fill(
    timing: CoreTiming,
    kind: ReqKind,
    fill: AccessOutcome,
    stats: &mut RunStats,
    below_pj: &mut f64,
) -> u64 {
    *below_pj += fill.energy_pj;
    stats.below_corrected += u64::from(fill.corrected);
    stats.below_detected += u64::from(fill.detected);
    stats.memory_accesses += u64::from(fill.depth == HitDepth::Memory);
    let edc_latency = match kind {
        ReqKind::Il1 => timing.il1_edc_latency,
        ReqKind::Dl1 => timing.dl1_edc_latency,
    };
    let stall = u64::from(fill.latency_cycles + edc_latency);
    match kind {
        ReqKind::Il1 => stats.il1_stall_cycles += stall,
        ReqKind::Dl1 => stats.dl1_stall_cycles += stall,
    }
    stats.edc_stall_cycles += u64::from(edc_latency);
    stall
}

/// The single-core instruction loop, generic over the chain below so
/// each stock [`Hierarchy`] shape compiles its own copy with static
/// dispatch (custom chains instantiate it with `dyn MemoryLevel`).
#[allow(clippy::too_many_arguments)]
fn run_loop<T: TraceSource, B: MemoryLevel + ?Sized>(
    trace: &mut T,
    il1: &mut HybridCache,
    dl1: &mut HybridCache,
    below: &mut B,
    timing: CoreTiming,
    seu_rate: f64,
    ule_bits: u64,
    seu_rng: &mut SmallRng,
    stats: &mut RunStats,
    below_pj: &mut f64,
) {
    let seu_active = seu_rate > 0.0;
    while let Some(entry) = trace.next_entry() {
        stats.instructions += 1;
        let cycles = execute_entry(il1, dl1, below, timing, stats, below_pj, entry);
        stats.cycles += cycles;

        // Soft errors arrive at rate * bits per cycle.
        if seu_active {
            let expected = seu_rate * ule_bits as f64 * cycles as f64;
            if seu_rng.gen::<f64>() < expected {
                if seu_rng.gen::<bool>() {
                    System::inject_random_seu(il1, seu_rng);
                } else {
                    System::inject_random_seu(dl1, seu_rng);
                }
            }
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Timing and event statistics.
    pub stats: RunStats,
    /// Energy breakdown over the whole run.
    pub energy: EnergyBreakdown,
    /// The mode the run executed in.
    pub mode: Mode,
    /// Wall-clock execution time in seconds at the mode's frequency.
    pub seconds: f64,
}

impl RunReport {
    /// Energy per instruction, pJ.
    pub fn epi_pj(&self) -> f64 {
        self.energy.epi_pj(self.stats.instructions)
    }
}

/// The simulated system: core + IL1 + DL1 + the [`MemoryLevel`] chain
/// below them + power model.
#[derive(Debug)]
pub struct System {
    il1: HybridCache,
    dl1: HybridCache,
    /// The memory hierarchy beneath both L1s: one of the two
    /// monomorphized stock shapes picked by the builder, or a custom
    /// boxed [`MemoryLevel`] chain.
    below: Hierarchy,
    power: PowerModel,
    /// Soft-error injection: expected upsets per stored bit per cycle
    /// (0 disables). Real rates are ~1e-17/bit/s; experiments
    /// accelerate this by many orders of magnitude to observe events
    /// in feasible simulations.
    seu_rate_per_bit_cycle: f64,
    seu_rng: SmallRng,
}

/// Fluent, validating constructor for [`System`]: pick the L1s, an
/// optional unified L2, the memory model, and soft-error injection,
/// then [`build`](SystemBuilder::build).
///
/// ```
/// use hyvec_cachesim::config::{L2Config, MemoryConfig, SystemConfig};
/// use hyvec_cachesim::engine::System;
///
/// let l1s = SystemConfig::uniform_6t();
/// let system = System::builder()
///     .il1(l1s.il1.clone())
///     .dl1(l1s.dl1.clone())
///     .l2(L2Config::unified(64))
///     .memory(MemoryConfig::with_latency(80))
///     .seu(1e-9, 7)
///     .build()
///     .expect("valid configuration");
/// # let _ = system;
/// ```
///
/// A builder seeded from a legacy [`SystemConfig`]
/// ([`SystemBuilder::config`]) with no further calls builds a system
/// byte-identical to `System::new(config)`.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    il1: Option<CacheConfig>,
    dl1: Option<CacheConfig>,
    l2: Option<L2Config>,
    memory: MemoryConfig,
    tech: TechnologyParams,
    uncore_ten_t_sizing: f64,
    seu: Option<(f64, u64)>,
    topology: Topology,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            il1: None,
            dl1: None,
            l2: None,
            memory: MemoryConfig::default(),
            tech: TechnologyParams::nm32(),
            uncore_ten_t_sizing: 2.65,
            seu: None,
            topology: Topology::SharedL2,
        }
    }
}

impl SystemBuilder {
    /// Seeds the L1s, memory latency, technology and uncore sizing
    /// from a legacy [`SystemConfig`] (the pre-builder configuration
    /// shape). Later calls override individual pieces.
    pub fn config(mut self, config: SystemConfig) -> SystemBuilder {
        self.il1 = Some(config.il1);
        self.dl1 = Some(config.dl1);
        self.memory.latency = config.memory_latency;
        self.tech = config.tech;
        self.uncore_ten_t_sizing = config.uncore_ten_t_sizing;
        self
    }

    /// Sets the instruction-L1 configuration.
    pub fn il1(mut self, config: CacheConfig) -> SystemBuilder {
        self.il1 = Some(config);
        self
    }

    /// Sets the data-L1 configuration.
    pub fn dl1(mut self, config: CacheConfig) -> SystemBuilder {
        self.dl1 = Some(config);
        self
    }

    /// Inserts a unified L2 between the L1s and main memory.
    pub fn l2(mut self, config: L2Config) -> SystemBuilder {
        self.l2 = Some(config);
        self
    }

    /// Sets the main-memory model (latency + per-access energy).
    pub fn memory(mut self, config: MemoryConfig) -> SystemBuilder {
        self.memory = config;
        self
    }

    /// Shorthand for [`SystemBuilder::memory`] with only a latency.
    pub fn memory_latency(mut self, cycles: u32) -> SystemBuilder {
        self.memory.latency = cycles;
        self
    }

    /// Sets the technology constants of the power model.
    pub fn tech(mut self, tech: TechnologyParams) -> SystemBuilder {
        self.tech = tech;
        self
    }

    /// Sets the 10T sizing of the always-on uncore SRAM arrays.
    pub fn uncore_sizing(mut self, sizing: f64) -> SystemBuilder {
        self.uncore_ten_t_sizing = sizing;
        self
    }

    /// Enables runtime soft-error injection at `rate` expected upsets
    /// per stored bit per cycle, with a deterministic RNG `seed`.
    pub fn seu(mut self, rate: f64, seed: u64) -> SystemBuilder {
        self.seu = Some((rate, seed));
        self
    }

    /// Selects the L2 arrangement of a multi-core build
    /// ([`SystemBuilder::build_multi`]): the default shared L2, or a
    /// private L2 per core with an optional MESI coherence policy.
    /// Ignored by the single-core [`SystemBuilder::build`].
    pub fn topology(mut self, topology: Topology) -> SystemBuilder {
        self.topology = topology;
        self
    }

    /// Validates every configured piece and assembles the system (in
    /// HP mode, caches empty).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: a missing L1
    /// ([`ConfigError::MissingCache`]), an invalid L1/L2 geometry, or
    /// an invalid soft-error rate ([`ConfigError::InvalidSeuRate`]).
    pub fn build(self) -> Result<System, ConfigError> {
        let il1 = self.il1.ok_or(ConfigError::MissingCache { cache: "il1" })?;
        let dl1 = self.dl1.ok_or(ConfigError::MissingCache { cache: "dl1" })?;
        if let Some(l2) = &self.l2 {
            l2.validate()?;
        }
        if let Some((rate, _)) = self.seu {
            if !rate.is_finite() || rate < 0.0 {
                return Err(ConfigError::InvalidSeuRate);
            }
        }
        let config = SystemConfig {
            il1,
            dl1,
            memory_latency: self.memory.latency,
            tech: self.tech,
            uncore_ten_t_sizing: self.uncore_ten_t_sizing,
        };
        let il1 = HybridCache::try_new(config.il1.clone(), Mode::Hp)?;
        let dl1 = HybridCache::try_new(config.dl1.clone(), Mode::Hp)?;
        let power = PowerModel::new(&config);
        let memory = MainMemory::new(self.memory);
        // Select the concrete stock driver for the configured shape:
        // the run loop monomorphizes over it.
        let below = match self.l2 {
            Some(l2) => Hierarchy::L2(L2Cache::new(l2, memory)),
            None => Hierarchy::Memory(memory),
        };
        let (rate, seed) = self.seu.unwrap_or((0.0, DEFAULT_SEU_SEED));
        Ok(System {
            il1,
            dl1,
            below,
            power,
            seu_rate_per_bit_cycle: rate,
            seu_rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Validates the configuration and assembles a `cores`-core
    /// machine: `cores` private split-L1 front ends (all built from
    /// the same IL1/DL1 configuration) over the configured
    /// [`Topology`] — **one** shared L2/memory chain by default, or a
    /// private L2 per core (optionally MESI-coherent) over one shared
    /// memory. See [`MultiCoreSystem`] for the execution model.
    ///
    /// # Errors
    ///
    /// Everything [`SystemBuilder::build`] rejects, plus
    /// [`ConfigError::NoCores`] when `cores` is zero and
    /// [`ConfigError::MissingCache`] (`"l2"`) when a private-L2
    /// topology is requested without an L2 geometry.
    pub fn build_multi(self, cores: usize) -> Result<MultiCoreSystem, ConfigError> {
        if cores == 0 {
            return Err(ConfigError::NoCores);
        }
        let il1_cfg = self
            .il1
            .clone()
            .ok_or(ConfigError::MissingCache { cache: "il1" })?;
        let dl1_cfg = self
            .dl1
            .clone()
            .ok_or(ConfigError::MissingCache { cache: "dl1" })?;
        let topology = self.topology;
        let l2_cfg = self.l2.clone();
        let memory_cfg = self.memory;
        let (_, seu_seed) = self.seu.unwrap_or((0.0, DEFAULT_SEU_SEED));
        // Core 0 (and the shared chain, power model and SEU state)
        // comes from the single-core constructor, so the two paths
        // can never diverge on validation or assembly.
        let System {
            il1,
            dl1,
            below,
            power,
            seu_rate_per_bit_cycle,
            ..
        } = self.build()?;
        let below = match topology {
            Topology::SharedL2 => MultiChain::Shared(below),
            Topology::PrivateL2 { coherence } => {
                let l2 = l2_cfg.ok_or(ConfigError::MissingCache { cache: "l2" })?;
                MultiChain::Private(PrivateL2s::new(
                    l2,
                    cores,
                    coherence,
                    MainMemory::new(memory_cfg),
                ))
            }
        };
        let mut fronts = vec![(il1, dl1)];
        for _ in 1..cores {
            fronts.push((
                HybridCache::try_new(il1_cfg.clone(), Mode::Hp)?,
                HybridCache::try_new(dl1_cfg.clone(), Mode::Hp)?,
            ));
        }
        Ok(MultiCoreSystem::from_parts(
            fronts,
            below,
            power,
            seu_rate_per_bit_cycle,
            seu_seed,
        ))
    }
}

impl System {
    /// Starts a [`SystemBuilder`] with nothing configured.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Builds a system in HP mode from a legacy [`SystemConfig`]
    /// (flat memory, no L2) — the historical constructor, now a shim
    /// over [`System::builder`].
    ///
    /// # Panics
    ///
    /// Panics if a cache configuration is invalid; use
    /// `System::builder().config(config).build()` to handle the
    /// [`ConfigError`] instead.
    pub fn new(config: SystemConfig) -> Self {
        match System::builder().config(config).build() {
            Ok(system) => system,
            // hyvec-lint: allow(no-panic, "documented panicking shim; System::builder().build() is the fallible path")
            Err(e) => panic!("invalid cache config: {e}"),
        }
    }

    /// Enables runtime soft-error injection at the given expected
    /// upsets per stored bit per cycle, with a deterministic seed.
    ///
    /// Terrestrial rates are around 1e-17 per bit-second (amplified at
    /// NST voltage); pass an accelerated figure (e.g. `1e-9`) to
    /// observe upsets within a short simulation.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn set_soft_error_rate(&mut self, rate: f64, seed: u64) {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics); SystemBuilder::seu is the validating path")
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.seu_rate_per_bit_cycle = rate;
        self.seu_rng = SmallRng::seed_from_u64(seed);
    }

    /// Flips one uniformly random stored bit among the ULE-way words
    /// of one cache (data and tag, payload and check bits alike).
    /// Shared with the multi-core engine.
    pub(crate) fn inject_random_seu(cache: &mut HybridCache, rng: &mut SmallRng) {
        let config = cache.config().clone();
        let ule_ways: Vec<usize> = config
            .ways
            .iter()
            .enumerate()
            .filter(|(_, w)| w.ule_enabled)
            .map(|(i, _)| i)
            .collect();
        if ule_ways.is_empty() {
            return;
        }
        let way = ule_ways[rng.gen_range(0..ule_ways.len())];
        let set = rng.gen_range(0..config.sets());
        let slot = rng.gen_range(0..=config.words_per_line());
        let spec = config.ways[way];
        let bits = if slot == config.words_per_line() {
            config.tag_bits as usize + spec.stored_check_bits()
        } else {
            config.word_bits as usize + spec.stored_check_bits()
        };
        let bit = rng.gen_range(0..bits) as u32;
        cache.inject_soft_error(WordSlot { way, set, slot }, bit);
    }

    /// The instruction cache (e.g. for fault injection).
    pub fn il1_mut(&mut self) -> &mut HybridCache {
        &mut self.il1
    }

    /// The data cache (e.g. for fault injection).
    pub fn dl1_mut(&mut self) -> &mut HybridCache {
        &mut self.dl1
    }

    /// The memory hierarchy beneath the L1s.
    pub fn below(&self) -> &dyn MemoryLevel {
        self.below.as_dyn()
    }

    /// Replaces the memory hierarchy beneath the L1s with a custom
    /// [`MemoryLevel`] chain (a prefetcher, an ECC memory model, a
    /// NUMA stack, ...). The engine charges whatever composed
    /// latency/energy/EDC events the chain reports on each L1 miss.
    /// Custom chains run through `dyn` dispatch (only the two stock
    /// builder shapes are monomorphized).
    pub fn set_hierarchy(&mut self, below: Box<dyn MemoryLevel>) {
        self.below = Hierarchy::Custom(below);
    }

    /// The power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// Runs `trace` to completion at `mode`, returning timing and
    /// energy. Any [`TraceSource`] feeds the engine — the synthetic
    /// generator, a [`hyvec_mediabench::Replay`] file, or a plain
    /// iterator of entries. Caches are flushed on entry (the mode
    /// transition) and statistics are reset; installed fault maps
    /// persist.
    pub fn run<T>(&mut self, trace: T, mode: Mode) -> RunReport
    where
        T: TraceSource,
    {
        self.run_at(trace, mode, mode.operating_point())
    }

    /// Like [`run`](System::run) but at an explicit operating point —
    /// the DVS-sweep entry point (`mode` still decides which ways and
    /// codes are active).
    pub fn run_at<T>(&mut self, mut trace: T, mode: Mode, op: OperatingPoint) -> RunReport
    where
        T: TraceSource,
    {
        self.il1.set_mode(mode);
        self.dl1.set_mode(mode);
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.below.flush();
        self.below.reset_stats();

        let timing = CoreTiming {
            il1_edc_latency: self.power.il1.edc_latency_cycles(mode),
            dl1_edc_latency: self.power.dl1.edc_latency_cycles(mode),
            dl1_line_bytes: self.dl1.config().line_bytes,
        };

        // Soft-error bookkeeping: bits exposed in the powered ULE ways
        // of both caches. The exposure count (and the whole SEU branch
        // in the loop) is skipped entirely for the default fault-free
        // runs, keeping the sweep hot path free of RNG work.
        let seu_active = self.seu_rate_per_bit_cycle > 0.0;
        let ule_bits: u64 = if seu_active {
            [self.il1.config(), self.dl1.config()]
                .iter()
                .map(|c| {
                    c.ways
                        .iter()
                        .filter(|w| w.ule_enabled)
                        .map(|w| {
                            c.sets()
                                * (c.words_per_line()
                                    * (u64::from(c.word_bits) + w.stored_check_bits() as u64)
                                    + u64::from(c.tag_bits)
                                    + w.stored_check_bits() as u64)
                        })
                        .sum::<u64>()
                })
                .sum()
        } else {
            0
        };

        // Dynamic energy spent below the L1s (zero for the default
        // energy-free flat memory; folded into the `other` component
        // so the paper's breakdown categories stay stable).
        let mut below_pj = 0.0f64;

        let mut stats = RunStats::default();
        {
            // Dispatch on the chain shape once, outside the loop: the
            // whole instruction loop monomorphizes per stock shape.
            let rate = self.seu_rate_per_bit_cycle;
            let System {
                il1,
                dl1,
                below,
                seu_rng,
                ..
            } = self;
            match below {
                Hierarchy::Memory(m) => run_loop(
                    &mut trace,
                    il1,
                    dl1,
                    m,
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
                Hierarchy::L2(l2) => run_loop(
                    &mut trace,
                    il1,
                    dl1,
                    l2,
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
                Hierarchy::Custom(b) => run_loop(
                    &mut trace,
                    il1,
                    dl1,
                    b.as_mut(),
                    timing,
                    rate,
                    ule_bits,
                    seu_rng,
                    &mut stats,
                    &mut below_pj,
                ),
            }
        }

        stats.il1 = *self.il1.stats();
        stats.dl1 = *self.dl1.stats();
        // The single-core report keeps the historical chain-reported
        // memory count (demand fills *plus* buffered writebacks),
        // discarding the loop's demand-only tally — and stays zero for
        // custom chains that expose no "memory" level.
        stats.memory_accesses = 0;
        for (name, level) in self.below.chain_stats() {
            match name {
                "l2" => stats.l2 = Some(level),
                "memory" => stats.memory_accesses = level.accesses,
                _ => {}
            }
        }

        let mut energy = self.power.breakdown_at(&stats, mode, op);
        if below_pj > 0.0 {
            energy.other_pj += below_pj;
        }
        RunReport {
            stats,
            energy,
            mode,
            seconds: stats.cycles as f64 * op.cycle_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaySpec;
    use hyvec_edc::Protection;
    use hyvec_mediabench::Benchmark;
    use hyvec_sram::CellKind;

    fn baseline_a() -> SystemConfig {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec::ule_way(
            CellKind::Sram10T,
            2.65,
            Protection::None,
            Protection::None,
        ));
        SystemConfig::with_ways(ways, 20)
    }

    fn proposal_a() -> SystemConfig {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec::ule_way(
            CellKind::Sram8T,
            1.8,
            Protection::None,
            Protection::Secded,
        ));
        SystemConfig::with_ways(ways, 20)
    }

    #[test]
    fn trace_runs_to_completion() {
        let mut sys = System::new(baseline_a());
        let report = sys.run(Benchmark::G721C.trace(30_000, 1), Mode::Hp);
        assert_eq!(report.stats.instructions, 30_000);
        assert!(report.stats.cycles >= 30_000);
        assert!(report.stats.cpi() >= 1.0);
        assert!(report.epi_pj() > 0.0);
        assert!(report.seconds > 0.0);
    }

    #[test]
    fn bigbench_hits_well_at_hp() {
        // "their workloads fit pretty well in cache" — Sec. IV-B.1.
        let mut sys = System::new(baseline_a());
        for b in Benchmark::BIG {
            let report = sys.run(b.trace(60_000, 2), Mode::Hp);
            assert!(
                report.stats.il1.hit_ratio() > 0.95,
                "{b}: IL1 hit ratio {}",
                report.stats.il1.hit_ratio()
            );
            assert!(
                report.stats.dl1.hit_ratio() > 0.85,
                "{b}: DL1 hit ratio {}",
                report.stats.dl1.hit_ratio()
            );
        }
    }

    #[test]
    fn smallbench_hits_well_at_ule() {
        // SmallBench fits the single 1KB ULE way — Sec. IV-A.1.
        let mut sys = System::new(proposal_a());
        for b in Benchmark::SMALL {
            let report = sys.run(b.trace(60_000, 3), Mode::Ule);
            assert!(
                report.stats.il1.hit_ratio() > 0.95,
                "{b}: IL1 hit ratio {}",
                report.stats.il1.hit_ratio()
            );
            assert!(
                report.stats.dl1.hit_ratio() > 0.90,
                "{b}: DL1 hit ratio {}",
                report.stats.dl1.hit_ratio()
            );
        }
    }

    #[test]
    fn ule_mode_runs_slower_in_wall_clock() {
        let mut sys = System::new(proposal_a());
        let hp = sys.run(Benchmark::AdpcmC.trace(20_000, 1), Mode::Hp);
        let ule = sys.run(Benchmark::AdpcmC.trace(20_000, 1), Mode::Ule);
        // 1GHz vs 5MHz: wall clock ~200x slower even with similar CPI.
        assert!(ule.seconds > 50.0 * hp.seconds);
    }

    #[test]
    fn edc_latency_shows_up_in_proposal_at_ule() {
        let mut base = System::new(baseline_a());
        let mut prop = System::new(proposal_a());
        let b = base.run(Benchmark::EpicC.trace(50_000, 4), Mode::Ule);
        let p = prop.run(Benchmark::EpicC.trace(50_000, 4), Mode::Ule);
        assert_eq!(b.stats.edc_stall_cycles, 0, "baseline A has no EDC");
        assert!(p.stats.edc_stall_cycles > 0, "proposal A pays EDC fills");
        assert!(p.stats.cycles > b.stats.cycles);
        // ...but the overhead is small (paper: ~3%).
        let overhead = p.stats.cycles as f64 / b.stats.cycles as f64 - 1.0;
        assert!(overhead < 0.10, "EDC overhead too large: {overhead}");
    }

    #[test]
    fn proposal_epi_lower_at_hp() {
        let mut base = System::new(baseline_a());
        let mut prop = System::new(proposal_a());
        let b = base.run(Benchmark::GsmC.trace(50_000, 5), Mode::Hp);
        let p = prop.run(Benchmark::GsmC.trace(50_000, 5), Mode::Hp);
        assert!(
            p.epi_pj() < b.epi_pj(),
            "proposal {} vs baseline {}",
            p.epi_pj(),
            b.epi_pj()
        );
    }

    #[test]
    fn soft_errors_are_corrected_by_secded_but_corrupt_unprotected() {
        // Accelerated SEU rate so a 50k-instruction run sees many
        // upsets.
        let rate = 2e-8;
        let mut prop = System::new(proposal_a());
        prop.set_soft_error_rate(rate, 77);
        let p = prop.run(Benchmark::AdpcmC.trace(50_000, 7), Mode::Ule);
        assert!(
            p.stats.corrected() > 0,
            "accelerated SEUs should trigger corrections"
        );
        assert_eq!(
            p.stats.silent_corruptions(),
            0,
            "SECDED must absorb single upsets"
        );

        let mut base = System::new(baseline_a());
        base.set_soft_error_rate(rate, 77);
        let b = base.run(Benchmark::AdpcmC.trace(50_000, 7), Mode::Ule);
        assert!(
            b.stats.silent_corruptions() > 0,
            "the unprotected baseline must corrupt under the same rate"
        );
    }

    #[test]
    fn zero_rate_means_no_injection() {
        let mut sys = System::new(proposal_a());
        sys.set_soft_error_rate(0.0, 1);
        let r = sys.run(Benchmark::EpicC.trace(20_000, 1), Mode::Ule);
        assert_eq!(r.stats.corrected(), 0);
        assert_eq!(r.stats.silent_corruptions(), 0);
    }

    #[test]
    fn split_pieces_cover_the_access_exactly() {
        // Crossing accesses split at the boundary...
        let pieces: Vec<_> = split_at_line_boundaries(30, 4, 32).collect();
        assert_eq!(pieces, [(30, 2), (32, 2)]);
        let pieces: Vec<_> = split_at_line_boundaries(31, 8, 32).collect();
        assert_eq!(pieces, [(31, 1), (32, 7)]);
        // ...aligned and boundary-ending accesses stay whole...
        assert_eq!(
            split_at_line_boundaries(28, 4, 32).collect::<Vec<_>>(),
            [(28, 4)]
        );
        assert_eq!(
            split_at_line_boundaries(24, 8, 32).collect::<Vec<_>>(),
            [(24, 8)]
        );
        // ...and degenerate tiny lines still terminate.
        let pieces: Vec<_> = split_at_line_boundaries(3, 8, 4).collect();
        assert_eq!(pieces, [(3, 1), (4, 4), (8, 3)]);
    }

    #[test]
    fn line_crossing_accesses_are_charged_per_touched_line() {
        // The synthetic generators never emit line-crossing accesses,
        // but replayed traces can: pin the chosen behavior — the
        // access is split and each touched line is charged its own
        // DL1 access (and fill, on a miss).
        use hyvec_mediabench::{DataAccess, TraceEntry};
        let cfg = SystemConfig::uniform_6t();
        let line = cfg.dl1.line_bytes;
        let mut sys = System::new(cfg);
        let entry = |addr, size| TraceEntry {
            pc: 0x1000_0000,
            access: Some(DataAccess {
                addr,
                size,
                is_write: false,
            }),
        };
        // Non-crossing control: one lookup, one line filled.
        let r = sys.run(vec![entry(0x2000_0000 + line - 4, 4)].into_iter(), Mode::Hp);
        assert_eq!(r.stats.dl1.accesses, 1);
        assert_eq!(r.stats.dl1.fills, 1);
        // Crossing: two lookups, both lines filled, both stalls paid.
        let r = sys.run(vec![entry(0x2000_0000 + line - 2, 4)].into_iter(), Mode::Hp);
        assert_eq!(r.stats.dl1.accesses, 2, "crossing access charged per line");
        assert_eq!(r.stats.dl1.fills, 2, "both lines are filled");
        assert_eq!(r.stats.memory_accesses, 3, "IL1 fill + two DL1 fills");
    }

    #[test]
    fn builder_without_l1s_is_rejected() {
        use crate::config::ConfigError;
        assert_eq!(
            System::builder().build().unwrap_err(),
            ConfigError::MissingCache { cache: "il1" }
        );
        let cfg = SystemConfig::uniform_6t();
        assert_eq!(
            System::builder().il1(cfg.il1).build().unwrap_err(),
            ConfigError::MissingCache { cache: "dl1" }
        );
    }

    #[test]
    fn builder_rejects_bad_seu_and_l2() {
        use crate::config::{ConfigError, L2Config};
        let cfg = SystemConfig::uniform_6t();
        let base = System::builder().config(cfg);
        assert_eq!(
            base.clone().seu(-1.0, 3).build().unwrap_err(),
            ConfigError::InvalidSeuRate
        );
        assert_eq!(
            base.clone().seu(f64::NAN, 3).build().unwrap_err(),
            ConfigError::InvalidSeuRate
        );
        let mut l2 = L2Config::unified(32);
        l2.ways = 0;
        assert_eq!(base.l2(l2).build().unwrap_err(), ConfigError::NoWays);
    }

    #[test]
    fn l2_reduces_miss_stalls_behind_slow_memory() {
        use crate::config::{L2Config, MemoryConfig};
        let cfg = baseline_a();
        let flat = System::builder()
            .config(cfg.clone())
            .memory(MemoryConfig::with_latency(80))
            .build()
            .expect("flat system");
        let mut flat = flat;
        let mut with_l2 = System::builder()
            .config(cfg)
            .memory(MemoryConfig::with_latency(80))
            .l2(L2Config::unified(64))
            .build()
            .expect("L2 system");
        let f = flat.run(Benchmark::Mpeg2C.trace(40_000, 2), Mode::Hp);
        let l = with_l2.run(Benchmark::Mpeg2C.trace(40_000, 2), Mode::Hp);
        // Same L1 behavior, so the same misses descend...
        assert_eq!(f.stats.il1, l.stats.il1);
        assert_eq!(f.stats.dl1, l.stats.dl1);
        // ...but the L2 absorbs part of each one's latency.
        let l2_stats = l.stats.l2.expect("L2 stats recorded");
        assert!(l2_stats.accesses > 0, "misses must reach the L2");
        assert!(l2_stats.hits > 0, "the L2 must absorb some misses");
        assert!(l.stats.cycles < f.stats.cycles);
        assert!(l.stats.memory_accesses < f.stats.memory_accesses);
        assert!(f.stats.l2.is_none(), "flat system reports no L2");
    }

    #[test]
    fn proposal_epi_much_lower_at_ule() {
        let mut base = System::new(baseline_a());
        let mut prop = System::new(proposal_a());
        let b = base.run(Benchmark::AdpcmD.trace(50_000, 6), Mode::Ule);
        let p = prop.run(Benchmark::AdpcmD.trace(50_000, 6), Mode::Ule);
        let saving = 1.0 - p.epi_pj() / b.epi_pj();
        assert!(saving > 0.20, "ULE saving too small: {saving}");
    }
}
