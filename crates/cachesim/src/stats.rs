//! Simulation statistics counters.

/// Event counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses (loads + stores).
    pub accesses: u64,
    /// Store accesses.
    pub writes: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Line fills performed.
    pub fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Bit errors corrected by EDC.
    pub corrected: u64,
    /// Detected uncorrectable errors.
    pub detected: u64,
    /// Silently corrupted payloads delivered.
    pub silent_corruptions: u64,
    /// Lines invalidated by coherence (a peer's write upgrade).
    /// Non-zero only under a coherent private-L2 topology.
    pub invalidations: u64,
    /// Requests supplied cache-to-cache by a peer holding the line,
    /// instead of by main memory. Non-zero only under a coherent
    /// private-L2 topology.
    pub interventions: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses (0 when idle).
    // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            0.0
        } else {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio over all accesses (0 when idle).
    // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            0.0
        } else {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            self.hits as f64 / self.accesses as f64
        }
    }

    /// The counters as `(machine key, value)` pairs, in declaration
    /// order. Structured emission for the report layer.
    pub fn counters(&self) -> [(&'static str, u64); 11] {
        [
            ("accesses", self.accesses),
            ("writes", self.writes),
            ("hits", self.hits),
            ("misses", self.misses),
            ("fills", self.fills),
            ("writebacks", self.writebacks),
            ("corrected", self.corrected),
            ("detected", self.detected),
            ("silent_corruptions", self.silent_corruptions),
            ("invalidations", self.invalidations),
            ("interventions", self.interventions),
        ]
    }
}

/// Timing statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Cycles stalled on IL1 misses.
    pub il1_stall_cycles: u64,
    /// Cycles stalled on DL1 misses.
    pub dl1_stall_cycles: u64,
    /// Extra cycles charged to EDC encode/decode latency.
    pub edc_stall_cycles: u64,
    /// Instruction-cache statistics.
    pub il1: CacheStats,
    /// Data-cache statistics.
    pub dl1: CacheStats,
    /// Unified-L2 statistics, when the hierarchy has an L2 level.
    pub l2: Option<CacheStats>,
    /// Requests that reached main memory (last-level misses plus
    /// buffered writebacks).
    pub memory_accesses: u64,
    /// EDC corrections reported by hierarchy levels below the L1s
    /// (the built-in L2/memory models report none; custom
    /// `MemoryLevel` implementations surface theirs here).
    pub below_corrected: u64,
    /// Detected uncorrectable EDC events reported by levels below the
    /// L1s.
    pub below_detected: u64,
}

impl RunStats {
    /// Cycles per instruction.
    // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            0.0
        } else {
            // hyvec-lint: allow(counter-hygiene, "derived read-only ratio over integer counters; nothing is accumulated in floats")
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Total EDC corrections across both caches and the hierarchy
    /// below them.
    pub fn corrected(&self) -> u64 {
        self.il1.corrected + self.dl1.corrected + self.below_corrected
    }

    /// Total detected uncorrectable errors across both caches and the
    /// hierarchy below them.
    pub fn detected(&self) -> u64 {
        self.il1.detected + self.dl1.detected + self.below_detected
    }

    /// Total silent corruptions across both caches.
    pub fn silent_corruptions(&self) -> u64 {
        self.il1.silent_corruptions + self.dl1.silent_corruptions
    }

    /// The run-level counters as `(machine key, value)` pairs (the
    /// per-cache counters are reachable via [`CacheStats::counters`]).
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("instructions", self.instructions),
            ("cycles", self.cycles),
            ("il1_stall_cycles", self.il1_stall_cycles),
            ("dl1_stall_cycles", self.dl1_stall_cycles),
            ("edc_stall_cycles", self.edc_stall_cycles),
            ("memory_accesses", self.memory_accesses),
            ("below_corrected", self.below_corrected),
            ("below_detected", self.below_detected),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        let r = RunStats::default();
        assert_eq!(r.cpi(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = CacheStats {
            accesses: 100,
            hits: 98,
            misses: 2,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.02).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn counters_mirror_the_fields() {
        let s = CacheStats {
            accesses: 10,
            hits: 9,
            misses: 1,
            ..Default::default()
        };
        let c = s.counters();
        assert_eq!(c[0], ("accesses", 10));
        assert_eq!(c[2], ("hits", 9));
        let mut keys: Vec<_> = c.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), c.len(), "duplicate counter keys");
        let r = RunStats {
            instructions: 5,
            cycles: 7,
            ..Default::default()
        };
        assert_eq!(r.counters()[0], ("instructions", 5));
        assert_eq!(r.counters()[1], ("cycles", 7));
    }

    #[test]
    fn aggregates_sum_both_caches() {
        let mut r = RunStats::default();
        r.il1.corrected = 3;
        r.dl1.corrected = 4;
        r.il1.silent_corruptions = 1;
        assert_eq!(r.corrected(), 7);
        assert_eq!(r.silent_corruptions(), 1);
    }
}
