//! The composable memory hierarchy beneath (and including) the L1s.
//!
//! The paper's platform is a flat ~20-cycle memory behind split L1s,
//! and the seed simulator hard-wired exactly that shape. This module
//! opens it up: every storage level implements [`MemoryLevel`], and
//! the engine ([`crate::engine::System`]) drives whatever chain the
//! [`SystemBuilder`](crate::engine::SystemBuilder) composed — a bare
//! [`MainMemory`] reproduces the paper's platform bit-for-bit, while
//! inserting an [`L2Cache`] (or any custom level) changes only the
//! miss path.
//!
//! Levels are composed by ownership: an [`L2Cache`] owns the level
//! below it, and [`MemoryLevel::access`] returns the *composed*
//! outcome of the whole chain from that level down — latency and
//! energy summed along the miss path, with [`AccessOutcome::depth`]
//! recording where the request was finally satisfied.

use crate::cache::HybridCache;
use crate::config::{L2Config, MemoryConfig};
use crate::stats::CacheStats;
use std::fmt;

/// One memory request descending the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRequest {
    /// Byte address of the access.
    pub addr: u64,
    /// `true` for a store, `false` for a load/fetch.
    pub is_write: bool,
}

impl AccessRequest {
    /// A load/fetch request.
    pub fn read(addr: u64) -> Self {
        AccessRequest {
            addr,
            is_write: false,
        }
    }

    /// A store request.
    pub fn write(addr: u64) -> Self {
        AccessRequest {
            addr,
            is_write: true,
        }
    }
}

/// The hierarchy level at which a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitDepth {
    /// Satisfied by a first-level cache.
    L1,
    /// Satisfied by the unified second-level cache.
    L2,
    /// Satisfied by main memory (or an unmodeled backing store).
    Memory,
}

/// Composed outcome of one hierarchy access: the contribution of the
/// accessed level plus everything below it on the miss path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Total latency of the access through this level and below,
    /// cycles.
    pub latency_cycles: u32,
    /// Total dynamic energy of the access through this level and
    /// below, pJ.
    pub energy_pj: f64,
    /// Bit errors corrected by EDC along the path.
    pub corrected: u32,
    /// Detected uncorrectable EDC events along the path.
    pub detected: u32,
    /// Where the request was satisfied.
    pub depth: HitDepth,
}

/// One level of the memory hierarchy.
///
/// Implementations: [`HybridCache`] (the bit-accurate L1),
/// [`L2Cache`], and the terminal [`MainMemory`]. Custom levels
/// (prefetchers, scratchpads, NUMA models, ...) plug in the same way.
/// The engine drives the two stock chain shapes ([`L1OverMemory`] and
/// [`L1OverL2`]) through monomorphized code with static dispatch, and
/// falls back to `dyn MemoryLevel` only for custom chains installed
/// via [`System::set_hierarchy`](crate::engine::System::set_hierarchy).
pub trait MemoryLevel: fmt::Debug {
    /// Performs one access, descending the chain on a miss.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome;

    /// Invalidates all cached state in this level and below. Dirty
    /// victims are counted as writebacks *and* written through to the
    /// level below, so flush traffic lands in the same *event
    /// counters* as demand-eviction traffic. Unlike a demand miss,
    /// `flush` returns no [`AccessOutcome`], so the writebacks'
    /// composed energy is not reported back to the caller (the engine
    /// flushes only between runs, where it is out of scope by
    /// design). Called on mode transitions.
    fn flush(&mut self);

    /// Zeroes the statistics of this level and below.
    fn reset_stats(&mut self);

    /// Counters of this level and every level below it, top first,
    /// keyed by a stable level name (`"l1"`, `"l2"`, `"memory"`).
    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)>;
}

/// Boxed levels (concrete or `dyn`) are levels themselves, so generic
/// code can drive a custom `dyn` chain and a monomorphized stock chain
/// through the same bound.
impl<M: MemoryLevel + ?Sized> MemoryLevel for Box<M> {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.as_mut().access(req)
    }

    fn flush(&mut self) {
        self.as_mut().flush();
    }

    fn reset_stats(&mut self) {
        self.as_mut().reset_stats();
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        self.as_ref().chain_stats()
    }
}

impl MemoryLevel for HybridCache {
    /// A bare L1 as a hierarchy level. The functional cache refills
    /// itself from the deterministic payload model, so a standalone
    /// miss reports `depth: Memory` with zero latency (an unmodeled
    /// backing store); when the engine drives the L1 it charges the
    /// real fill path from the levels below and the EDC pipeline.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let out = HybridCache::access(self, req.addr, req.is_write);
        AccessOutcome {
            latency_cycles: 0,
            energy_pj: 0.0,
            corrected: out.corrected,
            detected: out.detected,
            depth: if out.hit {
                HitDepth::L1
            } else {
                HitDepth::Memory
            },
        }
    }

    fn flush(&mut self) {
        let mode = self.mode();
        self.set_mode(mode);
    }

    fn reset_stats(&mut self) {
        HybridCache::reset_stats(self);
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        vec![("l1", *self.stats())]
    }
}

/// The terminal level: a flat-latency main memory.
#[derive(Debug, Clone, PartialEq)]
pub struct MainMemory {
    config: MemoryConfig,
    stats: CacheStats,
}

impl MainMemory {
    /// Builds the memory model.
    pub fn new(config: MemoryConfig) -> Self {
        MainMemory {
            config,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

impl MemoryLevel for MainMemory {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.stats.accesses += 1;
        self.stats.hits += 1;
        if req.is_write {
            self.stats.writes += 1;
        }
        AccessOutcome {
            latency_cycles: self.config.latency,
            energy_pj: self.config.access_energy_pj,
            corrected: 0,
            detected: 0,
            depth: HitDepth::Memory,
        }
    }

    fn flush(&mut self) {}

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        vec![("memory", self.stats)]
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct L2Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// A write-allocate, write-back unified L2 between the L1s and the
/// level below it.
///
/// The L2 is a timing and energy model (tags + LRU only): the
/// bit-accurate storage and EDC machinery stay in the L1 ways, where
/// the paper's reliability argument lives. Both loads and stores
/// allocate on miss; dirty victims are written back through a buffer,
/// so the writeback is charged to the next level's counters and
/// energy but not to the demand access's latency.
///
/// The level below is a type parameter so stock chains monomorphize
/// (`L2Cache<MainMemory>` — the [`L1OverL2`] shape — descends with
/// static calls); the default `Box<dyn MemoryLevel>` keeps custom
/// chains and the historical constructor signature working unchanged.
#[derive(Debug)]
pub struct L2Cache<N: MemoryLevel = Box<dyn MemoryLevel>> {
    config: L2Config,
    /// `sets x ways` line metadata.
    lines: Vec<Vec<L2Line>>,
    lru_clock: u64,
    stats: CacheStats,
    next: N,
}

impl<N: MemoryLevel> L2Cache<N> {
    /// Builds an empty L2 on top of `next`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`L2Config::validate`]).
    pub fn new(config: L2Config, next: N) -> Self {
        if let Err(e) = config.validate() {
            // hyvec-lint: allow(no-panic, "documented panicking constructor; SystemBuilder::build validates L2 configs on the fallible path")
            panic!("invalid L2 config: {e}");
        }
        let lines = (0..config.sets())
            .map(|_| vec![L2Line::default(); config.ways])
            .collect();
        L2Cache {
            config,
            lines,
            lru_clock: 0,
            stats: CacheStats::default(),
            next,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    /// This level's own counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, addr: u64) -> (u64, u64) {
        let line_addr = addr / self.config.line_bytes;
        (
            line_addr % self.config.sets(),
            line_addr / self.config.sets(),
        )
    }
}

impl<N: MemoryLevel> MemoryLevel for L2Cache<N> {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        let (set, tag) = self.index(req.addr);
        self.lru_clock += 1;
        self.stats.accesses += 1;
        if req.is_write {
            self.stats.writes += 1;
        }

        let ways = &mut self.lines[set as usize];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.lru_clock;
            line.dirty |= req.is_write;
            self.stats.hits += 1;
            let energy = if req.is_write {
                self.config.write_energy_pj
            } else {
                self.config.read_energy_pj
            };
            return AccessOutcome {
                latency_cycles: self.config.hit_latency,
                energy_pj: energy,
                corrected: 0,
                detected: 0,
                depth: HitDepth::L2,
            };
        }

        // Miss: pick the LRU victim, write back its dirty line
        // (buffered — latency stays off the demand path), and fill
        // from below. Write-allocate: stores install the line too.
        self.stats.misses += 1;
        let victim = (0..self.config.ways)
            .min_by_key(|&w| (ways[w].valid, ways[w].lru))
            // hyvec-lint: allow(no-panic, "L2Config::validate rejects ways == 0, so the range is never empty")
            .expect("L2 has at least one way");
        let mut writeback_energy = 0.0;
        if ways[victim].valid && ways[victim].dirty {
            self.stats.writebacks += 1;
            let victim_addr =
                (ways[victim].tag * self.config.sets() + set) * self.config.line_bytes;
            writeback_energy = self
                .next
                .access(AccessRequest::write(victim_addr))
                .energy_pj;
        }
        let below = self.next.access(AccessRequest::read(req.addr));
        let ways = &mut self.lines[set as usize];
        ways[victim] = L2Line {
            valid: true,
            dirty: req.is_write,
            tag,
            lru: self.lru_clock,
        };
        self.stats.fills += 1;

        AccessOutcome {
            latency_cycles: self.config.hit_latency + below.latency_cycles,
            energy_pj: self.config.read_energy_pj
                + self.config.write_energy_pj
                + writeback_energy
                + below.energy_pj,
            corrected: below.corrected,
            detected: below.detected,
            depth: below.depth,
        }
    }

    fn flush(&mut self) {
        // Dirty victims leave through the same writeback path as
        // demand evictions: the level below sees the write in its
        // event counters, not just this level's writeback count. (The
        // composed energy of these writes has nowhere to go — flush
        // returns no outcome; see the trait doc.)
        for set in 0..self.lines.len() {
            for way in 0..self.config.ways {
                let line = self.lines[set][way];
                if line.valid && line.dirty {
                    self.stats.writebacks += 1;
                    let victim_addr =
                        (line.tag * self.config.sets() + set as u64) * self.config.line_bytes;
                    self.next.access(AccessRequest::write(victim_addr));
                }
                self.lines[set][way] = L2Line::default();
            }
        }
        self.next.flush();
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.next.reset_stats();
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        let mut chain = vec![("l2", self.stats)];
        chain.extend(self.next.chain_stats());
        chain
    }
}

/// MESI state of one line in a private L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LineState {
    #[default]
    Invalid,
    Shared,
    Exclusive,
    Modified,
}

#[derive(Debug, Clone, Copy, Default)]
struct CohLine {
    state: LineState,
    tag: u64,
    lru: u64,
}

/// A private L2 per core over one shared [`MainMemory`] — the
/// `PrivateL2 { .. }` side of the multi-core
/// [`Topology`](crate::config::Topology).
///
/// Every core owns an L2 of the same [`L2Config`] geometry; requests
/// enter through [`access_from`](PrivateL2s::access_from) with the
/// issuing core's index. With a [`Mesi`](crate::config::Mesi) policy
/// installed, a directory distributed across the per-core tag arrays
/// keeps the L2s coherent: a write invalidates every peer copy
/// (counted in [`CacheStats::invalidations`]), and a miss whose line a
/// peer holds is supplied cache-to-cache (counted in
/// [`CacheStats::interventions`], at `hit_latency +
/// intervention_latency` instead of the memory round trip; a modified
/// owner first writes the line back). Without a policy the private
/// L2s are incoherent: no probing, every miss fills from memory.
///
/// Like [`L2Cache`], this is a timing/energy model over tags and LRU
/// only — the bit-accurate storage stays in the L1 ways. Counters are
/// aggregated across all cores into one [`CacheStats`] (the multi-core
/// report's `l2` entry), with memory keeping its own.
#[derive(Debug)]
pub struct PrivateL2s {
    config: L2Config,
    coherence: Option<crate::config::Mesi>,
    /// Per core: `sets * ways` line metadata, flattened
    /// (`set * ways + way`).
    lines: Vec<Vec<CohLine>>,
    lru_clock: u64,
    stats: CacheStats,
    memory: MainMemory,
}

impl PrivateL2s {
    /// Builds one empty private L2 per core over `memory`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`L2Config::validate`]) or `cores` is zero; the fallible path
    /// is [`SystemBuilder::build_multi`](crate::engine::SystemBuilder::build_multi).
    pub fn new(
        config: L2Config,
        cores: usize,
        coherence: Option<crate::config::Mesi>,
        memory: MainMemory,
    ) -> Self {
        if let Err(e) = config.validate() {
            // hyvec-lint: allow(no-panic, "documented panicking constructor; SystemBuilder::build_multi validates on the fallible path")
            panic!("invalid private L2 config: {e}");
        }
        // hyvec-lint: allow(no-panic, "documented panicking constructor; SystemBuilder::build_multi rejects zero cores on the fallible path")
        assert!(cores > 0, "private L2 topology needs at least one core");
        let per_core = (config.sets() as usize) * config.ways;
        PrivateL2s {
            config,
            coherence,
            lines: vec![vec![CohLine::default(); per_core]; cores],
            lru_clock: 0,
            stats: CacheStats::default(),
            memory,
        }
    }

    /// The per-core L2 geometry.
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    /// The coherence policy, if any.
    pub fn coherence(&self) -> Option<crate::config::Mesi> {
        self.coherence
    }

    /// Number of private L2s (cores).
    pub fn cores(&self) -> usize {
        self.lines.len()
    }

    /// Aggregate counters across all private L2s.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, addr: u64) -> (u64, u64) {
        let line_addr = addr / self.config.line_bytes;
        (
            line_addr % self.config.sets(),
            line_addr / self.config.sets(),
        )
    }

    fn line_addr(&self, set: u64, tag: u64) -> u64 {
        (tag * self.config.sets() + set) * self.config.line_bytes
    }

    /// Index of `tag` in `core`'s set, if that core holds the line.
    fn holder_way(&self, core: usize, base: usize, tag: u64) -> Option<usize> {
        (0..self.config.ways).find(|&w| {
            let line = self.lines[core][base + w];
            line.state != LineState::Invalid && line.tag == tag
        })
    }

    /// One request from `core`'s L1s into its private L2.
    pub fn access_from(&mut self, core: usize, req: AccessRequest) -> AccessOutcome {
        let (set, tag) = self.index(req.addr);
        let base = set as usize * self.config.ways;
        self.lru_clock += 1;
        self.stats.accesses += 1;
        if req.is_write {
            self.stats.writes += 1;
        }

        if let Some(way) = self.holder_way(core, base, tag) {
            self.stats.hits += 1;
            if req.is_write && self.lines[core][base + way].state != LineState::Modified {
                // Write upgrade: peers' copies die before we own it.
                if self.coherence.is_some() {
                    self.invalidate_peers(core, set, tag);
                }
                self.lines[core][base + way].state = LineState::Modified;
            }
            self.lines[core][base + way].lru = self.lru_clock;
            let energy = if req.is_write {
                self.config.write_energy_pj
            } else {
                self.config.read_energy_pj
            };
            return AccessOutcome {
                latency_cycles: self.config.hit_latency,
                energy_pj: energy,
                corrected: 0,
                detected: 0,
                depth: HitDepth::L2,
            };
        }

        // Miss in the own L2: evict, then either a peer supplies the
        // line (coherent topologies) or memory does.
        self.stats.misses += 1;
        let victim = (0..self.config.ways)
            .min_by_key(|&w| {
                let line = self.lines[core][base + w];
                (line.state != LineState::Invalid, line.lru)
            })
            // hyvec-lint: allow(no-panic, "L2Config::validate rejects ways == 0, so the range is never empty")
            .expect("private L2 has at least one way");
        let mut energy = self.config.read_energy_pj + self.config.write_energy_pj;
        let victim_line = self.lines[core][base + victim];
        if victim_line.state == LineState::Modified {
            self.stats.writebacks += 1;
            let addr = self.line_addr(set, victim_line.tag);
            energy += self.memory.access(AccessRequest::write(addr)).energy_pj;
        }

        let supplied = match self.coherence {
            Some(_) => self.probe_peers(core, set, tag, req.is_write),
            None => None,
        };
        let (latency, depth, install) = match supplied {
            Some(supply_energy) => {
                energy += supply_energy;
                let mesi = self.coherence.unwrap_or_default();
                let state = if req.is_write {
                    LineState::Modified
                } else {
                    LineState::Shared
                };
                (
                    self.config.hit_latency + mesi.intervention_latency,
                    HitDepth::L2,
                    state,
                )
            }
            None => {
                let below = self.memory.access(AccessRequest::read(req.addr));
                energy += below.energy_pj;
                let state = if req.is_write {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                (
                    self.config.hit_latency + below.latency_cycles,
                    below.depth,
                    state,
                )
            }
        };
        self.lines[core][base + victim] = CohLine {
            state: install,
            tag,
            lru: self.lru_clock,
        };
        self.stats.fills += 1;

        AccessOutcome {
            latency_cycles: latency,
            energy_pj: energy,
            corrected: 0,
            detected: 0,
            depth,
        }
    }

    /// Invalidates every peer copy of `(set, tag)` (a write upgrade or
    /// write-miss broadcast), counting one invalidation per victim.
    fn invalidate_peers(&mut self, core: usize, set: u64, tag: u64) {
        let base = set as usize * self.config.ways;
        for peer in 0..self.lines.len() {
            if peer == core {
                continue;
            }
            if let Some(way) = self.holder_way(peer, base, tag) {
                self.lines[peer][base + way].state = LineState::Invalid;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Probes the peers for `(set, tag)` on a coherent miss from
    /// `core`. Returns the supply energy if some peer intervened
    /// (counting the intervention, demoting or invalidating holders,
    /// and writing back a modified owner on reads); `None` sends the
    /// request to memory.
    fn probe_peers(&mut self, core: usize, set: u64, tag: u64, is_write: bool) -> Option<f64> {
        let base = set as usize * self.config.ways;
        let mut supplied = false;
        let mut energy = 0.0;
        for peer in 0..self.lines.len() {
            if peer == core {
                continue;
            }
            let Some(way) = self.holder_way(peer, base, tag) else {
                continue;
            };
            if !supplied {
                // First holder in core order supplies the line.
                self.stats.interventions += 1;
                energy += self.config.read_energy_pj;
                supplied = true;
            }
            let line = &mut self.lines[peer][base + way];
            if is_write {
                line.state = LineState::Invalid;
                self.stats.invalidations += 1;
            } else if line.state == LineState::Modified {
                // Sharing a dirty line: the owner writes it back and
                // keeps a clean copy.
                line.state = LineState::Shared;
                self.stats.writebacks += 1;
                let addr = self.line_addr(set, tag);
                energy += self.memory.access(AccessRequest::write(addr)).energy_pj;
            } else {
                line.state = LineState::Shared;
            }
        }
        supplied.then_some(energy)
    }
}

impl MemoryLevel for PrivateL2s {
    /// Routed through core 0 — present so a `PrivateL2s` can stand in
    /// any `MemoryLevel` slot; the multi-core engine always calls
    /// [`access_from`](PrivateL2s::access_from) with the real core.
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        self.access_from(0, req)
    }

    fn flush(&mut self) {
        // Dirty lines leave through the writeback path, like L2Cache.
        for core in 0..self.lines.len() {
            for idx in 0..self.lines[core].len() {
                let line = self.lines[core][idx];
                if line.state == LineState::Modified {
                    self.stats.writebacks += 1;
                    let set = (idx / self.config.ways) as u64;
                    let addr = self.line_addr(set, line.tag);
                    self.memory.access(AccessRequest::write(addr));
                }
                self.lines[core][idx] = CohLine::default();
            }
        }
        MemoryLevel::flush(&mut self.memory);
    }

    fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        MemoryLevel::reset_stats(&mut self.memory);
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        let mut chain = vec![("l2", self.stats)];
        chain.extend(self.memory.chain_stats());
        chain
    }
}

/// The stock flat chain: the L1s miss straight into [`MainMemory`].
///
/// One of the two concrete driver shapes
/// [`SystemBuilder::build`](crate::engine::SystemBuilder::build)
/// selects; the engine's run loop monomorphizes over it, so every
/// miss descends with static calls (no `dyn` dispatch on the hot
/// path).
pub type L1OverMemory = MainMemory;

/// The stock two-level chain: the L1s miss into a unified
/// [`L2Cache`] backed directly by [`MainMemory`].
///
/// The other concrete driver shape selected by
/// [`SystemBuilder::build`](crate::engine::SystemBuilder::build);
/// fully monomorphized, so an L1 miss walks L2 tags and falls through
/// to memory with static calls.
pub type L1OverL2 = L2Cache<MainMemory>;

/// The memory hierarchy below the L1s, as the engine stores it: one
/// of the two monomorphized stock shapes, or a custom boxed chain.
///
/// [`SystemBuilder::build`](crate::engine::SystemBuilder::build)
/// always selects a stock variant;
/// [`System::set_hierarchy`](crate::engine::System::set_hierarchy)
/// installs [`Hierarchy::Custom`]. The engine matches on the variant
/// **once per run**, outside the instruction loop, so the loop body is
/// compiled separately for each shape and custom chains pay the
/// virtual call they always did.
#[derive(Debug)]
pub enum Hierarchy {
    /// The flat stock shape ([`L1OverMemory`]).
    Memory(L1OverMemory),
    /// The two-level stock shape ([`L1OverL2`]).
    L2(L1OverL2),
    /// A user-supplied chain, driven through `dyn MemoryLevel`.
    Custom(Box<dyn MemoryLevel>),
}

impl Hierarchy {
    /// The chain as a trait object (for inspection; the run loop uses
    /// the matched concrete variants instead).
    pub fn as_dyn(&self) -> &dyn MemoryLevel {
        match self {
            Hierarchy::Memory(m) => m,
            Hierarchy::L2(l2) => l2,
            Hierarchy::Custom(b) => b.as_ref(),
        }
    }
}

impl MemoryLevel for Hierarchy {
    fn access(&mut self, req: AccessRequest) -> AccessOutcome {
        match self {
            Hierarchy::Memory(m) => m.access(req),
            Hierarchy::L2(l2) => l2.access(req),
            Hierarchy::Custom(b) => b.access(req),
        }
    }

    fn flush(&mut self) {
        match self {
            Hierarchy::Memory(m) => MemoryLevel::flush(m),
            Hierarchy::L2(l2) => MemoryLevel::flush(l2),
            Hierarchy::Custom(b) => b.flush(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            Hierarchy::Memory(m) => MemoryLevel::reset_stats(m),
            Hierarchy::L2(l2) => MemoryLevel::reset_stats(l2),
            Hierarchy::Custom(b) => b.reset_stats(),
        }
    }

    fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        self.as_dyn().chain_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory(latency: u32) -> Box<dyn MemoryLevel> {
        Box::new(MainMemory::new(MemoryConfig::with_latency(latency)))
    }

    fn small_l2(hit_latency: u32) -> L2Cache {
        // 1KB, 2-way, 32B lines: 16 sets.
        let config = L2Config {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_latency,
            read_energy_pj: 2.0,
            write_energy_pj: 3.0,
        };
        L2Cache::new(config, memory(20))
    }

    #[test]
    fn main_memory_always_hits_at_its_latency() {
        let mut mem = MainMemory::new(MemoryConfig {
            latency: 35,
            access_energy_pj: 1.5,
        });
        let out = mem.access(AccessRequest::read(0x40));
        assert_eq!(out.latency_cycles, 35);
        assert_eq!(out.energy_pj, 1.5);
        assert_eq!(out.depth, HitDepth::Memory);
        mem.access(AccessRequest::write(0x80));
        let stats = mem.chain_stats()[0].1;
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.writes, 1);
        mem.reset_stats();
        assert_eq!(mem.chain_stats()[0].1.accesses, 0);
    }

    #[test]
    fn l2_miss_then_hit_composes_latency() {
        let mut l2 = small_l2(5);
        let miss = l2.access(AccessRequest::read(0x1000));
        assert_eq!(miss.latency_cycles, 25, "lookup + memory");
        assert_eq!(miss.depth, HitDepth::Memory);
        let hit = l2.access(AccessRequest::read(0x1004));
        assert_eq!(hit.latency_cycles, 5, "same line hits at L2");
        assert_eq!(hit.depth, HitDepth::L2);
        assert_eq!(l2.stats().accesses, 2);
        assert_eq!(l2.stats().misses, 1);
        assert_eq!(l2.stats().hits, 1);
        assert_eq!(l2.chain_stats()[1].1.accesses, 1, "one memory fetch");
    }

    #[test]
    fn l2_write_allocates_and_writes_back() {
        let mut l2 = small_l2(4);
        let sets = l2.config().sets();
        let line = l2.config().line_bytes;
        // Store misses allocate (write-allocate).
        l2.access(AccessRequest::write(0));
        assert_eq!(l2.stats().fills, 1);
        assert!(l2.access(AccessRequest::read(4)).depth == HitDepth::L2);
        // Two more conflicting lines evict the dirty one -> writeback.
        l2.access(AccessRequest::read(sets * line));
        l2.access(AccessRequest::read(2 * sets * line));
        assert_eq!(l2.stats().writebacks, 1);
        // The writeback reached memory as a write.
        let mem = l2.chain_stats()[1].1;
        assert_eq!(mem.writes, 1);
    }

    #[test]
    fn l2_lru_keeps_the_recently_touched_line() {
        let mut l2 = small_l2(4);
        let sets = l2.config().sets();
        let line = l2.config().line_bytes;
        l2.access(AccessRequest::read(0));
        l2.access(AccessRequest::read(sets * line));
        l2.access(AccessRequest::read(0)); // refresh
        l2.access(AccessRequest::read(2 * sets * line)); // evicts the other
        assert_eq!(l2.access(AccessRequest::read(0)).depth, HitDepth::L2);
        assert_eq!(
            l2.access(AccessRequest::read(sets * line)).depth,
            HitDepth::Memory
        );
    }

    #[test]
    fn l2_flush_invalidates_and_counts_dirty_lines() {
        let mut l2 = small_l2(4);
        l2.access(AccessRequest::write(0));
        l2.flush();
        assert_eq!(l2.stats().writebacks, 1);
        assert_eq!(l2.access(AccessRequest::read(0)).depth, HitDepth::Memory);
    }

    #[test]
    fn flush_charges_writeback_traffic_like_a_demand_eviction() {
        // A dirty line leaving via flush must hit the level below
        // exactly like the same line leaving via demand eviction.
        let sets = small_l2(4).config().sets();
        let line = small_l2(4).config().line_bytes;

        // Path 1: dirty line evicted by two conflicting fills.
        let mut demand = small_l2(4);
        demand.access(AccessRequest::write(0));
        demand.access(AccessRequest::read(sets * line));
        demand.access(AccessRequest::read(2 * sets * line));
        let demand_mem = demand.chain_stats()[1].1;

        // Path 2: the same dirty line flushed out.
        let mut flushed = small_l2(4);
        flushed.access(AccessRequest::write(0));
        flushed.flush();
        let flushed_mem = flushed.chain_stats()[1].1;

        assert_eq!(demand.stats().writebacks, 1);
        assert_eq!(flushed.stats().writebacks, 1);
        // Both paths delivered exactly one write to memory...
        assert_eq!(demand_mem.writes, 1);
        assert_eq!(
            flushed_mem.writes, demand_mem.writes,
            "flush writebacks must reach the level below"
        );
        // ...and the flush path performed no other memory traffic
        // beyond the original demand fill.
        assert_eq!(flushed_mem.accesses, 2, "one fill + one flush writeback");
    }

    #[test]
    fn l2_energy_composes_down_the_chain() {
        let config = L2Config {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_latency: 4,
            read_energy_pj: 2.0,
            write_energy_pj: 3.0,
        };
        let mut l2 = L2Cache::new(
            config,
            Box::new(MainMemory::new(MemoryConfig {
                latency: 20,
                access_energy_pj: 10.0,
            })),
        );
        // Miss: lookup (read) + fill (write) + memory fetch.
        let miss = l2.access(AccessRequest::read(0));
        assert!((miss.energy_pj - (2.0 + 3.0 + 10.0)).abs() < 1e-12);
        // Hit: one lookup.
        let hit = l2.access(AccessRequest::read(4));
        assert!((hit.energy_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid L2 config")]
    fn invalid_l2_geometry_panics() {
        let mut config = L2Config::unified(32);
        config.ways = 0;
        L2Cache::new(config, memory(20));
    }

    fn private_l2s(cores: usize, coherence: Option<crate::config::Mesi>) -> PrivateL2s {
        let config = L2Config {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_latency: 4,
            read_energy_pj: 2.0,
            write_energy_pj: 3.0,
        };
        PrivateL2s::new(
            config,
            cores,
            coherence,
            MainMemory::new(MemoryConfig::with_latency(20)),
        )
    }

    #[test]
    fn incoherent_private_l2s_never_probe() {
        let mut p = private_l2s(2, None);
        assert_eq!(
            p.access_from(0, AccessRequest::read(0x100)).depth,
            HitDepth::Memory
        );
        // Core 1 misses the same line: no peer supply without MESI.
        assert_eq!(
            p.access_from(1, AccessRequest::read(0x100)).depth,
            HitDepth::Memory
        );
        assert_eq!(p.stats().interventions, 0);
        assert_eq!(p.stats().invalidations, 0);
        assert_eq!(p.chain_stats()[1].1.accesses, 2, "both misses hit memory");
        // Each core hits privately afterwards.
        assert_eq!(
            p.access_from(0, AccessRequest::read(0x104)).depth,
            HitDepth::L2
        );
        assert_eq!(
            p.access_from(1, AccessRequest::read(0x104)).depth,
            HitDepth::L2
        );
    }

    #[test]
    fn mesi_read_sharing_supplies_cache_to_cache() {
        let mesi = crate::config::Mesi {
            intervention_latency: 9,
        };
        let mut p = private_l2s(2, Some(mesi));
        let fill = p.access_from(0, AccessRequest::read(0x200));
        assert_eq!(fill.depth, HitDepth::Memory);
        // Core 1's miss is supplied by core 0 at hit + intervention
        // latency, never touching memory.
        let supplied = p.access_from(1, AccessRequest::read(0x200));
        assert_eq!(supplied.depth, HitDepth::L2);
        assert_eq!(supplied.latency_cycles, 4 + 9);
        assert_eq!(p.stats().interventions, 1);
        assert_eq!(p.chain_stats()[1].1.accesses, 1, "one memory fill only");
    }

    #[test]
    fn mesi_write_invalidates_peer_copies() {
        let mut p = private_l2s(3, Some(crate::config::Mesi::default()));
        p.access_from(0, AccessRequest::read(0x300));
        p.access_from(1, AccessRequest::read(0x300));
        // Core 2's write miss pulls the line in M and kills both
        // copies (one intervention, two invalidations).
        p.access_from(2, AccessRequest::write(0x300));
        assert_eq!(p.stats().invalidations, 2);
        // The former holders must miss now.
        assert_eq!(
            p.access_from(0, AccessRequest::read(0x300)).depth,
            HitDepth::L2
        );
        assert_eq!(
            p.stats().interventions,
            3,
            "fill for core 1, write-miss broadcast, re-read from the new owner"
        );
    }

    #[test]
    fn mesi_dirty_owner_writes_back_when_sharing() {
        let mut p = private_l2s(2, Some(crate::config::Mesi::default()));
        p.access_from(0, AccessRequest::write(0x400));
        let memory_writes_before = p.chain_stats()[1].1.writes;
        // Core 1 reads the dirty line: the owner supplies it, writes
        // it back, and both end up Shared.
        let out = p.access_from(1, AccessRequest::read(0x400));
        assert_eq!(out.depth, HitDepth::L2);
        assert_eq!(p.stats().writebacks, 1);
        assert_eq!(p.chain_stats()[1].1.writes, memory_writes_before + 1);
        // A later write hit on the Shared copy upgrades and
        // invalidates the peer.
        p.access_from(1, AccessRequest::write(0x400));
        assert_eq!(p.stats().invalidations, 1);
    }

    #[test]
    fn private_l2_flush_writes_dirty_lines_back() {
        let mut p = private_l2s(2, Some(crate::config::Mesi::default()));
        p.access_from(0, AccessRequest::write(0x500));
        p.access_from(1, AccessRequest::write(0x540));
        MemoryLevel::flush(&mut p);
        assert_eq!(p.stats().writebacks, 2);
        assert_eq!(
            p.access_from(0, AccessRequest::read(0x500)).depth,
            HitDepth::Memory
        );
    }

    #[test]
    fn hybrid_cache_acts_as_a_level() {
        use crate::config::{Mode, SystemConfig};
        let mut l1 = HybridCache::new(SystemConfig::uniform_6t().il1, Mode::Hp);
        let miss = MemoryLevel::access(&mut l1, AccessRequest::read(0x100));
        assert_eq!(miss.depth, HitDepth::Memory);
        let hit = MemoryLevel::access(&mut l1, AccessRequest::read(0x104));
        assert_eq!(hit.depth, HitDepth::L1);
        assert_eq!(hit.latency_cycles, 0, "L1 hits are latency-free");
        let chain = l1.chain_stats();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].0, "l1");
        assert_eq!(chain[0].1.accesses, 2);
        MemoryLevel::flush(&mut l1);
        assert_eq!(
            MemoryLevel::access(&mut l1, AccessRequest::read(0x104)).depth,
            HitDepth::Memory,
            "flush invalidates"
        );
    }
}
