//! # hyvec-cachesim — hybrid-voltage cache and processor simulator
//!
//! The MPSim/Wattch stand-in of the reproduction: a trace-driven
//! simulator of the paper's evaluation platform — a simple single-core
//! in-order processor with split 8KB L1 caches whose ways are built
//! from heterogeneous bitcells and per-mode EDC protection.
//!
//! Components:
//!
//! * [`config`] — way/cache/system configuration types (cell type,
//!   per-mode protection, ULE-way gating);
//! * [`cache`] — a bit-accurate functional set-associative cache:
//!   words are stored as real EDC codewords, hard faults are stuck-at
//!   bits applied on every read, soft errors can be injected, and the
//!   decode path counts corrections, detections and silent
//!   corruptions;
//! * [`faults`] — Monte-Carlo fault-map sampling from a bit-failure
//!   probability;
//! * [`hierarchy`] — the composable memory hierarchy below the L1s:
//!   the [`hierarchy::MemoryLevel`] trait, a write-allocate unified
//!   [`hierarchy::L2Cache`], and the terminal
//!   [`hierarchy::MainMemory`] model;
//! * [`engine`] — the in-order core timing model (1 IPC base, miss
//!   stalls, EDC fill latency) driving both L1s from any
//!   [`hyvec_mediabench::TraceSource`], with the fluent
//!   [`engine::SystemBuilder`] assembling the machine;
//! * [`multicore`] — the multi-core shape on top of the same pieces:
//!   N private split-L1 front ends in a canonical round-robin
//!   interleaving over a shared L2/memory chain or per-core private
//!   L2s (optionally MESI-coherent), simulated epoch-parallel on
//!   worker threads with a deterministic merge
//!   ([`SystemBuilder::build_multi`](engine::SystemBuilder::build_multi));
//! * [`power`] — Wattch-style event-based energy accounting on top of
//!   the [`hyvec_cachemodel`] arrays, producing the EPI breakdowns of
//!   the paper's Figures 3 and 4.
//!
//! # Example
//!
//! ```
//! use hyvec_cachesim::config::{Mode, SystemConfig};
//! use hyvec_cachesim::engine::System;
//! use hyvec_mediabench::Benchmark;
//!
//! // An all-6T baseline-style cache running a small workload at HP.
//! let config = SystemConfig::uniform_6t();
//! let mut system = System::new(config);
//! let report = system.run(Benchmark::AdpcmC.trace(20_000, 1), Mode::Hp);
//! assert_eq!(report.stats.instructions, 20_000);
//! assert!(report.energy.total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod faults;
pub mod hierarchy;
pub mod multicore;
pub mod power;
pub mod stats;

pub use cache::HybridCache;
pub use config::{
    CacheConfig, ConfigError, L2Config, MemoryConfig, Mesi, Mode, SystemConfig, Topology, WaySpec,
};
pub use engine::{RunReport, System, SystemBuilder};
pub use hierarchy::{
    AccessRequest, Hierarchy, HitDepth, L1OverL2, L1OverMemory, L2Cache, MainMemory, MemoryLevel,
    PrivateL2s,
};
pub use multicore::{
    global_sim_threads, set_global_sim_threads, MultiCoreReport, MultiCoreSystem,
    EPOCH_INSTRUCTIONS,
};
pub use power::EnergyBreakdown;
pub use stats::{CacheStats, RunStats};
