//! Monte-Carlo sampling of hard-fault maps.
//!
//! Hard faults are variation-induced cell failures *at the ULE
//! voltage*: a cell that cannot hold/read its value at 350mV works
//! fine at 1V (which is why the fault budget only matters for the ULE
//! ways — the HP ways are gated off at ULE anyway). A fault map is
//! sampled per manufactured die: each bit of each ULE-way word is
//! faulty independently with the cell's failure probability `Pf`, and
//! a faulty bit is stuck at a random value.

use crate::cache::{HybridCache, StuckBits, WordSlot};
use crate::config::WaySpec;
use hyvec_sram::FailureModel;
use rand::Rng;

/// Per-bit hard-failure probability of `spec`'s cell at `vdd`, from
/// the failure model.
pub fn pf_for_way(model: &FailureModel, spec: &WaySpec, vdd: f64) -> f64 {
    model.pf(&spec.cell, vdd)
}

/// Samples a stuck-at fault map for the ULE-enabled ways of `cache`,
/// with per-way bit-failure probabilities `pf_by_way` (indexed like
/// the config's way list). Returns the number of faulty bits
/// installed.
///
/// # Panics
///
/// Panics if `pf_by_way.len()` differs from the way count or any
/// probability is outside `[0, 1]`.
pub fn sample_faults<R: Rng>(cache: &mut HybridCache, pf_by_way: &[f64], rng: &mut R) -> u64 {
    let config = cache.config().clone();
    // hyvec-lint: allow(no-panic, "documented precondition (# Panics): one probability per way")
    assert_eq!(
        pf_by_way.len(),
        config.ways.len(),
        "one pf per way required"
    );
    let words_per_line = config.words_per_line();
    let mut injected = 0u64;
    for (w, (spec, &pf)) in config.ways.iter().zip(pf_by_way).enumerate() {
        // hyvec-lint: allow(no-panic, "documented precondition (# Panics): probabilities live in [0, 1]")
        assert!((0.0..=1.0).contains(&pf), "pf out of range: {pf}");
        if !spec.ule_enabled || pf == 0.0 {
            continue;
        }
        let data_bits = config.word_bits as usize + spec.stored_check_bits();
        let tag_bits = config.tag_bits as usize + spec.stored_check_bits();
        for set in 0..config.sets() {
            for slot in 0..=words_per_line {
                let bits = if slot == words_per_line {
                    tag_bits
                } else {
                    data_bits
                };
                let mut mask = 0u64;
                for b in 0..bits {
                    if rng.gen::<f64>() < pf {
                        mask |= 1u64 << b;
                    }
                }
                if mask != 0 {
                    injected += u64::from(mask.count_ones());
                    let value = rng.gen::<u64>() & mask;
                    cache.set_stuck_bits(WordSlot { way: w, set, slot }, StuckBits { mask, value });
                }
            }
        }
    }
    injected
}

/// Expected number of faulty bits for a way geometry and failure
/// probability (for sanity checks and tests).
pub fn expected_faulty_bits(
    sets: u64,
    words_per_line: u64,
    word_bits: u64,
    tag_bits: u64,
    check_bits: u64,
    pf: f64,
) -> f64 {
    let bits = sets * (words_per_line * (word_bits + check_bits) + tag_bits + check_bits);
    bits as f64 * pf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, Mode, WaySpec};
    use hyvec_edc::Protection;
    use hyvec_sram::CellKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cache_8t_secded() -> HybridCache {
        let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
        ways.push(WaySpec::ule_way(
            CellKind::Sram8T,
            1.8,
            Protection::None,
            Protection::Secded,
        ));
        HybridCache::new(CacheConfig::l1_8kb(ways), Mode::Ule)
    }

    #[test]
    fn zero_pf_injects_nothing() {
        let mut c = cache_8t_secded();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = sample_faults(&mut c, &[0.0; 8], &mut rng);
        assert_eq!(n, 0);
        assert_eq!(c.fault_bit_count(), 0);
    }

    #[test]
    fn injection_count_tracks_probability() {
        let mut c = cache_8t_secded();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut pf = [0.0f64; 8];
        pf[7] = 0.01;
        let n = sample_faults(&mut c, &pf, &mut rng);
        // ULE way: 32 sets x (8 words x 39 bits + 33 tag bits) = 11040
        // bits; expect ~110 faults.
        let expect = expected_faulty_bits(32, 8, 32, 26, 7, 0.01);
        assert!((expect - 110.4).abs() < 0.1);
        assert!(
            (n as f64) > expect * 0.6 && (n as f64) < expect * 1.4,
            "injected {n}, expected ~{expect}"
        );
        assert_eq!(c.fault_bit_count(), n);
    }

    #[test]
    fn hp_ways_never_receive_faults() {
        let mut c = cache_8t_secded();
        let mut rng = SmallRng::seed_from_u64(3);
        // Even with pf=1 on HP ways, nothing is injected there.
        let mut pf = [0.5f64; 8];
        pf[7] = 0.0;
        let n = sample_faults(&mut c, &pf, &mut rng);
        assert_eq!(n, 0, "HP ways are gated at ULE; no faults modeled");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut pf = [0.0f64; 8];
        pf[7] = 0.005;
        let run = |seed| {
            let mut c = cache_8t_secded();
            let mut rng = SmallRng::seed_from_u64(seed);
            sample_faults(&mut c, &pf, &mut rng)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn pf_for_way_uses_cell_and_voltage() {
        let model = FailureModel::default();
        let ule8 = WaySpec::ule_way(CellKind::Sram8T, 1.0, Protection::None, Protection::Secded);
        let high = pf_for_way(&model, &ule8, 1.0);
        let low = pf_for_way(&model, &ule8, 0.35);
        assert!(low > high * 1e6, "NST must be far riskier");
    }

    #[test]
    #[should_panic(expected = "one pf per way")]
    fn wrong_length_rejected() {
        let mut c = cache_8t_secded();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = sample_faults(&mut c, &[0.0; 3], &mut rng);
    }
}
