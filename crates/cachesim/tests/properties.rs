//! Property-based tests of the functional cache: invariants that must
//! hold for arbitrary access sequences, fault patterns and geometries.

use hyvec_cachesim::cache::{HybridCache, StuckBits, WordSlot};
use hyvec_cachesim::config::{CacheConfig, Mode, SystemConfig, WaySpec};
use hyvec_edc::Protection;
use hyvec_sram::CellKind;
use proptest::prelude::*;

fn proposal_a_cache(mode: Mode) -> HybridCache {
    let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
    ways.push(WaySpec::ule_way(
        CellKind::Sram8T,
        1.75,
        Protection::None,
        Protection::Secded,
    ));
    HybridCache::new(CacheConfig::l1_8kb(ways), mode)
}

proptest! {
    /// A fault-free cache never corrupts, never detects, and its
    /// hit/miss counters always reconcile.
    #[test]
    fn clean_cache_is_always_correct(
        addrs in prop::collection::vec(0u64..0x40000, 1..400),
        writes in prop::collection::vec(any::<bool>(), 400),
    ) {
        for mode in [Mode::Hp, Mode::Ule] {
            let mut cache = proposal_a_cache(mode);
            for (i, &addr) in addrs.iter().enumerate() {
                let out = cache.access(addr & !3, writes[i % writes.len()]);
                prop_assert_eq!(out.silent, 0);
                prop_assert_eq!(out.detected, 0);
                prop_assert_eq!(out.corrected, 0);
            }
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert_eq!(s.fills, s.misses);
        }
    }

    /// Accessing the same address twice in a row always hits the
    /// second time (no pathological self-eviction).
    #[test]
    fn immediate_reaccess_hits(addr in 0u64..0x100000, mode_sel: bool) {
        let mode = if mode_sel { Mode::Hp } else { Mode::Ule };
        let mut cache = proposal_a_cache(mode);
        cache.access(addr, false);
        prop_assert!(cache.access(addr, false).hit);
    }

    /// With any single stuck bit in an SECDED-protected ULE-way data
    /// word, reads either hit-and-correct or miss — but never deliver
    /// wrong data.
    #[test]
    fn single_stuck_bit_never_corrupts_under_secded(
        set in 0u64..32,
        slot in 0u64..8,
        bit in 0u32..39,
        addrs in prop::collection::vec(0u64..0x8000, 1..200),
    ) {
        let mut cache = proposal_a_cache(Mode::Ule);
        cache.set_stuck_bits(
            WordSlot { way: 7, set, slot },
            StuckBits { mask: 1u64 << bit, value: 0 },
        );
        for &addr in &addrs {
            let out = cache.access(addr & !3, false);
            prop_assert_eq!(out.silent, 0, "addr {:#x}", addr);
            prop_assert_eq!(out.detected, 0, "single faults are correctable");
        }
    }

    /// Working sets of at most 8 lines per set always fit at HP mode
    /// (8-way associativity): after a warmup pass, everything hits.
    #[test]
    fn eight_way_associativity_holds(lines in prop::collection::hash_set(0u64..8u64, 1..=8)) {
        let mut cache = proposal_a_cache(Mode::Hp);
        let sets = cache.config().sets();
        let line_bytes = cache.config().line_bytes;
        let addrs: Vec<u64> = lines.iter().map(|l| l * sets * line_bytes).collect();
        for &a in &addrs {
            cache.access(a, false);
        }
        for &a in &addrs {
            prop_assert!(cache.access(a, false).hit, "line {:#x} evicted", a);
        }
    }

    /// Mode switches never panic and always leave a consistent cache:
    /// post-switch accesses are misses (flush) and the enabled-way
    /// count matches the mode.
    #[test]
    fn mode_switching_is_safe(switches in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut cache = proposal_a_cache(Mode::Hp);
        cache.access(0x1000, true);
        for &to_ule in &switches {
            let mode = if to_ule { Mode::Ule } else { Mode::Hp };
            cache.set_mode(mode);
            prop_assert_eq!(cache.enabled_ways(), if to_ule { 1 } else { 8 });
            prop_assert!(!cache.access(0x1000, false).hit, "flush must invalidate");
            cache.access(0x1000, true);
        }
    }

    /// The uniform-6T config accepts arbitrary interleavings of reads
    /// and writes without ever reporting EDC activity (it has no EDC).
    #[test]
    fn no_edc_no_events(ops in prop::collection::vec((0u64..0x10000, any::<bool>()), 1..300)) {
        let mut cache = HybridCache::new(SystemConfig::uniform_6t().dl1, Mode::Hp);
        for &(addr, w) in &ops {
            let out = cache.access(addr & !3, w);
            prop_assert_eq!(out.corrected, 0);
            prop_assert_eq!(out.detected, 0);
        }
        prop_assert_eq!(cache.stats().corrected, 0);
    }
}
