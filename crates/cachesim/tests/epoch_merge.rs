//! Epoch-merge determinism properties: the epoch-parallel multi-core
//! engine must be **bit-identical** to the retained serial reference
//! loop — same per-core counters, same chain counters, same energy —
//! for every core count, worker-thread count, topology, and SEU
//! setting, including cores that drain mid-epoch.
//!
//! This is the contract that makes `--sim-threads` a pure wall-time
//! knob: `hyvec run-all` output stays byte-identical at any value
//! (the render-format byte-identity itself is pinned by the
//! workspace-level determinism suite; these properties pin the
//! underlying reports).

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mesi, Mode, SystemConfig, Topology};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::MultiCoreSystem;
use hyvec_mediabench::{per_core_seed, Benchmark};
use proptest::prelude::*;

fn build(cores: usize, topology: Topology, seu: bool) -> MultiCoreSystem {
    let l1s = SystemConfig::uniform_6t();
    let mut builder = System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .l2(L2Config::unified(16))
        .memory(MemoryConfig::with_latency(40))
        .topology(topology);
    if seu {
        builder = builder.seu(5e-8, 17);
    }
    builder.build_multi(cores).expect("valid configuration")
}

/// Per-core traces of deliberately unequal lengths (so cores drain in
/// different epochs and the round-robin drop-out order is exercised),
/// over a shared address space to keep private-L2 coherence busy.
fn sources(cores: usize, base_len: usize, seed: u64) -> Vec<impl hyvec_mediabench::TraceSource> {
    (0..cores)
        .map(|core| {
            let len = base_len + 97 * core + (seed as usize % 63);
            Benchmark::BIG[core % Benchmark::BIG.len()].trace(len as u64, per_core_seed(seed, core))
        })
        .collect()
}

proptest! {
    /// Counters are invariant across `--sim-threads` on the shared-L2
    /// topology, fault-free and with accelerated soft errors active.
    #[test]
    fn threaded_merge_matches_serial_shared_l2(
        cores_sel in prop::sample::select(vec![1usize, 2, 4, 8]),
        threads in prop::sample::select(vec![2usize, 8]),
        base_len in 300usize..900,
        seed in 0u64..500,
        seu: bool,
        mode_sel: bool,
    ) {
        let mode = if mode_sel { Mode::Hp } else { Mode::Ule };
        let mut serial = build(cores_sel, Topology::SharedL2, seu);
        serial.set_sim_threads(1);
        let reference = serial.run(sources(cores_sel, base_len, seed), mode);
        let mut parallel = build(cores_sel, Topology::SharedL2, seu);
        parallel.set_sim_threads(threads);
        let threaded = parallel.run(sources(cores_sel, base_len, seed), mode);
        prop_assert_eq!(
            reference, threaded,
            "sim-threads {} diverged from serial on {} cores (seu {})",
            threads, cores_sel, seu
        );
    }

    /// Same invariance over private MESI-coherent L2s: the merge also
    /// replays coherence probes in canonical order.
    #[test]
    fn threaded_merge_matches_serial_private_mesi(
        cores_sel in prop::sample::select(vec![2usize, 4, 8]),
        threads in prop::sample::select(vec![2usize, 8]),
        base_len in 300usize..900,
        seed in 0u64..500,
        coherent: bool,
    ) {
        let topology = Topology::PrivateL2 {
            coherence: coherent.then(Mesi::default),
        };
        let mut serial = build(cores_sel, topology, false);
        serial.set_sim_threads(1);
        let reference = serial.run(sources(cores_sel, base_len, seed), Mode::Hp);
        let mut parallel = build(cores_sel, topology, false);
        parallel.set_sim_threads(threads);
        let threaded = parallel.run(sources(cores_sel, base_len, seed), Mode::Hp);
        prop_assert_eq!(
            reference, threaded,
            "sim-threads {} diverged from serial on {} private L2s (coherent {})",
            threads, cores_sel, coherent
        );
    }

    /// Warm re-runs reproduce under threading too: the per-core SEU
    /// streams are re-derived from the stored seed every run, so the
    /// same system re-running the same sources gives the same report.
    #[test]
    fn warm_threaded_reruns_reproduce(
        threads in prop::sample::select(vec![2usize, 8]),
        seed in 0u64..200,
    ) {
        let mut sys = build(4, Topology::SharedL2, true);
        sys.set_sim_threads(threads);
        let first = sys.run(sources(4, 400, seed), Mode::Ule);
        let second = sys.run(sources(4, 400, seed), Mode::Ule);
        prop_assert_eq!(first, second, "warm threaded re-run diverged");
    }
}

/// A 64-core spot check at both ends of the sim-threads range — the
/// widest machine the ablation sweeps, run short to stay cheap.
#[test]
fn sixty_four_cores_stay_deterministic() {
    let sources = || sources(64, 120, 9);
    let mut serial = build(64, Topology::SharedL2, false);
    serial.set_sim_threads(1);
    let reference = serial.run(sources(), Mode::Hp);
    let mut parallel = build(64, Topology::SharedL2, false);
    parallel.set_sim_threads(8);
    let threaded = parallel.run(sources(), Mode::Hp);
    assert_eq!(reference, threaded, "64-core epoch merge diverged");
    assert_eq!(reference.per_core.len(), 64);
}

/// An SEU-active threaded run actually injects: the invariance tests
/// above would pass vacuously if the accelerated rate never fired.
#[test]
fn threaded_seu_runs_actually_inject() {
    let mut sys = build(2, Topology::SharedL2, true);
    sys.set_sim_threads(2);
    let sources = vec![
        Benchmark::AdpcmC.trace(30_000, 1),
        Benchmark::AdpcmD.trace(30_000, 2),
    ];
    let r = sys.run(sources, Mode::Ule);
    let corrupted: u64 = r
        .per_core
        .iter()
        .map(|c| c.stats.silent_corruptions())
        .sum();
    assert!(corrupted > 0, "accelerated SEUs must land under threading");
}
