//! Integration tests of the composable memory hierarchy: miss-path
//! latency composition through the `MemoryLevel` chain, and the
//! `SystemBuilder` / legacy `SystemConfig` equivalence contract.

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig, WaySpec};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::hierarchy::{AccessRequest, HitDepth, L2Cache, MainMemory, MemoryLevel};
use hyvec_edc::Protection;
use hyvec_mediabench::{Benchmark, TraceEntry};
use hyvec_sram::CellKind;

fn proposal_a() -> SystemConfig {
    let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); 7];
    ways.push(WaySpec::ule_way(
        CellKind::Sram8T,
        1.8,
        Protection::None,
        Protection::Secded,
    ));
    SystemConfig::with_ways(ways, 20)
}

fn l2_chain(hit_latency: u32, memory_latency: u32) -> L2Cache {
    L2Cache::new(
        L2Config::unified(32).with_hit_latency(hit_latency),
        Box::new(MainMemory::new(MemoryConfig::with_latency(memory_latency))),
    )
}

#[test]
fn miss_path_latency_composes_level_by_level() {
    let mut chain = l2_chain(6, 50);

    // L1 miss -> L2 miss -> memory: lookup + full memory latency.
    let cold = chain.access(AccessRequest::read(0x4000));
    assert_eq!(cold.latency_cycles, 6 + 50);
    assert_eq!(cold.depth, HitDepth::Memory);

    // L1 miss -> L2 hit: the lookup latency alone.
    let warm = chain.access(AccessRequest::read(0x4004));
    assert_eq!(warm.latency_cycles, 6);
    assert_eq!(warm.depth, HitDepth::L2);
}

#[test]
fn engine_charges_the_composed_miss_latency() {
    // One instruction whose fetch misses everywhere: the stall must be
    // exactly the L2 lookup plus the memory latency (no EDC on the
    // 6T fetch path of scenario-A HP mode).
    let cfg = SystemConfig::uniform_6t();
    let mut flat = System::builder()
        .config(cfg.clone())
        .memory(MemoryConfig::with_latency(40))
        .build()
        .expect("flat");
    let mut stacked = System::builder()
        .config(cfg)
        .memory(MemoryConfig::with_latency(40))
        .l2(L2Config::unified(32).with_hit_latency(7))
        .build()
        .expect("stacked");

    let one_fetch = vec![TraceEntry {
        pc: 0x100,
        access: None,
    }];
    let f = flat.run(one_fetch.clone().into_iter(), Mode::Hp);
    let s = stacked.run(one_fetch.into_iter(), Mode::Hp);
    assert_eq!(f.stats.il1_stall_cycles, 40);
    assert_eq!(s.stats.il1_stall_cycles, 40 + 7, "L2 lookup adds to a miss");
    assert_eq!(s.stats.l2.expect("l2 stats").misses, 1);
    assert_eq!(s.stats.memory_accesses, 1);
}

#[test]
fn no_l2_builder_reproduces_the_legacy_system_exactly() {
    // The SystemBuilder compatibility contract: with the same L1s and
    // a flat memory, the builder-made system and the historical
    // System::new(SystemConfig) produce the same RunReport bit for
    // bit on identical traces and seeds.
    let config = proposal_a();
    let mut legacy = System::new(config.clone());
    let mut built = System::builder().config(config).build().expect("builder");
    for (b, mode, seed) in [
        (Benchmark::AdpcmC, Mode::Ule, 7),
        (Benchmark::GsmC, Mode::Hp, 11),
        (Benchmark::Mpeg2D, Mode::Hp, 3),
    ] {
        let l = legacy.run(b.trace(30_000, seed), mode);
        let r = built.run(b.trace(30_000, seed), mode);
        assert_eq!(l, r, "{b}: builder diverged from System::new");
    }
}

#[test]
fn l2_run_exercises_the_memory_level_path() {
    // An L2-enabled run demonstrably routes misses through the new
    // hierarchy: the L2 sees every L1 miss, memory traffic shrinks,
    // and the stall/energy breakdown moves.
    let config = proposal_a();
    let mut flat = System::builder()
        .config(config.clone())
        .memory(MemoryConfig::with_latency(80))
        .build()
        .expect("flat");
    let mut stacked = System::builder()
        .config(config.clone())
        .memory(MemoryConfig::with_latency(80))
        .l2(L2Config::unified(64))
        .build()
        .expect("stacked");
    let mut free_l2 = L2Config::unified(64);
    free_l2.read_energy_pj = 0.0;
    free_l2.write_energy_pj = 0.0;
    let mut stacked_free = System::builder()
        .config(config)
        .memory(MemoryConfig::with_latency(80))
        .l2(free_l2)
        .build()
        .expect("stacked, energy-free L2");

    let f = flat.run(Benchmark::Mpeg2C.trace(60_000, 5), Mode::Hp);
    let s = stacked.run(Benchmark::Mpeg2C.trace(60_000, 5), Mode::Hp);
    let s0 = stacked_free.run(Benchmark::Mpeg2C.trace(60_000, 5), Mode::Hp);

    // Identical L1 behavior (the hierarchy only changes the miss
    // path), so the same miss stream descends.
    assert_eq!(f.stats.il1, s.stats.il1);
    assert_eq!(f.stats.dl1, s.stats.dl1);
    let l2 = s.stats.l2.expect("L2 stats recorded");
    assert_eq!(
        l2.accesses,
        s.stats.il1.misses + s.stats.dl1.misses,
        "every L1 miss must reach the L2"
    );
    assert!(l2.hits > 0, "the L2 must absorb part of the stream");
    assert!(s.stats.memory_accesses < f.stats.memory_accesses);
    assert!(s.stats.cycles < f.stats.cycles, "the L2 must hide latency");
    // Against a timing-identical L2 with free accesses, the configured
    // access energy must surface in the `other` component (where the
    // engine folds below-L1 energy).
    assert_eq!(s.stats, s0.stats, "energy model must not change timing");
    assert!(
        s.energy.other_pj > s0.energy.other_pj,
        "L2 access energy lands in the `other` component"
    );
    assert!(f.stats.l2.is_none());
}

#[test]
fn l2_contents_do_not_survive_a_mode_switch() {
    let mut system = System::builder()
        .config(proposal_a())
        .l2(L2Config::unified(32))
        .build()
        .expect("system");
    system.run(Benchmark::AdpcmC.trace(20_000, 1), Mode::Hp);
    let r = system.run(Benchmark::AdpcmC.trace(20_000, 1), Mode::Ule);
    let l2 = r.stats.l2.expect("l2 stats");
    assert!(
        l2.misses > 0,
        "the run_at entry flush must cold-start the L2"
    );
}

#[test]
fn custom_level_edc_events_surface_in_the_report() {
    // A user-defined MemoryLevel (here: an ECC-protected memory that
    // corrects one bit on every read) must see its corrected/detected
    // counts land in the run statistics, not get dropped.
    use hyvec_cachesim::hierarchy::AccessOutcome;
    use hyvec_cachesim::CacheStats;

    #[derive(Debug)]
    struct EccMemory(MainMemory);

    impl MemoryLevel for EccMemory {
        fn access(&mut self, req: AccessRequest) -> AccessOutcome {
            AccessOutcome {
                corrected: 1,
                ..self.0.access(req)
            }
        }
        fn flush(&mut self) {
            self.0.flush();
        }
        fn reset_stats(&mut self) {
            self.0.reset_stats();
        }
        fn chain_stats(&self) -> Vec<(&'static str, CacheStats)> {
            self.0.chain_stats()
        }
    }

    // A custom terminal level composes under an L2Cache through the
    // same trait, and the L2 propagates its events upward.
    let mut chain = L2Cache::new(
        L2Config::unified(32),
        Box::new(EccMemory(MainMemory::new(MemoryConfig::with_latency(20)))),
    );
    let out = chain.access(AccessRequest::read(0x100));
    assert_eq!(out.corrected, 1, "L2 must propagate below-level events");

    // Installed under the engine, the events land in RunStats.
    let mut system = System::new(proposal_a());
    system.set_hierarchy(Box::new(EccMemory(MainMemory::new(
        MemoryConfig::with_latency(20),
    ))));
    let r = system.run(Benchmark::Mpeg2C.trace(10_000, 1), Mode::Hp);
    let misses = r.stats.il1.misses + r.stats.dl1.misses;
    assert!(misses > 0);
    assert_eq!(
        r.stats.below_corrected, misses,
        "one correction per miss must surface"
    );
    assert_eq!(
        r.stats.corrected(),
        r.stats.il1.corrected + r.stats.dl1.corrected + misses,
        "the aggregate must include below-L1 events"
    );
}

#[test]
fn replayed_traces_drive_the_engine_identically() {
    // TraceSource interchangeability: the synthetic generator and its
    // file-format round trip produce the same simulation.
    use hyvec_mediabench::replay::{write_trace, Replay};
    let mut system = System::builder()
        .config(proposal_a())
        .l2(L2Config::unified(32))
        .build()
        .expect("system");
    let text = write_trace(Benchmark::EpicC.trace(20_000, 9));
    let generated = system.run(Benchmark::EpicC.trace(20_000, 9), Mode::Ule);
    let replayed = system.run(Replay::from_text(&text).expect("parses"), Mode::Ule);
    assert_eq!(generated, replayed);
}
