//! The streaming trace layer driven end to end through the engine:
//! binary traces must produce counters byte-identical to text replay
//! of the same trace, on the single-core engine and across
//! `--sim-threads` on the multi-core one, with the reader's resident
//! memory pinned to the chunk size the whole way.

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig, Topology};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::MultiCoreSystem;
use hyvec_mediabench::binfmt::{encode_entries, BinaryReplay, DEFAULT_CHUNK_ENTRIES};
use hyvec_mediabench::replay::{parse_trace_line, write_entry_line, write_trace};
use hyvec_mediabench::zoo::Workload;
use hyvec_mediabench::{per_core_seed, Benchmark, Replay, TraceEntry};

fn build_system() -> System {
    let l1s = SystemConfig::uniform_6t();
    System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .l2(L2Config::unified(16))
        .memory(MemoryConfig::with_latency(80))
        .build()
        .expect("valid configuration")
}

/// Routes every generated entry through the text format — entry →
/// line → parse — without materializing the trace: the O(1)-memory
/// "text replay" reference for the large-scale equivalence tests.
fn text_round_trip(entries: impl Iterator<Item = TraceEntry>) -> impl Iterator<Item = TraceEntry> {
    entries.enumerate().map(|(i, e)| {
        let mut line = String::new();
        write_entry_line(&mut line, e);
        parse_trace_line(i + 1, &line)
            .expect("the writer emits parseable lines")
            .expect("one entry per line")
    })
}

#[test]
fn system_run_counters_match_text_replay() {
    // The debug-sized slice of the acceptance contract: same trace
    // through eager text replay and streamed binary replay gives the
    // same RunReport, for a MediaBench program and a zoo workload.
    let traces: [Vec<TraceEntry>; 2] = [
        Benchmark::Mpeg2C.trace(150_000, 11).collect(),
        Workload::Zipf.trace(150_000, 11).collect(),
    ];
    for entries in traces {
        let text = write_trace(entries.iter().copied());
        let from_text = build_system().run(Replay::from_text(&text).unwrap(), Mode::Hp);

        let (bytes, _) = encode_entries(entries.iter().copied(), DEFAULT_CHUNK_ENTRIES);
        let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
        let from_binary = build_system().run(&mut reader, Mode::Hp);
        assert!(
            reader.error().is_none(),
            "decode error: {:?}",
            reader.error()
        );
        assert!(reader.peak_resident_entries() <= DEFAULT_CHUNK_ENTRIES);
        assert_eq!(from_text, from_binary, "binary replay diverged from text");
    }
}

#[test]
fn epoch_merge_is_bit_identical_from_binary_streams() {
    // The multi-core engine (serial reference loop vs epoch-threaded)
    // fed from binary streams: same merge contract as the synthetic
    // sources, now across decode chunk boundaries too.
    let cores = 4;
    let binary_sources = || -> Vec<_> {
        (0..cores)
            .map(|core| {
                let b = Benchmark::BIG[core % Benchmark::BIG.len()];
                // Deliberately unequal lengths so cores drain in
                // different epochs, and a small chunk size so chunk
                // boundaries land mid-epoch.
                let n = 5_000 + 997 * core as u64;
                let (bytes, _) = encode_entries(b.trace(n, per_core_seed(3, core)), 256);
                BinaryReplay::from_bytes(bytes).unwrap()
            })
            .collect()
    };
    let build = || -> MultiCoreSystem {
        let l1s = SystemConfig::uniform_6t();
        System::builder()
            .il1(l1s.il1)
            .dl1(l1s.dl1)
            .l2(L2Config::unified(16))
            .memory(MemoryConfig::with_latency(40))
            .topology(Topology::SharedL2)
            .build_multi(cores)
            .expect("valid configuration")
    };

    let mut serial = build();
    serial.set_sim_threads(1);
    let reference = serial.run(binary_sources(), Mode::Hp);

    for threads in [2, 8] {
        let mut parallel = build();
        parallel.set_sim_threads(threads);
        let threaded = parallel.run(binary_sources(), Mode::Hp);
        assert_eq!(
            reference, threaded,
            "sim-threads {threads} diverged from serial on binary streams"
        );
    }

    // And binary streams agree with the generators they encode.
    let generator_sources: Vec<_> = (0..cores)
        .map(|core| {
            let b = Benchmark::BIG[core % Benchmark::BIG.len()];
            b.trace(5_000 + 997 * core as u64, per_core_seed(3, core))
        })
        .collect();
    let mut direct = build();
    direct.set_sim_threads(1);
    assert_eq!(
        reference,
        direct.run(generator_sources, Mode::Hp),
        "binary streams diverged from their generators"
    );
}

#[test]
fn truncated_stream_ends_the_run_with_a_typed_error() {
    // A truncated trace must not feed the engine garbage: the run
    // consumes the clean whole-chunk prefix and the reader reports
    // the truncation afterwards.
    let entries: Vec<TraceEntry> = Benchmark::GsmD.trace(10_000, 5).collect();
    let (bytes, _) = encode_entries(entries.iter().copied(), 512);
    let cut = bytes.len() - 100;
    let mut reader = BinaryReplay::from_bytes(bytes[..cut].to_vec()).unwrap();
    let report = build_system().run(&mut reader, Mode::Hp);
    assert!(reader.error().is_some(), "truncation went undetected");
    assert_eq!(report.stats.instructions % 512, 0);
    assert!(report.stats.instructions < 10_000);
}

/// The acceptance-scale run: a 10M+ entry binary trace through
/// `System::run`, peak resident trace memory bounded by the chunk
/// size, counters byte-identical to a text replay of the same trace
/// (both sides streamed in O(1) memory). Ignored in debug builds —
/// CI runs it in release via `--ignored`.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn ten_million_entry_binary_replay_matches_text() {
    const N: u64 = 10_000_000;
    let trace = || Benchmark::Mpeg2D.trace(N, 42);

    let from_text = build_system().run(text_round_trip(trace()), Mode::Hp);
    assert_eq!(from_text.stats.instructions, N);

    let (bytes, stats) = encode_entries(trace(), DEFAULT_CHUNK_ENTRIES);
    assert_eq!(stats.entries, N);
    let mut reader = BinaryReplay::from_bytes(bytes).unwrap();
    let from_binary = build_system().run(&mut reader, Mode::Hp);
    assert!(
        reader.error().is_none(),
        "decode error: {:?}",
        reader.error()
    );
    assert_eq!(reader.entries_read(), N);
    assert!(
        reader.peak_resident_entries() <= DEFAULT_CHUNK_ENTRIES,
        "peak resident {} entries exceeds the {} chunk bound",
        reader.peak_resident_entries(),
        DEFAULT_CHUNK_ENTRIES
    );
    assert_eq!(from_text, from_binary, "10M-entry binary replay diverged");
}
