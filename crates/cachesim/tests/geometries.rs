//! The paper notes that "significant parts of our study can be easily
//! reused for direct-mapped and fully-associative caches" — these
//! tests exercise the cache and power models across geometries beyond
//! the paper's 8KB 8-way point.

use hyvec_cachesim::cache::HybridCache;
use hyvec_cachesim::config::{CacheConfig, Mode, SystemConfig, WaySpec};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::power::PowerModel;
use hyvec_edc::Protection;
use hyvec_mediabench::Benchmark;
use hyvec_sram::CellKind;

fn config(size_bytes: u64, line_bytes: u64, hp_ways: usize, ule_ways: usize) -> CacheConfig {
    let mut ways = vec![WaySpec::hp_way(1.0, Protection::None); hp_ways];
    for _ in 0..ule_ways {
        ways.push(WaySpec::ule_way(
            CellKind::Sram8T,
            1.75,
            Protection::None,
            Protection::Secded,
        ));
    }
    CacheConfig {
        size_bytes,
        line_bytes,
        ways,
        word_bits: 32,
        tag_bits: 26,
    }
}

#[test]
fn two_way_hybrid_works() {
    let cfg = config(4 * 1024, 32, 1, 1);
    cfg.validate().expect("valid geometry");
    let mut cache = HybridCache::new(cfg, Mode::Hp);
    assert_eq!(cache.config().sets(), 64);
    let sets = cache.config().sets();
    let line = cache.config().line_bytes;
    cache.access(0, false);
    cache.access(sets * line, false);
    assert!(cache.access(0, false).hit, "2-way must hold both lines");
    assert!(cache.access(sets * line, false).hit);
}

#[test]
fn direct_mapped_ule_only_cache() {
    // A 1-way cache whose single way is the ULE way: the degenerate
    // direct-mapped organization.
    let cfg = config(1024, 32, 0, 1);
    cfg.validate().expect("valid geometry");
    let mut cache = HybridCache::new(cfg, Mode::Ule);
    assert_eq!(cache.config().sets(), 32);
    assert_eq!(cache.enabled_ways(), 1);
    let sets = cache.config().sets();
    let line = cache.config().line_bytes;
    cache.access(0, false);
    assert!(cache.access(4, false).hit);
    cache.access(sets * line, false); // conflicting line evicts
    assert!(!cache.access(0, false).hit);
}

#[test]
fn sixteen_way_fully_associative_like_cache() {
    // 16 ways of 32B lines over 512B: a single set — fully
    // associative.
    let cfg = config(512, 32, 15, 1);
    cfg.validate().expect("valid geometry");
    assert_eq!(cfg.sets(), 1);
    let mut cache = HybridCache::new(cfg, Mode::Hp);
    // 16 distinct lines all fit.
    for i in 0..16u64 {
        cache.access(i * 32, false);
    }
    for i in 0..16u64 {
        assert!(cache.access(i * 32, false).hit, "line {i} evicted");
    }
    // A 17th line evicts exactly the least-recently-used line (line
    // 0, touched first in the verification pass) and nothing else.
    cache.access(16 * 32, false);
    assert!(cache.access(16 * 32, false).hit, "new line resident");
    assert!(cache.access(15 * 32, false).hit, "MRU line untouched");
    assert!(!cache.access(0, false).hit, "LRU line evicted");
}

#[test]
fn sixty_four_byte_lines_work() {
    let cfg = config(8 * 1024, 64, 7, 1);
    cfg.validate().expect("valid geometry");
    assert_eq!(cfg.words_per_line(), 16);
    let mut cache = HybridCache::new(cfg, Mode::Hp);
    cache.access(0, false);
    assert!(cache.access(60, false).hit, "same 64B line");
    assert!(!cache.access(64, false).hit, "next line");
}

#[test]
fn full_system_runs_on_a_16kb_geometry() {
    let il1 = config(16 * 1024, 32, 7, 1);
    let dl1 = il1.clone();
    let sys_cfg = SystemConfig {
        il1,
        dl1,
        memory_latency: 20,
        tech: Default::default(),
        uncore_ten_t_sizing: 2.65,
    };
    let pm = PowerModel::new(&sys_cfg);
    assert!(pm.il1.area_um2() > 0.0);
    let mut sys = System::new(sys_cfg);
    let r = sys.run(Benchmark::Mpeg2C.trace(20_000, 1), Mode::Hp);
    assert_eq!(r.stats.instructions, 20_000);
    // Twice the capacity can only help mpeg2's larger working set.
    assert!(r.stats.dl1.hit_ratio() > 0.9);
}

#[test]
fn power_model_scales_with_capacity() {
    let small = SystemConfig::with_ways(config(8 * 1024, 32, 7, 1).ways.clone(), 20);
    let mut big_cfg = small.clone();
    big_cfg.il1.size_bytes = 16 * 1024;
    big_cfg.dl1.size_bytes = 16 * 1024;
    let pm_small = PowerModel::new(&small);
    let pm_big = PowerModel::new(&big_cfg);
    assert!(pm_big.il1.area_um2() > 1.8 * pm_small.il1.area_um2());
    assert!(pm_big.il1.leakage_w(Mode::Hp, 1.0) > 1.8 * pm_small.il1.leakage_w(Mode::Hp, 1.0));
    // Bigger arrays cost more per lookup (longer bitlines or more
    // columns).
    assert!(
        pm_big.il1.lookup_energy_pj(Mode::Hp, 1.0) > pm_small.il1.lookup_energy_pj(Mode::Hp, 1.0)
    );
}
