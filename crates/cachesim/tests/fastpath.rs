//! Fast-path equivalence properties: any trace replayed through an
//! engine whose L1s are armed onto the slow path (the full EDC
//! decode/verify machinery, with no faults actually present) must
//! produce results bit-identical to the fault-free fast path — same
//! `RunStats`, same energy totals, same derived report figures.
//!
//! This is the contract that makes the tiered dispatch a pure
//! optimization: `hyvec run-all` output stays byte-identical because
//! every fault-free experiment silently moved to the fast path.

use hyvec_cachesim::config::{L2Config, MemoryConfig, Mode, SystemConfig};
use hyvec_cachesim::engine::System;
use hyvec_cachesim::MultiCoreSystem;
use hyvec_mediabench::{Benchmark, DataAccess, TraceEntry};
use proptest::prelude::*;

fn build(with_l2: bool, seu: bool) -> System {
    let l1s = SystemConfig::uniform_6t();
    let mut builder = System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .memory(MemoryConfig::with_latency(40));
    if with_l2 {
        builder = builder.l2(L2Config::unified(16));
    }
    if seu {
        builder = builder.seu(2e-8, 11);
    }
    builder.build().expect("valid configuration")
}

fn force_slow(sys: &mut System) {
    sys.il1_mut().set_force_slow_path(true);
    sys.dl1_mut().set_force_slow_path(true);
}

fn multi(with_l2: bool, cores: usize) -> MultiCoreSystem {
    let l1s = SystemConfig::uniform_6t();
    let mut builder = System::builder()
        .il1(l1s.il1)
        .dl1(l1s.dl1)
        .memory(MemoryConfig::with_latency(40));
    if with_l2 {
        builder = builder.l2(L2Config::unified(16));
    }
    builder.build_multi(cores).expect("valid configuration")
}

proptest! {
    /// Arbitrary synthetic traces — including line-crossing and
    /// sub-word accesses — replay identically on both tiers, with and
    /// without an L2 in the chain.
    #[test]
    fn forced_slow_replay_matches_fast_path(
        ops in prop::collection::vec(
            (0u64..0x20000, 1u8..=8, any::<bool>(), any::<bool>()),
            1..400,
        ),
        mode_sel: bool,
        with_l2: bool,
    ) {
        let mode = if mode_sel { Mode::Hp } else { Mode::Ule };
        let trace = || {
            ops.clone().into_iter().map(|(a, size, is_write, has_data)| TraceEntry {
                pc: 0x40_0000 + (a & !3),
                access: has_data.then_some(DataAccess {
                    addr: 0x80_0000 + a,
                    size,
                    is_write,
                }),
            })
        };
        let mut fast = build(with_l2, false);
        let mut slow = build(with_l2, false);
        force_slow(&mut slow);
        let rf = fast.run(trace(), mode);
        let rs = slow.run(trace(), mode);
        prop_assert_eq!(rf, rs, "fast and armed-slow runs diverged");
    }

    /// The generated MediaBench-style traces agree too, across
    /// benchmarks and seeds (energy totals included).
    #[test]
    fn benchmark_replay_matches_fast_path(
        bench_idx in 0usize..Benchmark::BIG.len(),
        seed in 0u64..1000,
        with_l2: bool,
    ) {
        let b = Benchmark::BIG[bench_idx];
        let mut fast = build(with_l2, false);
        let mut slow = build(with_l2, false);
        force_slow(&mut slow);
        let rf = fast.run(b.trace(8_000, seed), Mode::Hp);
        let rs = slow.run(b.trace(8_000, seed), Mode::Hp);
        prop_assert_eq!(rf.stats, rs.stats);
        prop_assert_eq!(rf.energy, rs.energy);
        prop_assert_eq!(rf.seconds, rs.seconds);
        prop_assert_eq!(rf.epi_pj(), rs.epi_pj());
    }
}

#[test]
fn multicore_forced_slow_matches_fast_path() {
    let sources = || {
        vec![
            Benchmark::GsmC.trace(6_000, 1),
            Benchmark::Mpeg2C.trace(6_000, 2),
        ]
    };
    let mut fast = multi(true, 2);
    let mut slow = multi(true, 2);
    for core in 0..2 {
        let (il1, dl1) = slow.core_mut(core);
        il1.set_force_slow_path(true);
        dl1.set_force_slow_path(true);
    }
    let rf = fast.run(sources(), Mode::Hp);
    let rs = slow.run(sources(), Mode::Hp);
    assert_eq!(rf, rs, "multi-core fast and armed-slow runs diverged");
}

#[test]
fn seu_runs_disengage_the_fast_path_by_themselves() {
    // With an accelerated soft-error rate the caches stop being
    // fault-free mid-run; forcing the slow path must then change
    // nothing at all (the injected upsets land identically because
    // the RNG stream only advances per retired instruction).
    let mut fast = build(false, true);
    let mut slow = build(false, true);
    force_slow(&mut slow);
    let rf = fast.run(Benchmark::AdpcmC.trace(30_000, 7), Mode::Ule);
    let rs = slow.run(Benchmark::AdpcmC.trace(30_000, 7), Mode::Ule);
    assert_eq!(rf, rs);
    assert!(
        rf.stats.silent_corruptions() > 0,
        "accelerated SEUs on the unprotected 6T way must corrupt"
    );
}
