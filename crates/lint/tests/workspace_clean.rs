//! The live workspace must lint clean: every suppression is a
//! reasoned annotation or a `lint.toml` entry, so a fresh violation
//! anywhere in the tree fails this test (and CI) immediately.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = hyvec_lint::load_config(&root).expect("lint.toml parses");
    let diags = hyvec_lint::lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace is not lint-clean:\n{}",
        rendered.join("\n")
    );
}
