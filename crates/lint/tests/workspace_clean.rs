//! The live workspace must lint clean: every suppression is a
//! reasoned annotation or a `lint.toml` entry, so a fresh violation
//! anywhere in the tree fails this test (and CI) immediately.

use std::path::Path;

use hyvec_lint::diag::Rule;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = hyvec_lint::load_config(&root).expect("lint.toml parses");
    let diags = hyvec_lint::lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace is not lint-clean:\n{}",
        rendered.join("\n")
    );
}

/// The serve daemon's wall-clock exemption is scoped to its socket
/// module and nothing else: the same un-annotated `Instant` read that
/// the live `lint.toml` permits in `server.rs` must still trip the
/// `determinism` rule anywhere else in the crate (the cache orders
/// its LRU by a logical tick precisely so it never needs the clock).
#[test]
fn serve_clock_allow_is_scoped_to_the_socket_module() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = hyvec_lint::load_config(&root).expect("lint.toml parses");
    let src = "pub fn tick() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";

    let in_cache = hyvec_lint::lint_source("crates/serve/src/cache.rs", src, &cfg);
    assert!(
        in_cache.iter().any(|d| d.rule == Rule::Determinism),
        "an un-annotated Instant in the serve cache must trip determinism, got: {:?}",
        in_cache
    );

    let in_server = hyvec_lint::lint_source("crates/serve/src/server.rs", src, &cfg);
    assert!(
        in_server.is_empty(),
        "lint.toml scopes the clock allow to server.rs, got: {:?}",
        in_server
    );
}
