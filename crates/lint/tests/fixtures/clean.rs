//! Known-clean fixture: deterministic, panic-free library code.

use std::collections::BTreeMap;

/// Ordered storage, derived seeds, propagated errors.
pub fn tidy(seed: u64) -> Result<u64, String> {
    let mut m = BTreeMap::new();
    m.insert(seed, seed.wrapping_add(1));
    m.get(&seed).copied().ok_or_else(|| "missing".to_string())
}
