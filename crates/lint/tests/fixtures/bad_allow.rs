//! Known-violation fixture: the `bad-allow` rule.

// hyvec-lint: allow(determinism)
pub fn missing_reason() {}

// hyvec-lint: allow(no-hashing, "no such rule")
pub fn unknown_rule() {}
