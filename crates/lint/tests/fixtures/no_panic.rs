//! Known-violation fixture: the `no-panic` rule.

/// Panics in every branch.
pub fn naughty(v: Option<u32>) -> u32 {
    let x = v.unwrap();
    assert!(x > 0, "positive");
    if x > 10 {
        panic!("too big");
    }
    x
}
