//! Known-violation fixture: the `seeded-rng` rule.

/// Draws from three different ambient streams.
pub fn naughty_rng() -> u64 {
    let a = rand::thread_rng().next();
    let b: u64 = rand::random();
    let mut r = Rng64::seed_from_u64(42);
    a + b + r.next()
}
