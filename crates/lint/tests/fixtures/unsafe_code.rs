//! Known-violation fixture: the `no-unsafe` rule.

/// An unsafe dereference, forbidden workspace-wide.
pub fn naughty(p: *const u32) -> u32 {
    unsafe { *p }
}
