//! Known-violation fixture: the `determinism` rule.

use std::collections::HashMap;
use std::time::Instant;

/// Reads ambient state three different ways.
pub fn naughty() -> u64 {
    let t = Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    let home = std::env::var("HOME");
    t.elapsed().subsec_nanos() as u64 + m.len() as u64 + home.iter().count() as u64
}
