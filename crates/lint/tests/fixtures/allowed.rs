//! Annotated fixture: every violation carries a reasoned allow, so
//! the file lints clean in both annotation positions.

use std::time::Instant; // hyvec-lint: allow(determinism, "fixture: trailing allow covers its own line")

/// Wall-time capture with recorded reasons.
pub fn timed() -> u64 {
    // hyvec-lint: allow(determinism, "fixture: standalone allow covers the next line")
    let t = Instant::now();
    // hyvec-lint: allow(no-panic, "fixture: subsec_nanos is always below u64::MAX")
    u64::try_from(t.elapsed().subsec_nanos()).unwrap()
}
