//! Known-violation fixture: the `counter-hygiene` rule.

/// Narrows and floats its way through counter arithmetic.
pub fn naughty(total: u64, hits: u64) -> f64 {
    let small = total as u32;
    let ratio = hits as f64 / 2.5;
    ratio + f64::from(small)
}
