//! Fixture corpus: one known-violation file per rule, plus known-clean
//! and fully-annotated files. Each test pins the exact
//! `file:line: rule` diagnostics so rule behavior can never drift
//! silently.

use hyvec_lint::config::Config;
use hyvec_lint::diag::Rule;
use hyvec_lint::lint_source;

/// Lints fixture text as library code under a synthetic lib path.
fn lint_lib(name: &str, src: &str) -> Vec<(u32, Rule)> {
    let rel = format!("crates/fixture/src/{name}");
    lint_source(&rel, src, &Config::default())
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn determinism_fixture_lines() {
    let src = include_str!("fixtures/determinism.rs");
    assert_eq!(
        lint_lib("determinism.rs", src),
        vec![
            (3, Rule::Determinism),  // use HashMap
            (4, Rule::Determinism),  // use Instant
            (8, Rule::Determinism),  // Instant::now()
            (9, Rule::Determinism),  // HashMap type + ctor, one finding
            (10, Rule::Determinism), // std::env::var
        ]
    );
}

#[test]
fn seeded_rng_fixture_lines() {
    let src = include_str!("fixtures/rng.rs");
    assert_eq!(
        lint_lib("rng.rs", src),
        vec![
            (5, Rule::SeededRng), // thread_rng()
            (6, Rule::SeededRng), // rand::random()
            (7, Rule::SeededRng), // seed_from_u64(42)
        ]
    );
}

#[test]
fn no_panic_fixture_lines() {
    let src = include_str!("fixtures/no_panic.rs");
    assert_eq!(
        lint_lib("no_panic.rs", src),
        vec![
            (5, Rule::NoPanic), // unwrap()
            (6, Rule::NoPanic), // assert!
            (8, Rule::NoPanic), // panic!
        ]
    );
}

#[test]
fn counter_hygiene_fixture_lines() {
    let src = include_str!("fixtures/stats.rs");
    let cfg = Config {
        counter_files: vec!["**/stats.rs".to_string()],
        ..Config::default()
    };
    let got: Vec<(u32, Rule)> = lint_source("crates/fixture/src/stats.rs", src, &cfg)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            (4, Rule::CounterHygiene), // -> f64 signature
            (5, Rule::CounterHygiene), // total as u32
            (6, Rule::CounterHygiene), // as f64 + 2.5, one finding
            (7, Rule::CounterHygiene), // f64::from
        ]
    );
    // The same file outside the counter-files list is clean: the rule
    // is scoped, not global.
    assert_eq!(lint_lib("shapes.rs", src), vec![]);
}

#[test]
fn no_unsafe_fixture_lines() {
    let src = include_str!("fixtures/unsafe_code.rs");
    assert_eq!(lint_lib("unsafe_code.rs", src), vec![(5, Rule::NoUnsafe)]);
}

#[test]
fn bad_allow_fixture_lines() {
    let src = include_str!("fixtures/bad_allow.rs");
    let diags = lint_source("crates/fixture/src/bad_allow.rs", src, &Config::default());
    let got: Vec<(u32, Rule)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        got,
        vec![
            (3, Rule::BadAllow), // missing mandatory reason
            (7, Rule::BadAllow), // unknown rule, reported at the covered line
        ]
    );
    assert!(diags[0].message.contains("reason"));
    assert!(diags[1].message.contains("no-hashing"));
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean.rs");
    assert_eq!(lint_lib("clean.rs", src), vec![]);
}

#[test]
fn annotated_fixture_is_fully_suppressed() {
    let src = include_str!("fixtures/allowed.rs");
    assert_eq!(lint_lib("allowed.rs", src), vec![]);
}

#[test]
fn rendered_diagnostics_use_file_line_rule_shape() {
    let src = include_str!("fixtures/unsafe_code.rs");
    let diags = lint_source("crates/fixture/src/unsafe_code.rs", src, &Config::default());
    assert_eq!(diags.len(), 1);
    assert!(diags[0]
        .render()
        .starts_with("crates/fixture/src/unsafe_code.rs:5: no-unsafe: "));
}

#[test]
fn violation_fixtures_are_exempt_in_test_like_paths() {
    // The same violating text in tests/ raises only the rules that
    // apply everywhere (ambient entropy, unsafe) — not no-panic or
    // determinism.
    let panics = include_str!("fixtures/no_panic.rs");
    let got = lint_source(
        "crates/fixture/tests/no_panic.rs",
        panics,
        &Config::default(),
    );
    assert_eq!(got, vec![]);

    let rng = include_str!("fixtures/rng.rs");
    let got: Vec<(u32, Rule)> = lint_source("crates/fixture/tests/rng.rs", rng, &Config::default())
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect();
    // thread_rng and rand::random stay banned in tests; the literal
    // seed_from_u64(42) becomes legal there.
    assert_eq!(got, vec![(5, Rule::SeededRng), (6, Rule::SeededRng)]);
}
