//! A small hand-rolled Rust lexer.
//!
//! The lint rules only need a comment- and string-aware token stream
//! with line numbers — not a full grammar — so this lexer recognizes
//! exactly: line/block comments (nested), string/raw-string/byte-string
//! literals, char literals vs. lifetimes, numeric literals (classified
//! int vs. float), identifiers (including raw `r#ident`), and
//! punctuation (`::` is fused, everything else is a single char).
//!
//! Comments are not emitted as tokens; instead, any comment whose text
//! contains the `hyvec-lint:` marker is parsed as a suppression
//! annotation on the fly (see [`Allow`]). This is what makes the
//! annotation syntax string-safe: a `hyvec-lint:` inside a string
//! literal is just payload, never a suppression.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (any radix, any suffix).
    Int,
    /// Float literal (has a fractional part or an exponent).
    Float,
    /// String, raw-string, or byte-string literal (text not retained).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation: `::` as one token, otherwise one char per token.
    Punct,
}

/// One lexed token: kind, verbatim text, and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// The token text (empty for [`TokKind::Str`] — rules never look
    /// inside string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A parsed `// hyvec-lint: allow(<rule>, "<reason>")` annotation.
///
/// A trailing annotation (code precedes it on the same line) covers
/// its own line; a standalone annotation line covers the next line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name being suppressed.
    pub rule: String,
    /// The line the suppression applies to.
    pub covers_line: u32,
    /// The mandatory human reason.
    pub reason: String,
}

/// Everything the lexer extracts from one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals-internals stripped.
    pub toks: Vec<Tok>,
    /// Well-formed suppression annotations.
    pub allows: Vec<Allow>,
    /// `(line, problem)` pairs for comments that contain the
    /// `hyvec-lint:` marker but do not parse as a valid annotation —
    /// surfaced as `bad-allow` diagnostics so typos cannot silently
    /// disable a rule.
    pub bad_allows: Vec<(u32, String)>,
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Line of the most recent emitted token (to classify trailing
    /// vs. standalone comments).
    last_tok_line: u32,
    out: Lexed,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            last_tok_line: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_tok_line = line;
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                ':' if self.peek_at(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".to_string(), line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let had_code_before = self.last_tok_line == line;
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.harvest_annotation(&text, line, had_code_before);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let had_code_before = self.last_tok_line == line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.harvest_annotation(&text, line, had_code_before);
    }

    /// Parses `hyvec-lint: allow(<rule>, "<reason>")` out of a comment
    /// body, recording either an [`Allow`] or a bad-annotation note.
    ///
    /// The marker must be the first thing in the comment (after the
    /// comment sigils themselves): prose that merely *mentions* the
    /// syntax — docs, examples — is never an annotation, while an
    /// actual annotation line that is malformed is still caught.
    fn harvest_annotation(&mut self, comment: &str, line: u32, had_code_before: bool) {
        let body = comment.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix("hyvec-lint:") else {
            return;
        };
        let covers_line = if had_code_before { line } else { line + 1 };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            self.out.bad_allows.push((
                line,
                "expected `hyvec-lint: allow(<rule>, \"<reason>\")`".to_string(),
            ));
            return;
        };
        let Some(close) = args.rfind(')') else {
            self.out
                .bad_allows
                .push((line, "unclosed `allow(` annotation".to_string()));
            return;
        };
        let args = &args[..close];
        let Some((rule, reason)) = args.split_once(',') else {
            self.out.bad_allows.push((
                line,
                "allow annotation needs a mandatory \"<reason>\" argument".to_string(),
            ));
            return;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        let reason = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .unwrap_or("");
        if rule.is_empty() || reason.trim().is_empty() {
            self.out.bad_allows.push((
                line,
                "allow annotation reason must be a non-empty quoted string".to_string(),
            ));
            return;
        }
        self.out.allows.push(Allow {
            rule: rule.to_string(),
            covers_line,
            reason: reason.to_string(),
        });
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, and raw
    /// identifiers `r#ident`. Returns false when the leading `r`/`b`
    /// is just the start of a plain identifier, leaving the cursor
    /// untouched.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c0 = match self.peek() {
            Some(c) => c,
            None => return false,
        };
        // Work out the shape by lookahead only.
        let mut off = 1;
        if c0 == 'b' {
            match self.peek_at(1) {
                Some('\'') => {
                    // b'x' byte-char literal.
                    self.bump();
                    self.char_or_lifetime(line);
                    return true;
                }
                Some('"') => {
                    self.bump();
                    self.string(line);
                    return true;
                }
                Some('r') => off = 2,
                _ => return false,
            }
        }
        // Now expecting the raw part at `off`: zero or more '#' then '"'.
        let mut hashes = 0usize;
        while self.peek_at(off + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek_at(off + hashes) {
            Some('"') => {}
            // `r#ident` raw identifier (exactly one '#', then ident).
            Some(c) if c0 == 'r' && hashes == 1 && (c == '_' || c.is_alphanumeric()) => {
                self.bump(); // r
                self.bump(); // #
                self.ident(line);
                return true;
            }
            _ => return false,
        }
        // Consume prefix, hashes, and the opening quote.
        for _ in 0..(off + hashes + 1) {
            self.bump();
        }
        // Scan to `"` followed by `hashes` '#'s.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek_at(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // At a `'`. Lifetime when followed by ident-start that is not
        // itself closed by another `'` (i.e. `'a` vs `'a'`).
        let next = self.peek_at(1);
        let after = self.peek_at(2);
        let is_lifetime = matches!(next, Some(c) if c == '_' || c.is_alphabetic())
            && after != Some('\'')
            && next != Some('\\');
        self.bump(); // '
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        // Char literal: consume until the closing quote, honoring
        // escapes.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut is_float = false;
        let radix_prefixed = self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefixed {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // Fractional part: a '.' followed by a digit (so `0.hash()`
            // and tuple indexing stay out).
            if self.peek() == Some('.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit())
            {
                is_float = true;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(), Some('e' | 'E')) {
                let sign_off = if matches!(self.peek_at(1), Some('+' | '-')) {
                    2
                } else {
                    1
                };
                if matches!(self.peek_at(sign_off), Some(c) if c.is_ascii_digit()) {
                    is_float = true;
                    for _ in 0..sign_off {
                        self.bump();
                    }
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
            // Suffix (`u64`, `f32`, ...). An `f32`/`f64` suffix makes
            // the literal a float.
            let suffix_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
            if suffix.starts_with('f') {
                is_float = true;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let toks = kinds("let x = \"HashMap // hyvec-lint: nope\"; // HashMap\n/* HashMap */ y");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ z");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].1, "z");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r####"let s = r#"Instant "quoted" inside"#; r#fn"####);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "fn"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = kinds("1 1_000 0xFF 1.5 1e9 2.0f32 7f64 3u32 0.count_ones()");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "1e9", "2.0f32", "7f64"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["1", "1_000", "0xFF", "3u32", "0"]);
    }

    #[test]
    fn double_colon_is_fused() {
        let toks = kinds("std::time::Instant");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1].1, "::");
        assert_eq!(toks[3].1, "::");
    }

    #[test]
    fn trailing_allow_covers_its_line_standalone_covers_next() {
        let lexed = lex(concat!(
            "let a = 1; // hyvec-lint: allow(no-panic, \"trailing\")\n",
            "// hyvec-lint: allow(determinism, \"standalone\")\n",
            "let b = 2;\n",
        ));
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "no-panic");
        assert_eq!(lexed.allows[0].covers_line, 1);
        assert_eq!(lexed.allows[1].rule, "determinism");
        assert_eq!(lexed.allows[1].covers_line, 3);
        assert!(lexed.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allows_are_reported() {
        let lexed = lex(concat!(
            "// hyvec-lint: allow(no-panic)\n",
            "// hyvec-lint: allow(no-panic, \"\")\n",
            "// hyvec-lint: disable-everything\n",
        ));
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.bad_allows.len(), 3);
    }

    #[test]
    fn prose_mentioning_the_marker_is_not_an_annotation() {
        let lexed = lex("// docs for the `hyvec-lint: allow(<rule>, \"<reason>\")` syntax\n");
        assert!(lexed.allows.is_empty());
        assert!(lexed.bad_allows.is_empty());
    }

    #[test]
    fn annotation_inside_string_is_payload() {
        let lexed = lex("let s = \"hyvec-lint: allow(no-panic, \\\"x\\\")\";");
        assert!(lexed.allows.is_empty());
        assert!(lexed.bad_allows.is_empty());
    }

    #[test]
    fn line_numbers_advance_through_multiline_constructs() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet t = 1;");
        let t = lexed
            .toks
            .iter()
            .find(|t| t.text == "t")
            .map(|t| t.line)
            .unwrap_or(0);
        assert_eq!(t, 4);
    }
}
